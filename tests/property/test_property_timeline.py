"""Property-based tests for the Timeline (core scheduling data structure)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.timeline import EPS, Timeline

# Task requests: (ready, duration) pairs with sane magnitudes.
requests = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


@given(requests)
@settings(max_examples=200)
def test_find_then_add_never_conflicts(reqs):
    """find_slot's answer is always a legal placement."""
    tl = Timeline()
    for i, (ready, dur) in enumerate(reqs):
        start = tl.find_slot(ready, dur)
        assert start >= ready - EPS
        tl.add(start, dur, i)  # would raise on overlap


@given(requests)
@settings(max_examples=200)
def test_slots_stay_sorted_and_disjoint(reqs):
    tl = Timeline()
    for i, (ready, dur) in enumerate(reqs):
        tl.add(tl.find_slot(ready, dur), dur, i)
    slots = tl.slots()
    for a, b in zip(slots, slots[1:]):
        assert a.start <= b.start
        if a.duration > EPS and b.duration > EPS:
            assert a.end <= b.start + EPS


@given(requests)
@settings(max_examples=200)
def test_busy_plus_idle_equals_span(reqs):
    tl = Timeline()
    for i, (ready, dur) in enumerate(reqs):
        tl.add(tl.find_slot(ready, dur), dur, i)
    assert abs(tl.busy_time() + tl.idle_time() - tl.end_time) < 1e-6


@given(requests)
@settings(max_examples=150)
def test_gaps_are_truly_idle(reqs):
    tl = Timeline()
    for i, (ready, dur) in enumerate(reqs):
        tl.add(tl.find_slot(ready, dur), dur, i)
    for lo, hi in tl.gaps():
        assert hi > lo
        for slot in tl.slots():
            if slot.duration > EPS:
                # No busy slot intersects an advertised gap.
                assert slot.end <= lo + EPS or slot.start >= hi - EPS


@given(requests, st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=30))
@settings(max_examples=200)
def test_insertion_no_worse_than_append(reqs, ready, dur):
    tl = Timeline()
    for i, (r, d) in enumerate(reqs):
        tl.add(tl.find_slot(r, d), d, i)
    assert tl.find_slot(ready, dur, insertion=True) <= tl.find_slot(
        ready, dur, insertion=False
    ) + EPS


@given(requests)
@settings(max_examples=150)
def test_remove_restores_capacity(reqs):
    tl = Timeline()
    placed = []
    for i, (ready, dur) in enumerate(reqs):
        start = tl.find_slot(ready, dur)
        tl.add(start, dur, i)
        placed.append((i, start, dur))
    # Remove everything; timeline must be empty again.
    for i, start, dur in placed:
        tl.remove(i, start=start)
    assert len(tl) == 0 and tl.end_time == 0.0
