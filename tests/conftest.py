"""Shared fixtures: canonical small graphs, machines and instances."""

from __future__ import annotations

import pytest

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.instance import Instance, homogeneous_instance, make_instance
from repro.machine.cluster import Machine
from repro.machine.etc import ETCMatrix

import numpy as np


@pytest.fixture
def diamond_dag() -> TaskDAG:
    """a -> {b, c} -> d with distinct costs and data volumes."""
    dag = TaskDAG("diamond")
    for tid, cost in (("a", 2.0), ("b", 4.0), ("c", 3.0), ("d", 2.0)):
        dag.add_task(Task(tid, cost=cost))
    dag.add_edge("a", "b", data=3.0)
    dag.add_edge("a", "c", data=1.0)
    dag.add_edge("b", "d", data=2.0)
    dag.add_edge("c", "d", data=2.0)
    return dag


@pytest.fixture
def chain_dag() -> TaskDAG:
    """Linear chain t0 -> t1 -> t2 -> t3."""
    dag = TaskDAG("chain")
    prev = None
    for i in range(4):
        dag.add_task(Task(i, cost=float(i + 1)))
        if prev is not None:
            dag.add_edge(prev, i, data=2.0)
        prev = i
    return dag


@pytest.fixture
def diamond_instance(diamond_dag) -> Instance:
    """Diamond on 3 heterogeneous processors (seeded)."""
    return make_instance(diamond_dag, num_procs=3, heterogeneity=0.5, seed=42)


@pytest.fixture
def homogeneous_diamond(diamond_dag) -> Instance:
    return homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)


def make_topcuoglu_instance() -> Instance:
    """The canonical 10-task example of Topcuoglu et al. (TPDS 2002).

    Published reference values: upward ranks (mean aggregation)
    n1=108.000, n2=77.000, n3=80.000, n4=80.000, n5=69.000, n6=63.333,
    n7=42.667, n8=35.667, n9=44.333, n10=14.667; HEFT makespan 80,
    CPOP makespan 86 on 3 fully connected processors.
    """
    dag = TaskDAG("topcuoglu2002")
    etc_rows = {
        1: (14, 16, 9),
        2: (13, 19, 18),
        3: (11, 13, 19),
        4: (13, 8, 17),
        5: (12, 13, 10),
        6: (13, 16, 9),
        7: (7, 15, 11),
        8: (5, 11, 14),
        9: (18, 12, 20),
        10: (21, 7, 16),
    }
    for tid, row in etc_rows.items():
        dag.add_task(Task(tid, cost=float(sum(row)) / 3.0))
    edges = [
        (1, 2, 18), (1, 3, 12), (1, 4, 9), (1, 5, 11), (1, 6, 14),
        (2, 8, 19), (2, 9, 16), (3, 7, 23), (4, 8, 27), (4, 9, 23),
        (5, 9, 13), (6, 8, 15), (7, 10, 17), (8, 10, 11), (9, 10, 13),
    ]
    for u, v, d in edges:
        dag.add_edge(u, v, data=float(d))
    machine = Machine.homogeneous(3, latency=0.0, bandwidth=1.0, name="topcuoglu-3p")
    values = np.array([etc_rows[t] for t in dag.tasks()], dtype=float)
    etc = ETCMatrix(list(dag.tasks()), machine.proc_ids(), values)
    return Instance(dag=dag, machine=machine, etc=etc, name="topcuoglu2002")


@pytest.fixture
def topcuoglu_instance() -> Instance:
    return make_topcuoglu_instance()


@pytest.fixture(autouse=True)
def _reset_module_tracer():
    """No test leaks an installed tracer into the next one."""
    yield
    from repro.obs import set_tracer

    set_tracer(None)
