"""DUP-HEFT: HEFT priorities with idle-slot parent duplication only.

Isolates improvement (3) of the contribution — selective duplication in
the spirit of the authors' earlier BTDH work — for the ablation bench.
Unlike whole-chain duplication (TDS), a parent is copied onto a
processor only when re-running it locally strictly beats waiting for the
data transfer, so duplication can only ever lower a task's EFT.
"""

from __future__ import annotations

from repro.core.placement import PlacementEngine
from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler
from repro.schedulers.ranking import RankAggregation, upward_ranks


class DuplicationScheduler(Scheduler):
    """HEFT order + selective parent duplication (no lookahead)."""

    def __init__(self, agg: RankAggregation = "mean", max_duplications_per_task: int = 3) -> None:
        self.agg = agg
        self.name = "DUP-HEFT"
        self._engine = PlacementEngine(
            lookahead=False,
            duplication=True,
            max_duplications_per_task=max_duplications_per_task,
        )

    def schedule(self, instance: Instance) -> Schedule:
        ranks = upward_ranks(instance, self.agg)
        pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
        order = sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))
        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        for task in order:
            self._engine.place(schedule, instance, task, ranks)
        if len(schedule) != instance.num_tasks:
            raise SchedulingError(f"{self.name} scheduled {len(schedule)}/{instance.num_tasks}")
        return schedule
