"""E6 — Gaussian elimination: SLR vs matrix size.

Expected shape: the elimination DAG's pivot chain limits parallelism,
so SLR stays well above 1 and shrinks slowly with matrix size (more
parallel update work per pivot); the improved scheduler dominates HEFT
at every size, with duplication of the pivot broadcast the main lever.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e6_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e6_shape(quick):
    res = e6_data(quick)
    print("\n" + res.table("E6: Gaussian elimination SLR vs matrix size"))
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    for i, _ in enumerate(res.x_values):
        assert res.series["IMP"][i] <= res.series["HEFT"][i] + 1e-9


def test_e6_duplication_fires_on_gaussian(quick):
    # The pivot column broadcast should trigger selective duplication at
    # least occasionally across ETC draws.
    rng = np.random.default_rng(206)
    dups = 0
    for _ in range(3 if quick else 10):
        inst = W.gaussian_instance(rng, matrix_size=9, ccr=5.0)
        dups += get_scheduler("DUP-HEFT").schedule(inst).num_duplicates()
    assert dups >= 0  # informational; printed below
    print(f"\nE6: total duplicates across draws: {dups}")


def test_e6_benchmark(benchmark):
    rng = np.random.default_rng(206)
    inst = W.gaussian_instance(rng, matrix_size=11)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
