"""The :class:`Machine`: a set of processors plus a communication model."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import MachineError, UnknownProcessorError
from repro.machine.comm import CommunicationModel, UniformCommunication, ZeroCommunication
from repro.machine.processor import Processor
from repro.types import ProcId


class Machine:
    """A target computing system.

    A machine is a finite set of :class:`Processor` records and a
    :class:`~repro.machine.comm.CommunicationModel`.  Heterogeneity of
    *computation* is expressed either through processor speeds (the
    consistent model) or an explicit ETC matrix
    (:class:`~repro.machine.etc.ETCMatrix`); heterogeneity of
    *communication* through the link model.
    """

    def __init__(
        self,
        processors: Sequence[Processor],
        comm: CommunicationModel | None = None,
        name: str = "machine",
    ) -> None:
        if not processors:
            raise MachineError("a machine needs at least one processor")
        ids = [p.id for p in processors]
        if len(set(ids)) != len(ids):
            raise MachineError("duplicate processor ids")
        self.name = name
        self._procs: dict[ProcId, Processor] = {p.id: p for p in processors}
        self._order: list[ProcId] = ids
        self.comm: CommunicationModel = comm if comm is not None else ZeroCommunication()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        num_procs: int,
        speed: float = 1.0,
        latency: float = 0.0,
        bandwidth: float = 1.0,
        name: str = "homogeneous",
    ) -> "Machine":
        """Fully connected machine with identical processors and links."""
        if num_procs < 1:
            raise MachineError(f"num_procs must be >= 1, got {num_procs}")
        procs = [Processor(id=i, speed=speed) for i in range(num_procs)]
        return cls(procs, UniformCommunication(latency, bandwidth), name=name)

    @classmethod
    def from_speeds(
        cls,
        speeds: Iterable[float],
        latency: float = 0.0,
        bandwidth: float = 1.0,
        name: str = "machine",
    ) -> "Machine":
        """Fully connected machine with the given per-processor speeds."""
        procs = [Processor(id=i, speed=s) for i, s in enumerate(speeds)]
        if not procs:
            raise MachineError("speeds must be non-empty")
        return cls(procs, UniformCommunication(latency, bandwidth), name=name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_procs(self) -> int:
        return len(self._order)

    def proc_ids(self) -> list[ProcId]:
        """Processor ids in their declared (deterministic) order."""
        return list(self._order)

    def processor(self, proc_id: ProcId) -> Processor:
        try:
            return self._procs[proc_id]
        except KeyError:
            raise UnknownProcessorError(proc_id) from None

    def __contains__(self, proc_id: ProcId) -> bool:
        return proc_id in self._procs

    def speed(self, proc_id: ProcId) -> float:
        return self.processor(proc_id).speed

    def comm_time(self, data: float, src: ProcId, dst: ProcId) -> float:
        """Transfer time of ``data`` units between two processors."""
        if src not in self._procs:
            raise UnknownProcessorError(src)
        if dst not in self._procs:
            raise UnknownProcessorError(dst)
        return self.comm.time(data, src, dst)

    def avg_comm_time(self, data: float) -> float:
        """Average transfer time across distinct processor pairs."""
        return self.comm.average_time(data)

    def is_homogeneous_speeds(self) -> bool:
        """True when all processors share one speed (computation side)."""
        speeds = {p.speed for p in self._procs.values()}
        return len(speeds) == 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine({self.name!r}, procs={self.num_procs}, comm={self.comm!r})"
