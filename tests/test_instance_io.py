"""Tests for whole-instance serialisation (and the tuple-id fix in the
DAG JSON format it depends on)."""

import pytest

from repro.dag import io as dag_io
from repro.dag.generators import gaussian_elimination_dag, random_dag
from repro.exceptions import ParseError
from repro.instance import Instance, make_instance
from repro.instance_io import (
    instance_from_json,
    instance_to_json,
    load_instance,
    machine_from_dict,
    machine_to_dict,
    save_instance,
)
from repro.machine import (
    Machine,
    ZeroCommunication,
    etc_from_speeds,
    star_machine,
)
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT


class TestDagJsonTupleIds:
    def test_tuple_ids_round_trip(self):
        dag = gaussian_elimination_dag(5)
        back = dag_io.from_json(dag_io.to_json(dag))
        assert back.has_task(("piv", 0))
        assert back.data(("piv", 0), ("upd", 0, 1)) == dag.data(("piv", 0), ("upd", 0, 1))
        # The old behaviour degraded tuples to JSON arrays; the round
        # trip must preserve hashable tuple identity.
        assert set(back.tasks()) == set(dag.tasks())


class TestMachineDict:
    def test_uniform_round_trip(self):
        m = Machine.homogeneous(3, latency=1.5, bandwidth=4.0, name="m3")
        back = machine_from_dict(machine_to_dict(m))
        assert back.name == "m3"
        assert back.num_procs == 3
        assert back.comm_time(8.0, 0, 2) == pytest.approx(m.comm_time(8.0, 0, 2))

    def test_zero_round_trip(self):
        from repro.machine.processor import Processor

        m = Machine([Processor(0), Processor(1)], ZeroCommunication())
        back = machine_from_dict(machine_to_dict(m))
        assert back.comm_time(100.0, 0, 1) == 0.0

    def test_link_topology_round_trip(self):
        m = star_machine(4, latency=1.0, bandwidth=2.0)
        back = machine_from_dict(machine_to_dict(m))
        for src in m.proc_ids():
            for dst in m.proc_ids():
                assert back.comm_time(6.0, src, dst) == pytest.approx(
                    m.comm_time(6.0, src, dst)
                )

    def test_speeds_preserved(self):
        m = Machine.from_speeds([1.0, 2.5])
        back = machine_from_dict(machine_to_dict(m))
        assert back.speed(1) == 2.5

    def test_missing_key(self):
        with pytest.raises(ParseError):
            machine_from_dict({"processors": []})


class TestInstanceRoundTrip:
    @pytest.mark.parametrize("make", [
        lambda: make_instance(random_dag(25, seed=1), num_procs=3, seed=1),
        lambda: make_instance(gaussian_elimination_dag(5), num_procs=4,
                              heterogeneity=1.0, seed=2),
    ])
    def test_json_round_trip(self, make):
        inst = make()
        back = instance_from_json(instance_to_json(inst))
        assert back.num_tasks == inst.num_tasks
        assert back.num_procs == inst.num_procs
        for t in inst.dag.tasks():
            for p in inst.machine.proc_ids():
                assert back.exec_time(t, p) == pytest.approx(inst.exec_time(t, p))
        assert back.cp_min_length == pytest.approx(inst.cp_min_length)

    def test_schedules_identical_after_round_trip(self):
        inst = make_instance(random_dag(30, seed=3), num_procs=3, seed=3)
        back = instance_from_json(instance_to_json(inst))
        a = HEFT().schedule(inst)
        b = HEFT().schedule(back)
        validate(b, back)
        assert a.makespan == pytest.approx(b.makespan)
        assert a.assignment() == b.assignment()

    def test_file_round_trip(self, tmp_path):
        inst = make_instance(random_dag(15, seed=4), num_procs=2, seed=4)
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        back = load_instance(path)
        assert back.num_tasks == 15

    def test_star_machine_instance(self):
        dag = random_dag(20, seed=5)
        m = star_machine(4, latency=0.5, bandwidth=2.0)
        inst = Instance(dag, m, etc_from_speeds(dag, m))
        back = instance_from_json(instance_to_json(inst))
        assert back.comm_time(*list(dag.edges())[0], 1, 2) == pytest.approx(
            inst.comm_time(*list(dag.edges())[0], 1, 2)
        )

    def test_bad_format_rejected(self):
        with pytest.raises(ParseError):
            instance_from_json('{"format": "other"}')
        with pytest.raises(ParseError):
            instance_from_json("{nope")
