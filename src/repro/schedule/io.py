"""Schedule serialisation (JSON) and SVG Gantt rendering.

Schedules are exchanged as JSON documents listing every placement
(primary and duplicate).  Deserialisation needs the :class:`Machine`
(timelines and processor identity are machine-scoped); task-id fidelity
is preserved for ``int``/``str`` ids and for tuple ids via a tagged
encoding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import ParseError
from repro.machine.cluster import Machine
from repro.schedule.schedule import Schedule
from repro.utils.encoding import decode_id as _decode_id
from repro.utils.encoding import encode_id as _encode_id

PathLike = Union[str, Path]


def schedule_to_json(schedule: Schedule) -> str:
    """Serialise a schedule (placements, duplicates, machine name)."""
    doc = {
        "name": schedule.name,
        "machine": schedule.machine.name,
        "placements": [
            {
                "task": _encode_id(p.task),
                "proc": _encode_id(p.proc),
                "start": p.start,
                "end": p.end,
                "duplicate": p.duplicate,
            }
            for p in sorted(
                schedule.all_placements(), key=lambda p: (p.start, str(p.proc), str(p.task))
            )
        ],
    }
    return json.dumps(doc, indent=2)


def schedule_from_json(text: str, machine: Machine) -> Schedule:
    """Rebuild a schedule onto ``machine``.

    Primaries are added before duplicates so the primary/duplicate
    distinction survives the round trip.  All structural constraints
    (overlap, unknown processor) are re-checked by construction.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict) or "placements" not in doc:
        raise ParseError("schedule JSON must be an object with 'placements'")
    schedule = Schedule(machine, name=doc.get("name", "schedule"))
    records = doc["placements"]
    for want_duplicate in (False, True):
        for rec in records:
            if bool(rec.get("duplicate", False)) != want_duplicate:
                continue
            start = float(rec["start"])
            end = float(rec["end"])
            if end < start:
                raise ParseError(f"placement with end < start: {rec!r}")
            schedule.add(
                _decode_id(rec["task"]),
                _decode_id(rec["proc"]),
                start,
                end - start,
                duplicate=want_duplicate,
            )
    return schedule


def save_schedule(schedule: Schedule, path: PathLike) -> None:
    """Write the JSON form to disk."""
    Path(path).write_text(schedule_to_json(schedule))


def load_schedule(path: PathLike, machine: Machine) -> Schedule:
    """Read the JSON form from disk onto ``machine``."""
    return schedule_from_json(Path(path).read_text(), machine)


# ----------------------------------------------------------------------
# SVG Gantt rendering
# ----------------------------------------------------------------------
_PALETTE = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]


def schedule_to_svg(
    schedule: Schedule,
    width: int = 900,
    row_height: int = 28,
    margin: int = 60,
) -> str:
    """Render a schedule as a standalone SVG Gantt chart.

    One row per processor; duplicates are drawn hatched (reduced
    opacity).  Colours are stable per task id so the same task keeps its
    colour across copies.
    """
    procs = schedule.machine.proc_ids()
    span = schedule.makespan
    height = margin // 2 + row_height * max(len(procs), 1) + margin // 2
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<text x="{margin}" y="14">{_esc(schedule.name)} — makespan {span:g}</text>',
    ]
    if span <= 0:
        parts.append("</svg>")
        return "\n".join(parts)

    chart_w = width - margin - 10
    scale = chart_w / span
    y = margin // 2 + 6
    for proc in procs:
        parts.append(
            f'<text x="4" y="{y + row_height * 0.65:.1f}">P{_esc(str(proc))}</text>'
        )
        parts.append(
            f'<line x1="{margin}" y1="{y + row_height - 2}" x2="{width - 10}" '
            f'y2="{y + row_height - 2}" stroke="#ddd"/>'
        )
        for placed in schedule.proc_entries(proc):
            x = margin + placed.start * scale
            w = max(1.0, placed.duration * scale)
            colour = _PALETTE[hash(str(placed.task)) % len(_PALETTE)]
            opacity = "0.45" if placed.duplicate else "0.95"
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{row_height - 6}" fill="{colour}" fill-opacity="{opacity}" '
                f'stroke="#333" stroke-width="0.5">'
                f"<title>{_esc(str(placed.task))} [{placed.start:g}, {placed.end:g})"
                f'{" (duplicate)" if placed.duplicate else ""}</title></rect>'
            )
            if w > 24:
                parts.append(
                    f'<text x="{x + 3:.1f}" y="{y + row_height * 0.6:.1f}" '
                    f'fill="#fff">{_esc(str(placed.task))[:12]}</text>'
                )
        y += row_height
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(schedule: Schedule, path: PathLike, **kwargs) -> None:
    """Write the SVG Gantt chart to disk."""
    Path(path).write_text(schedule_to_svg(schedule, **kwargs))


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )
