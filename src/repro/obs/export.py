"""Trace exporters: JSONL, Chrome ``trace_event``, Prometheus text.

All exporters accept either a live tracer (anything with ``export()``)
or an already-exported trace dict, so they work identically on the
in-process tracer and on a worker trace shipped across a pickle
boundary.  Chrome output loads directly in ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ (JSON Array Format, ``"X"``
complete events); Prometheus output uses the same conventions as
:mod:`repro.service.metrics` so the two expositions concatenate into
one ``/metrics`` page.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "metric_name",
    "render_trace",
    "span_tree",
    "to_chrome",
    "to_jsonl",
    "to_prometheus",
    "trace_format_for_path",
    "validate_trace",
    "write_trace",
]

#: Containment slack when checking parents cover children (clock reads
#: between a child's exit and its parent's exit are not simultaneous).
_EPS = 1e-6

_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _as_trace(trace) -> dict:
    """Normalise a tracer object or exported dict to the export schema."""
    if isinstance(trace, dict):
        return trace
    return trace.export()


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(trace) -> str:
    """One JSON object per line: spans first, then counters and gauges.

    Span lines carry ``type: "span"`` plus the stored fields; the final
    lines carry the aggregated instruments.  Attribute values that are
    not JSON-serialisable fall back to ``str()``.
    """
    doc = _as_trace(trace)
    lines = []
    for span in sorted(doc["spans"], key=lambda s: (s["t0"], s["id"])):
        lines.append(json.dumps({"type": "span", **span}, default=str))
    if doc.get("counters"):
        lines.append(json.dumps({"type": "counters", "values": doc["counters"]},
                                default=str, sort_keys=True))
    if doc.get("gauges"):
        lines.append(json.dumps({"type": "gauges", "values": doc["gauges"]},
                                default=str, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def to_chrome(trace, *, normalize_ids: bool = False) -> dict:
    """The trace as a Chrome ``trace_event`` document (a JSON-able dict).

    Every span becomes a ``"X"`` (complete) event with microsecond
    timestamps rebased to the earliest span in the trace.  ``pid`` and
    ``tid`` survive merging, so worker spans appear as separate process
    tracks in Perfetto.  ``normalize_ids=True`` remaps pids/tids to
    small integers in first-seen order — used by golden-fixture tests,
    where real process/thread ids would make output non-deterministic.
    """
    doc = _as_trace(trace)
    spans = sorted(doc["spans"], key=lambda s: (s["t0"], s["id"]))
    base = min((s["t0"] for s in spans), default=0.0)
    pid_map: dict[int, int] = {}
    tid_map: dict[tuple[int, int], int] = {}

    def _pid(span: dict) -> int:
        raw = span.get("pid", 0)
        if not normalize_ids:
            return raw
        return pid_map.setdefault(raw, len(pid_map) + 1)

    def _tid(span: dict) -> int:
        raw = span.get("tid", 0)
        if not normalize_ids:
            return raw
        key = (span.get("pid", 0), raw)
        return tid_map.setdefault(key, len(tid_map) + 1)

    events = []
    for pid_raw in sorted({s.get("pid", 0) for s in spans}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": _pid({"pid": pid_raw}),
            "tid": 0,
            "args": {"name": f"{doc.get('name', 'trace')} (pid {pid_raw})"
                     if not normalize_ids else doc.get("name", "trace")},
        })
    for span in spans:
        attrs = {k: v if isinstance(v, (str, int, float, bool, type(None))) else str(v)
                 for k, v in span.get("attrs", {}).items()}
        events.append({
            "name": span["name"],
            "cat": "repro",
            "ph": "X",
            "ts": (span["t0"] - base) * 1e6,
            "dur": (span["t1"] - span["t0"]) * 1e6,
            "pid": _pid(span),
            "tid": _tid(span),
            "args": {"id": span["id"], "parent": span.get("parent"), **attrs},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Prometheus
# ----------------------------------------------------------------------
def metric_name(name: str) -> str:
    """Sanitise an instrument name into a Prometheus metric name."""
    return _METRIC_CHARS.sub("_", name)


def to_prometheus(trace, prefix: str = "repro_obs") -> str:
    """Counters (``_total``-suffixed) and gauges as exposition text.

    Empty when nothing was recorded, so concatenating onto the service
    metrics page is always safe.
    """
    doc = _as_trace(trace)
    lines = []
    for name in sorted(doc.get("counters", {})):
        lines.append(f"{prefix}_{metric_name(name)}_total {doc['counters'][name]:g}")
    for name in sorted(doc.get("gauges", {})):
        lines.append(f"{prefix}_{metric_name(name)} {doc['gauges'][name]:g}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# structure helpers
# ----------------------------------------------------------------------
def span_tree(trace) -> dict[int | None, list[dict]]:
    """Children grouped by parent id (``None`` holds the roots).

    Children are ordered by start time; spans whose parent was evicted
    by the ``max_spans`` bound (or never recorded) count as roots.
    """
    doc = _as_trace(trace)
    spans = sorted(doc["spans"], key=lambda s: (s["t0"], s["id"]))
    known = {s["id"] for s in spans}
    tree: dict[int | None, list[dict]] = {None: []}
    for span in spans:
        parent = span.get("parent")
        if parent not in known:
            parent = None
        tree.setdefault(parent, []).append(span)
    return tree


def validate_trace(trace) -> list[str]:
    """Well-formedness violations of a trace (empty when sound).

    Checks: unique span ids, no negative durations, and every parent
    interval containing its children (within a small slack — the child
    records its end before the parent records its own).
    """
    doc = _as_trace(trace)
    spans = doc["spans"]
    problems: list[str] = []
    by_id: dict[int, dict] = {}
    for span in spans:
        sid = span["id"]
        if sid in by_id:
            problems.append(f"duplicate span id {sid} ({span['name']})")
        by_id[sid] = span
        if span["t1"] < span["t0"]:
            problems.append(
                f"negative duration on span {sid} ({span['name']}): "
                f"{span['t1'] - span['t0']:.9f}s"
            )
    for span in spans:
        parent = by_id.get(span.get("parent"))
        if parent is None:
            continue
        if span["t0"] < parent["t0"] - _EPS or span["t1"] > parent["t1"] + _EPS:
            problems.append(
                f"span {span['id']} ({span['name']}) escapes parent "
                f"{parent['id']} ({parent['name']})"
            )
    return problems


# ----------------------------------------------------------------------
# file output
# ----------------------------------------------------------------------
def trace_format_for_path(path: str) -> str:
    """Trace format implied by a file name: ``.jsonl`` -> jsonl, else chrome."""
    return "jsonl" if str(path).endswith(".jsonl") else "chrome"


def render_trace(trace, fmt: str = "chrome") -> str:
    """Serialise a trace in one of the named formats."""
    if fmt == "chrome":
        return json.dumps(to_chrome(trace), indent=1) + "\n"
    if fmt == "jsonl":
        return to_jsonl(trace)
    if fmt == "prometheus":
        return to_prometheus(trace)
    raise ValueError(f"unknown trace format {fmt!r}; known: chrome, jsonl, prometheus")


def write_trace(trace, path, fmt: str | None = None) -> Path:
    """Write a trace file; format from ``fmt`` or the file extension."""
    out = Path(path)
    out.write_text(render_trace(trace, fmt or trace_format_for_path(out)))
    return out
