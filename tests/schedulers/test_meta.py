"""Tests for the metaheuristic schedulers (SA, GA) and their decoder."""

import pytest

from repro.dag.generators import random_dag
from repro.exceptions import ConfigurationError
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT
from repro.schedulers.meta import (
    GeneticScheduler,
    SimulatedAnnealingScheduler,
    decode_assignment,
)
from repro.schedulers.meta.decoder import rank_order


class TestDecoder:
    def test_decode_heft_assignment_feasible(self, topcuoglu_instance):
        heft = HEFT().schedule(topcuoglu_instance)
        decoded = decode_assignment(topcuoglu_instance, heft.assignment())
        validate(decoded, topcuoglu_instance)
        # Decoding HEFT's own assignment in rank order reproduces its
        # makespan (same order, same placement policy, fixed procs).
        assert decoded.makespan == pytest.approx(heft.makespan)

    def test_decode_all_on_one_proc(self, topcuoglu_instance):
        assignment = {t: 0 for t in topcuoglu_instance.dag.tasks()}
        s = decode_assignment(topcuoglu_instance, assignment)
        validate(s, topcuoglu_instance)
        total = sum(topcuoglu_instance.exec_time(t, 0) for t in assignment)
        assert s.makespan == pytest.approx(total)

    def test_rank_order_topological(self, topcuoglu_instance):
        order = rank_order(topcuoglu_instance)
        pos = {t: i for i, t in enumerate(order)}
        for u, v in topcuoglu_instance.dag.edges():
            assert pos[u] < pos[v]


@pytest.fixture(
    params=[
        lambda seed: SimulatedAnnealingScheduler(iterations=200, seed=seed),
        lambda seed: GeneticScheduler(population=12, generations=8, seed=seed),
    ],
    ids=["SA", "GA"],
)
def make_meta(request):
    return request.param


class TestMetaheuristics:
    def test_feasible(self, make_meta, topcuoglu_instance):
        s = make_meta(0).schedule(topcuoglu_instance)
        validate(s, topcuoglu_instance)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_never_worse_than_heft(self, make_meta, seed):
        dag = random_dag(30, seed=seed)
        inst = make_instance(dag, num_procs=3, heterogeneity=0.75, seed=seed)
        meta = make_meta(seed).schedule(inst)
        heft = HEFT().schedule(inst)
        validate(meta, inst)
        assert meta.makespan <= heft.makespan + 1e-9

    def test_deterministic_per_seed(self, make_meta, topcuoglu_instance):
        a = make_meta(7).schedule(topcuoglu_instance).makespan
        b = make_meta(7).schedule(topcuoglu_instance).makespan
        assert a == b

    def test_single_processor_short_circuits(self, make_meta):
        dag = random_dag(15, seed=4)
        inst = make_instance(dag, num_procs=1, seed=4)
        s = make_meta(0).schedule(inst)
        validate(s, inst)

    def test_improves_sometimes(self, make_meta):
        # Across several comm-heavy instances the search should find at
        # least one strict improvement over HEFT.
        improved = 0
        for seed in range(4):
            dag = random_dag(30, ccr=5.0, seed=seed)
            inst = make_instance(dag, num_procs=3, heterogeneity=1.0, seed=seed)
            meta = make_meta(seed).schedule(inst).makespan
            heft = HEFT().schedule(inst).makespan
            improved += meta < heft - 1e-9
        assert improved >= 1


class TestParameterValidation:
    def test_sa_params(self):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingScheduler(iterations=-1)
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingScheduler(cooling=1.0)
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingScheduler(initial_temp_fraction=0.0)

    def test_ga_params(self):
        with pytest.raises(ConfigurationError):
            GeneticScheduler(population=1)
        with pytest.raises(ConfigurationError):
            GeneticScheduler(tournament=0)
        with pytest.raises(ConfigurationError):
            GeneticScheduler(mutation_rate=1.5)
        with pytest.raises(ConfigurationError):
            GeneticScheduler(elitism=24, population=24)
        with pytest.raises(ConfigurationError):
            GeneticScheduler(generations=-1)

    def test_ga_zero_generations_returns_heft(self, topcuoglu_instance):
        s = GeneticScheduler(generations=0).schedule(topcuoglu_instance)
        assert s.makespan == pytest.approx(80.0)
