"""E7 — FFT: SLR and speedup vs input points.

Expected shape: the butterfly's regular parallelism gives good speedup
that grows with the input size until q=8 saturates; the improved
scheduler dominates HEFT on SLR at every size.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e7_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e7_slr_shape(quick):
    res = e7_data(quick, "slr")
    print("\n" + res.table("E7a: FFT SLR vs points"))
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    for i, _ in enumerate(res.x_values):
        assert res.series["IMP"][i] <= res.series["HEFT"][i] + 1e-9


def test_e7_speedup_shape(quick):
    res = e7_data(quick, "speedup")
    print("\n" + res.table("E7b: FFT speedup vs points"))
    # Larger FFTs expose more parallel work: speedup rises between the
    # extremes for the contribution.
    assert res.series["IMP"][-1] > res.series["IMP"][0]
    # Bounded by the machine size.
    for vals in res.series.values():
        assert all(v <= W.DEFAULTS.num_procs + 1e-6 for v in vals)


def test_e7_benchmark(benchmark):
    rng = np.random.default_rng(207)
    inst = W.fft_instance(rng, points=32)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
