"""Clustering-based schedulers (the third classic school, next to list
scheduling and duplication).

Clustering algorithms first group tasks into clusters assuming unbounded
processors (zeroing the communication inside a cluster), then fold the
clusters onto the bounded machine and order the tasks.  Two classic
cluster-growing strategies are provided:

* :class:`DSC` — Dominant Sequence Clustering (Yang & Gerasoulis, 1994),
* :class:`LinearClustering` — repeated critical-path extraction
  (Kim & Browne, 1988).
"""

from repro.schedulers.clustering.base import ClusteringScheduler
from repro.schedulers.clustering.dsc import DSC
from repro.schedulers.clustering.linear import LinearClustering

__all__ = ["ClusteringScheduler", "DSC", "LinearClustering"]
