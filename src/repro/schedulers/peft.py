"""PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa, 2014).

The best-known *successor* of the 2007-era algorithms, included as a
forward-looking baseline: an optimistic cost table (OCT) estimates, for
every (task, processor), the remaining path cost to an exit assuming
every descendant later picks its best processor; tasks are prioritised
by their average OCT and placed to minimise ``EFT + OCT`` (the
"optimistic EFT").  Like HEFT it is O(e·q²) due to the table.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Placement, Scheduler, placement_on
from repro.types import ProcId, TaskId


class PEFT(Scheduler):
    """Predict-Earliest-Finish-Time scheduler."""

    name = "PEFT"

    def optimistic_cost_table(self, instance: Instance) -> dict[TaskId, dict[ProcId, float]]:
        """OCT[t][p]: optimistic remaining cost after running ``t`` on ``p``.

        ``OCT(t, p) = max over children c of
        min over processors w of (OCT(c, w) + w(c, w) + [w != p] * c̄(t, c))``
        with 0 for exit tasks.
        """
        dag = instance.dag
        procs = instance.machine.proc_ids()
        oct_table: dict[TaskId, dict[ProcId, float]] = {}
        for t in reversed(dag.topological_order()):
            row: dict[ProcId, float] = {}
            children = dag.successors(t)
            for p in procs:
                worst = 0.0
                for c in children:
                    avg_comm = instance.avg_comm_time(t, c)
                    best = min(
                        oct_table[c][w]
                        + instance.exec_time(c, w)
                        + (avg_comm if w != p else 0.0)
                        for w in procs
                    )
                    worst = max(worst, best)
                row[p] = worst
            oct_table[t] = row
        return oct_table

    def schedule(self, instance: Instance) -> Schedule:
        dag = instance.dag
        procs = instance.machine.proc_ids()
        oct_table = self.optimistic_cost_table(instance)
        rank = {t: sum(oct_table[t].values()) / len(procs) for t in dag.tasks()}
        pos = {t: i for i, t in enumerate(dag.topological_order())}

        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        # PEFT schedules in ready order by descending average OCT (the
        # rank is not monotone along edges, so a static sort can violate
        # precedence — use the priority-driven ready queue).
        import heapq

        indegree = {t: dag.in_degree(t) for t in dag.tasks()}
        heap = [(-rank[t], pos[t], t) for t in dag.entry_tasks()]
        heapq.heapify(heap)
        while heap:
            _, _, task = heapq.heappop(heap)
            best: Placement | None = None
            best_score = float("inf")
            for j, proc in enumerate(procs):
                cand = placement_on(schedule, instance, task, proc, insertion=True)
                score = cand.end + oct_table[task][proc]
                if score < best_score - 1e-12:
                    best_score = score
                    best = cand
            assert best is not None
            schedule.add(task, best.proc, best.start, best.end - best.start)
            for child in dag.successors(task):
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(heap, (-rank[child], pos[child], child))
        return schedule
