"""Crash-restart suite for the persistent schedule cache.

The segment store's contract is crash-shaped: every append is fsynced,
so a killed daemon loses at most the record it was writing, and a
restarted daemon replays everything before that point bit-identically.
These tests exercise the contract at its edges — an abrupt ``os._exit``
mid-service, a tail record truncated or CRC-corrupted on disk, a
clobbered file header, and records a future build cannot decode — and
assert recovery is loud (``cache.recover`` report / span) but lossless
for every intact record.

Engines run ``workers=0`` (thread compute) so recompute can be proven
absent by monkeypatching the compute function to explode.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.bench import workloads as W
from repro.instance_io import instance_to_json
from repro.obs import Tracer
from repro.service import protocol
from repro.service.cache import SegmentStore, request_key
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.errors import WorkerError
from repro.utils.rng import as_generator

#: Response-envelope fields that legitimately differ between a cold
#: response and a recovered warm hit.
ENVELOPE = ("cache_hit", "fingerprint", "server_ms", "trace_id")


def _instances(n: int, num_tasks: int = 10):
    return [
        W.random_instance(as_generator(900 + i), num_tasks=num_tasks, num_procs=3)
        for i in range(n)
    ]


def _canonical(payload: dict) -> str:
    return json.dumps(
        {k: v for k, v in payload.items() if k not in ENVELOPE}, sort_keys=True
    )


def _populate(cache_dir: str, instances, alg: str = "HEFT",
              tracer: Tracer | None = None) -> list[dict]:
    """Run a daemonless engine over ``instances``, persisting as it goes."""

    async def scenario():
        engine = SchedulingEngine(
            EngineConfig(workers=0, cache_dir=cache_dir), tracer=tracer
        )
        await engine.start()
        try:
            return [await engine.submit(inst, alg) for inst in instances]
        finally:
            await engine.stop()

    return asyncio.run(scenario())


def _restart(cache_dir: str, instances, alg: str = "HEFT",
             tracer: Tracer | None = None, forbid_compute: bool = False,
             monkeypatch=None):
    """Boot a fresh engine on ``cache_dir`` and re-request ``instances``.

    ``forbid_compute=True`` replaces the worker compute function with a
    tripwire, proving every answer came from the recovered segment.
    """

    async def scenario():
        engine = SchedulingEngine(
            EngineConfig(workers=0, cache_dir=cache_dir), tracer=tracer
        )
        await engine.start()
        try:
            payloads = [await engine.submit(inst, alg) for inst in instances]
            return engine.recovery_report, payloads
        finally:
            await engine.stop()

    if forbid_compute:
        def _tripwire(text, alg):
            raise AssertionError("warm restart recomputed a persisted schedule")

        monkeypatch.setattr(protocol, "compute_schedule_payload", _tripwire)
    return asyncio.run(scenario())


def _segment(cache_dir) -> str:
    return os.path.join(str(cache_dir), "schedules.seg")


# ----------------------------------------------------------------------
# the happy crash: restart comes back warm, bit-identical, no recompute
# ----------------------------------------------------------------------
def test_restart_answers_from_segment_without_recompute(tmp_path, monkeypatch):
    instances = _instances(4)
    before = _populate(str(tmp_path), instances)
    report, after = _restart(str(tmp_path), instances, forbid_compute=True,
                             monkeypatch=monkeypatch)
    assert report == {"recovered": 4, "skipped": 0, "truncated": 0,
                      "rotated": 0, "undecodable": 0}
    for cold, warm in zip(before, after):
        assert warm["cache_hit"] is True
        assert _canonical(warm) == _canonical(cold)


def test_killed_daemon_loses_nothing_already_fsynced(tmp_path, monkeypatch):
    """A hard ``os._exit`` mid-service (no ``stop()``, no file close, no
    flush) must not cost a single completed append: the child process
    schedules and dies abruptly; the parent recovers every record."""
    instances = _instances(3)
    pid = os.fork()
    if pid == 0:  # child: populate, then die the way a SIGKILL would land
        try:
            _populate(str(tmp_path), instances)
            os._exit(0)
        except BaseException:
            os._exit(1)
    _, status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(status) == 0
    expected = [
        protocol.compute_schedule_payload(instance_to_json(inst), "HEFT")
        for inst in instances
    ]
    report, after = _restart(str(tmp_path), instances, forbid_compute=True,
                             monkeypatch=monkeypatch)
    assert report["recovered"] == 3
    for cold, warm in zip(expected, after):
        assert warm["cache_hit"] is True
        assert _canonical(warm) == _canonical(cold)


# ----------------------------------------------------------------------
# damaged tails: recovery skips, truncates, reports — and keeps the rest
# ----------------------------------------------------------------------
def test_truncated_tail_record_is_skipped_and_reported(tmp_path):
    instances = _instances(3)
    before = _populate(str(tmp_path), instances)
    seg = _segment(tmp_path)
    os.truncate(seg, os.path.getsize(seg) - 5)  # crash mid-append

    report, after = _restart(str(tmp_path), instances)
    assert report["recovered"] == 2
    assert report["skipped"] == 1 and report["truncated"] == 1
    # The two intact records answer warm and bit-identical; the lost
    # tail recomputes (content-addressed, so recompute == lost record).
    assert [p["cache_hit"] for p in after] == [True, True, False]
    for cold, warm in zip(before, after):
        assert _canonical(warm) == _canonical(cold)

    # The recompute re-persisted: the file is whole again, and the next
    # restart recovers all three with no skip.
    report2, _ = _restart(str(tmp_path), instances)
    assert report2 == {"recovered": 3, "skipped": 0, "truncated": 0,
                       "rotated": 0, "undecodable": 0}


def test_corrupted_tail_crc_is_skipped(tmp_path):
    instances = _instances(3)
    before = _populate(str(tmp_path), instances)
    seg = _segment(tmp_path)
    size = os.path.getsize(seg)
    with open(seg, "r+b") as fh:  # flip one payload byte of the tail record
        fh.seek(size - 3)
        byte = fh.read(1)
        fh.seek(size - 3)
        fh.write(bytes([byte[0] ^ 0xFF]))

    report, after = _restart(str(tmp_path), instances)
    assert report["recovered"] == 2
    assert report["skipped"] == 1 and report["truncated"] == 1
    assert [p["cache_hit"] for p in after] == [True, True, False]
    for cold, warm in zip(before, after):
        assert _canonical(warm) == _canonical(cold)


def test_unusable_header_rotates_segment_aside(tmp_path):
    instances = _instances(2)
    _populate(str(tmp_path), instances)
    seg = _segment(tmp_path)
    with open(seg, "r+b") as fh:
        fh.write(b"NOPE")  # clobber the file magic

    report, after = _restart(str(tmp_path), instances)
    assert report["rotated"] == 1 and report["recovered"] == 0
    assert os.path.exists(seg + ".corrupt"), "evidence must be kept, not deleted"
    assert all(p["cache_hit"] is False for p in after)
    # The fresh segment is immediately serviceable again.
    report2, after2 = _restart(str(tmp_path), instances)
    assert report2["recovered"] == 2
    assert all(p["cache_hit"] is True for p in after2)


def test_undecodable_record_is_counted_not_trusted(tmp_path):
    """A CRC-valid record whose payload the current wire build cannot
    decode (e.g. written by a different wire version) is reported as
    ``undecodable`` and never enters the cache."""
    instances = _instances(2)
    _populate(str(tmp_path), instances)
    store = SegmentStore(str(tmp_path))
    store.append("ab" * 32, b"not a wire payload")
    store.close()

    report, after = _restart(str(tmp_path), instances)
    assert report["recovered"] == 3  # CRC-wise all records are intact...
    assert report["undecodable"] == 1  # ...but one never reaches the cache
    assert all(p["cache_hit"] is True for p in after)


# ----------------------------------------------------------------------
# observability: persist and recover are spans, not mysteries
# ----------------------------------------------------------------------
def test_persist_and_recover_emit_spans_with_report(tmp_path):
    instances = _instances(2)
    write_tracer = Tracer()
    _populate(str(tmp_path), instances, tracer=write_tracer)
    persists = [s for s in write_tracer.spans() if s["name"] == "cache.persist"]
    assert len(persists) == 2
    assert all(s["attrs"]["key"] for s in persists)

    seg = _segment(tmp_path)
    os.truncate(seg, os.path.getsize(seg) - 5)
    read_tracer = Tracer()
    report, _ = _restart(str(tmp_path), instances, tracer=read_tracer)
    recovers = [s for s in read_tracer.spans() if s["name"] == "cache.recover"]
    assert len(recovers) == 1
    assert recovers[0]["attrs"] == dict(report)
    assert recovers[0]["attrs"]["skipped"] == 1


# ----------------------------------------------------------------------
# failure hygiene around the persist site
# ----------------------------------------------------------------------
def test_encode_fault_never_persists_a_record(tmp_path):
    """A failure inside payload encoding (``worker.encode`` fault site)
    surfaces as WorkerError and leaves the segment without a record for
    that key — a retry then computes, succeeds, and persists normally."""
    from repro.service import faults
    from repro.service.faults import FaultPlan, FaultRule

    instance = _instances(1)[0]

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, cache_dir=str(tmp_path)))
        faults.install(FaultPlan((
            FaultRule(point="worker.encode", action="raise", times=1),
        )))
        await engine.start()
        try:
            with pytest.raises(WorkerError, match="FaultInjected"):
                await engine.submit(instance, "HEFT")
            assert request_key(instance, "HEFT") not in engine.cache
            retry = await engine.submit(instance, "HEFT")  # budget spent
            assert retry["placements"]
            return retry
        finally:
            faults.clear()
            await engine.stop()

    retried = asyncio.run(scenario())
    store = SegmentStore(str(tmp_path))
    entries, report = store.recover()
    store.close()
    assert report["recovered"] == 1  # only the successful retry persisted
    assert list(entries) == [request_key(instance, "HEFT")]
    from repro.service.wire import decode_payload

    assert _canonical(decode_payload(entries[request_key(instance, "HEFT")])) \
        == _canonical(retried)


def test_persist_failure_degrades_to_memory_only(tmp_path):
    """A dead cache dir mid-service must not fail requests: the engine
    drops to memory-only caching and keeps answering."""
    instances = _instances(2)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, cache_dir=str(tmp_path)))
        await engine.start()
        try:
            first = await engine.submit(instances[0], "HEFT")
            engine._store.close()
            engine._store._fh = None
            os.remove(_segment(tmp_path))
            os.rmdir(str(tmp_path))  # revoke the cache dir entirely
            second = await engine.submit(instances[1], "HEFT")
            assert engine._store is None, "engine must shed the dead store"
            again = await engine.submit(instances[1], "HEFT")
            assert again["cache_hit"] is True
            return first, second
        finally:
            await engine.stop()

    first, second = asyncio.run(scenario())
    assert first["placements"] and second["placements"]
