"""Instance fingerprinting: stability, canonicalisation, sensitivity.

The content-addressed schedule cache is only sound if the fingerprint
is (a) equal for equal content no matter how the instance was built or
in which process, and (b) different under *any* perturbation of the
content.  Both directions are pinned here, plus a golden digest so an
accidental algorithm change cannot slip through as "all tests still
self-consistent".
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.instance import Instance, make_instance
from repro.machine.cluster import Machine
from repro.machine.etc import ETCMatrix
from repro.service.cache import request_key

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Golden digest of `_golden_instance()`.  If an *intentional* change to
#: the canonical document invalidates it, bump the format tag in
#: `canonical_instance_doc` and regenerate — silently changing the
#: fingerprint of existing content would orphan every persisted cache.
GOLDEN = "28597548dc13e70ac53ab6cf652ed7ba04af28e87cb0d99089a8c7b3a4d52ea6"

_GOLDEN_SCRIPT = """
import numpy as np
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.instance import Instance
from repro.machine.cluster import Machine
from repro.machine.etc import ETCMatrix

dag = TaskDAG("golden")
for tid, cost in (("a", 2.0), ("b", 4.0), ("c", 3.0), ("d", 2.0)):
    dag.add_task(Task(tid, cost=cost))
dag.add_edge("a", "b", data=3.0)
dag.add_edge("a", "c", data=1.0)
dag.add_edge("b", "d", data=2.0)
dag.add_edge("c", "d", data=2.0)
machine = Machine.homogeneous(2, latency=0.5, bandwidth=2.0)
etc = ETCMatrix(["a", "b", "c", "d"], machine.proc_ids(),
                np.array([[1.5, 2.5], [4.0, 3.0], [3.25, 2.75], [2.0, 1.0]]))
print(Instance(dag=dag, machine=machine, etc=etc).fingerprint())
"""


def _golden_instance(task_order=("a", "b", "c", "d"), edge_order=None) -> Instance:
    costs = {"a": 2.0, "b": 4.0, "c": 3.0, "d": 2.0}
    etc_rows = {"a": [1.5, 2.5], "b": [4.0, 3.0], "c": [3.25, 2.75], "d": [2.0, 1.0]}
    edges = edge_order or [("a", "b", 3.0), ("a", "c", 1.0), ("b", "d", 2.0), ("c", "d", 2.0)]
    dag = TaskDAG("golden")
    for tid in task_order:
        dag.add_task(Task(tid, cost=costs[tid]))
    for u, v, d in edges:
        dag.add_edge(u, v, data=d)
    machine = Machine.homogeneous(2, latency=0.5, bandwidth=2.0)
    etc = ETCMatrix(list(task_order), machine.proc_ids(),
                    np.array([etc_rows[t] for t in task_order]))
    return Instance(dag=dag, machine=machine, etc=etc)


def test_golden_digest():
    assert _golden_instance().fingerprint() == GOLDEN


def test_stable_across_process_restarts():
    """Same content, fresh interpreter (fresh hash seed) -> same digest."""
    out = subprocess.run(
        [sys.executable, "-c", _GOLDEN_SCRIPT],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "12345"},
    )
    assert out.stdout.strip() == GOLDEN


def test_independent_of_construction_order():
    """Task/edge insertion order and ETC row order are not content."""
    reordered = _golden_instance(
        task_order=("d", "b", "a", "c"),
        edge_order=[("c", "d", 2.0), ("a", "b", 3.0), ("b", "d", 2.0), ("a", "c", 1.0)],
    )
    assert reordered.fingerprint() == GOLDEN


def test_name_is_metadata():
    renamed = _golden_instance()
    object.__setattr__(renamed, "name", "something-else")
    assert renamed.fingerprint() == GOLDEN


def test_json_round_trip_preserves_fingerprint():
    from repro.instance_io import instance_from_json, instance_to_json

    inst = make_instance(
        _golden_instance().dag, num_procs=5, heterogeneity=0.8, seed=99
    )
    assert instance_from_json(instance_to_json(inst)).fingerprint() == inst.fingerprint()


@pytest.mark.parametrize(
    "perturb",
    [
        "edge_data",
        "etc_cell",
        "task_cost",
        "drop_edge",
        "extra_task",
        "proc_speed",
        "comm_latency",
    ],
)
def test_distinct_under_single_perturbation(perturb):
    base = _golden_instance().fingerprint()
    costs = {"a": 2.0, "b": 4.0, "c": 3.0, "d": 2.0}
    etc_rows = {"a": [1.5, 2.5], "b": [4.0, 3.0], "c": [3.25, 2.75], "d": [2.0, 1.0]}
    edges = [("a", "b", 3.0), ("a", "c", 1.0), ("b", "d", 2.0), ("c", "d", 2.0)]
    latency, speeds = 0.5, None

    if perturb == "edge_data":
        edges[2] = ("b", "d", 2.0 + 1e-9)
    elif perturb == "etc_cell":
        etc_rows["c"] = [3.25, 2.7500001]
    elif perturb == "task_cost":
        costs["b"] = 4.5
    elif perturb == "drop_edge":
        edges = edges[:-1]
    elif perturb == "comm_latency":
        latency = 0.25

    dag = TaskDAG("golden")
    for tid, cost in costs.items():
        dag.add_task(Task(tid, cost=cost))
    if perturb == "extra_task":
        dag.add_task(Task("e", cost=1.0))
        etc_rows = {**etc_rows, "e": [1.0, 1.0]}
    for u, v, d in edges:
        dag.add_edge(u, v, data=d)
    if perturb == "proc_speed":
        machine = Machine.from_speeds([1.0, 2.0], latency=latency, bandwidth=2.0)
    else:
        machine = Machine.homogeneous(2, latency=latency, bandwidth=2.0)
    etc = ETCMatrix(list(dag.tasks()), machine.proc_ids(),
                    np.array([etc_rows[t] for t in dag.tasks()]))
    assert Instance(dag=dag, machine=machine, etc=etc).fingerprint() != base


def test_request_key_separates_schedulers():
    """Same instance, different scheduler config -> different cache key."""
    inst = _golden_instance()
    keys = {request_key(inst, alg) for alg in ("HEFT", "HEFT-median", "CPOP", "IMP")}
    assert len(keys) == 4
    assert request_key(inst, "HEFT") == request_key(_golden_instance(), "HEFT")
