"""Per-processor busy timeline with insertion-based slot search.

Every list scheduler in this library shares this substrate, so
baseline-vs-contribution comparisons measure *policy* differences, not
bookkeeping differences.  A :class:`Timeline` is an ordered set of
non-overlapping :class:`Slot` intervals; :meth:`Timeline.find_slot`
implements the classic *insertion-based* policy (Topcuoglu et al.): the
earliest gap after the ready time that fits the duration, falling back to
the end of the last slot.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ScheduleError
from repro.types import TaskId

#: Tolerance for floating-point interval comparisons.  Two events closer
#: than this are considered simultaneous.
EPS = 1e-9


def scan_slots(starts: list[float], ends: list[float], ready: float, duration: float) -> float:
    """Insertion-policy slot search over parallel start/end lists.

    ``starts``/``ends`` describe non-overlapping busy intervals sorted by
    start time (ties in original insertion order).  Returns the earliest
    start ``>= ready`` of an idle gap that fits ``duration``, falling
    back to the end of the last busy interval — the exact float sequence
    of :meth:`Timeline.find_slot`, shared with the compiled flat-array
    decoder (:mod:`repro.compiled`) so both paths are bit-identical by
    construction.  Zero-width intervals (``end - start <= EPS``) occupy
    no time and are skipped, as in :meth:`Timeline.find_slot`.
    """
    if not starts:
        return ready
    idx = bisect.bisect_left(starts, ready)
    prev_end = 0.0
    j = idx - 1
    while j >= 0:
        if ends[j] - starts[j] > EPS:
            prev_end = ends[j]
            break
        j -= 1
    for i in range(idx, len(starts)):
        if ends[i] - starts[i] <= EPS:
            continue
        start = ready if ready > prev_end else prev_end
        if starts[i] - start >= duration - EPS:
            return start
        prev_end = ends[i]
    return ready if ready > prev_end else prev_end


@dataclass(frozen=True, order=True)
class Slot:
    """A half-open busy interval ``[start, end)`` executing ``task``."""

    start: float
    end: float
    task: TaskId = None

    def __post_init__(self) -> None:
        if not (self.end >= self.start >= 0):
            raise ScheduleError(
                f"invalid slot [{self.start}, {self.end}) for task {self.task!r}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Sorted, non-overlapping busy intervals of one processor."""

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._slots: list[Slot] = []
        self._max_end = 0.0

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Slot]:
        return iter(self._slots)

    @property
    def end_time(self) -> float:
        """Latest finish time over all slots (0.0 when idle).

        Cached: with zero-width slots in play the *last-by-start* slot is
        not necessarily the latest-ending one.
        """
        return self._max_end

    def busy_time(self) -> float:
        """Total occupied time."""
        return sum(s.duration for s in self._slots)

    def idle_time(self) -> float:
        """Total gap time between time 0 and the last finish."""
        return self.end_time - self.busy_time()

    def find_slot(self, ready: float, duration: float, insertion: bool = True) -> float:
        """Earliest feasible start time for a task of ``duration`` that
        cannot begin before ``ready``.

        With ``insertion=True`` (default) idle gaps between existing slots
        are considered; otherwise the task can only be appended after the
        current end (the *non-insertion* policy of e.g. classic ETF).
        The timeline is not modified.
        """
        if duration < 0:
            raise ScheduleError(f"duration must be >= 0, got {duration}")
        if ready < 0:
            raise ScheduleError(f"ready time must be >= 0, got {ready}")
        if not insertion:
            return max(ready, self.end_time)
        # Scanning starts from the first slot that starts at/after
        # `ready`; earlier gaps close before the task could begin anyway.
        # The gap following the previous *non-empty* slot may still
        # straddle `ready` (zero-width slots occupy no time and are
        # skipped).  The scan itself is shared with the compiled decoder.
        return scan_slots(self._starts, self._ends, ready, duration)

    def add(self, start: float, duration: float, task: TaskId, check: bool = True) -> Slot:
        """Occupy ``[start, start+duration)`` with ``task``.

        Raises :class:`ScheduleError` if the interval overlaps an existing
        slot (beyond floating-point tolerance).  ``check=False`` skips the
        overlap scan for callers that already guarantee feasibility (the
        compiled executor materialising a schedule whose slots came from
        :func:`scan_slots` in the first place); the stored floats are
        identical either way.
        """
        slot = Slot(start=start, end=start + duration, task=task)
        idx = bisect.bisect_left(self._starts, slot.start)

        if check:
            def overlaps(a: Slot, b: Slot) -> bool:
                # Half-open intervals; zero-width slots are empty sets and
                # never conflict with anything.
                if a.duration <= EPS or b.duration <= EPS:
                    return False
                return a.start < b.end - EPS and b.start < a.end - EPS

            # Forward: any stored slot starting inside the new interval.
            j = idx
            while j < len(self._slots) and self._slots[j].start < slot.end - EPS:
                if overlaps(self._slots[j], slot):
                    raise ScheduleError(
                        f"slot {slot} overlaps {self._slots[j]} on the same processor"
                    )
                j += 1
            # Backward: the nearest earlier non-empty slot is the only earlier
            # one that can reach into the new interval (non-empty stored slots
            # are pairwise disjoint).
            j = idx - 1
            while j >= 0:
                prev = self._slots[j]
                if prev.duration > EPS:
                    if overlaps(prev, slot):
                        raise ScheduleError(
                            f"slot {slot} overlaps {prev} on the same processor"
                        )
                    break
                j -= 1
        self._starts.insert(idx, slot.start)
        self._ends.insert(idx, slot.end)
        self._slots.insert(idx, slot)
        self._max_end = max(self._max_end, slot.end)
        return slot

    def remove(self, task: TaskId, start: float | None = None) -> None:
        """Remove the slot executing ``task``.

        When a task has several copies on one timeline, ``start``
        disambiguates which copy to drop; otherwise the first match goes.
        """
        for i, slot in enumerate(self._slots):
            if slot.task == task and (start is None or abs(slot.start - start) <= EPS):
                del self._slots[i]
                del self._starts[i]
                del self._ends[i]
                self._max_end = max((s.end for s in self._slots), default=0.0)
                return
        raise ScheduleError(f"task {task!r} not on this timeline")

    def slots(self) -> list[Slot]:
        """Copy of the slot list, ordered by start time."""
        return list(self._slots)

    def gaps(self) -> list[tuple[float, float]]:
        """Idle intervals between time 0 and the last finish."""
        out: list[tuple[float, float]] = []
        prev = 0.0
        for slot in self._slots:
            if slot.duration <= EPS:
                continue  # zero-width slots occupy no time
            if slot.start > prev + EPS:
                out.append((prev, slot.start))
            prev = max(prev, slot.end)
        return out

    def copy(self) -> "Timeline":
        clone = Timeline()
        clone._starts = list(self._starts)
        clone._ends = list(self._ends)
        clone._slots = list(self._slots)
        clone._max_end = self._max_end
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timeline(slots={len(self._slots)}, end={self.end_time:g})"
