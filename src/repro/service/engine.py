"""Asynchronous batching engine: the compute core of the service.

Request lifecycle::

    submit() ──> cache hit? ──────────────────────────────> respond
        │
        ├──> identical request already in flight? ─┐         (coalesce:
        │                                          ├───────> share the
        └──> bounded queue (full -> 429) ──> dispatcher      same future)
                                                │
                             batch of <= batch_size jobs
                                                │
                                  ProcessPoolExecutor worker
                              (compute_schedule_payload: parse,
                               schedule, validate, serialise)
                                                │
                               cache.put + resolve the future

Design notes:

* **Coalescing at two levels.**  The content-addressed cache folds
  repeats over time; the in-flight table folds repeats *in the same
  instant* — N concurrent submissions of one instance cost one
  computation, and all N waiters share its future.
* **Backpressure is an error, not a wait.**  When the queue is at
  capacity, :meth:`submit` raises :class:`ServiceOverloadedError`
  immediately (HTTP 429) instead of queueing unbounded work; shedding
  load early is what keeps tail latency bounded under overload.
* **Timeouts don't kill shared work.**  A waiter that times out stops
  waiting (HTTP 504), but the computation — potentially shared with
  other waiters, and cacheable — runs to completion behind
  :func:`asyncio.shield`.
* **Workers are processes.**  The cold path pickles ``(instance JSON,
  alg)`` to a :class:`~concurrent.futures.ProcessPoolExecutor`, the
  same module-level-function discipline as the PR-1 sweep runner, so
  the GIL never serialises scheduling work.  ``workers=0`` degrades to
  a thread, which tests use to monkeypatch the compute function.
* **Lowering is memoised per worker.**  Inside each worker,
  :func:`~repro.service.protocol.compute_schedule_payload` resolves the
  request body through a fingerprint-keyed LRU of parsed instances, so
  warm requests for known content (same instance, different scheduler;
  response evicted from this engine's cache) skip JSON parsing and the
  kernel/compiled flat-array lowering and go straight to scheduling.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass

from repro.instance import Instance
from repro.instance_io import instance_to_json
from repro.obs import NullTracer, Tracer, get_tracer, to_prometheus
from repro.service import faults, protocol
from repro.service.cache import ScheduleCache, SegmentStore, request_key
from repro.service.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    WorkerError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.resilience import Deadline


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of one engine (all bounded, all explicit)."""

    workers: int = 2
    cache_size: int = 256
    queue_depth: int = 64
    batch_size: int = 8
    default_timeout: float = 30.0
    #: Pool self-healing: how many pool respawns are allowed within one
    #: sliding ``respawn_window`` before the engine declares itself
    #: unrecoverable and closes (crash-looping workers would otherwise
    #: burn CPU forever re-warming doomed pools).
    max_respawns: int = 3
    respawn_window: float = 60.0
    #: Chaos-testing hook: a picklable fault plan installed in every
    #: pool worker (including respawned pools).  ``None`` in production.
    fault_plan: "faults.FaultPlan | None" = None
    #: Directory for the persistent schedule cache (append-only segment
    #: file).  ``None`` (the default) keeps the cache memory-only; set,
    #: it makes a restarted daemon come back warm (``repro serve
    #: --cache-dir``).
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.default_timeout <= 0:
            raise ValueError(f"default_timeout must be > 0, got {self.default_timeout}")
        if self.max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {self.max_respawns}")
        if self.respawn_window <= 0:
            raise ValueError(f"respawn_window must be > 0, got {self.respawn_window}")


def _warm_worker() -> None:
    """Force a pool worker to exist and pre-import the scheduler stack.

    The short sleep keeps each warmed worker busy long enough that the
    executor spawns a fresh process for the next warmup task instead of
    reusing this one.
    """
    import repro.schedulers.registry  # noqa: F401  (import is the warmup)

    time.sleep(0.05)


def _init_worker(plan: "faults.FaultPlan | None") -> None:
    """Pool-worker initializer: arm the fault plan (a no-op when None)."""
    faults.install(plan)


class _Job:
    """One unique (instance, alg) computation and its shared future.

    ``trace_id``/``sid``/``enqueued`` carry the observability context of
    the request that *created* the job (coalesced waiters share it): the
    correlation id, the parent span for the compute/queue-wait spans,
    and the enqueue timestamp the queue-wait span is measured from.
    """

    __slots__ = ("key", "text", "alg", "future", "trace_id", "sid", "enqueued")

    def __init__(self, key: str, text: str | bytes, alg: str, future: asyncio.Future,
                 trace_id: str | None = None, sid: int | None = None,
                 enqueued: float = 0.0) -> None:
        self.key = key
        self.text = text
        self.alg = alg
        self.future = future
        self.trace_id = trace_id
        self.sid = sid
        self.enqueued = enqueued


class SchedulingEngine:
    """Accepts schedule requests, answers from cache or a worker pool."""

    def __init__(self, config: EngineConfig | None = None,
                 metrics: ServiceMetrics | None = None,
                 tracer: Tracer | NullTracer | None = None) -> None:
        self.config = config or EngineConfig()
        self.metrics = metrics or ServiceMetrics()
        self._tracer = tracer
        self._trace_seq = 0
        self.cache = ScheduleCache(self.config.cache_size)
        self._store: SegmentStore | None = None
        self.recovery_report: dict[str, int] | None = None
        self._queue: asyncio.Queue[_Job | None] = asyncio.Queue(maxsize=self.config.queue_depth)
        # One dispatch slot per pool worker: when every worker is busy
        # the dispatcher stalls, the queue genuinely fills, and submit()
        # starts shedding load — the queue bound is the backpressure.
        self._slots = asyncio.Semaphore(max(1, self.config.workers))
        self._inflight: dict[str, _Job] = {}
        self._running: set[asyncio.Task] = set()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._respawn_lock: asyncio.Lock | None = None
        self._respawn_times: deque[float] = deque()
        self._dispatcher: asyncio.Task | None = None
        self._stop: asyncio.Event | None = None
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the worker pool and the dispatcher coroutine.

        Workers are forked *and warmed* here, before the server accepts
        any connection: a worker forked mid-request would inherit the
        accepted socket (keeping it open past the response), and warming
        pays the library import cost once instead of on the first
        request of each worker.
        """
        if self._started:
            return
        if self.config.cache_dir is not None:
            self._recover_cache()
        if self.config.workers > 0:
            self._pool = await self._spawn_pool()
        self._stop = asyncio.Event()
        self._respawn_lock = asyncio.Lock()
        self._respawn_times.clear()
        self._dispatcher = asyncio.create_task(self._dispatch_loop(), name="repro-dispatcher")
        self._started = True
        self._closed = False

    def _recover_cache(self) -> None:
        """Replay the persistent segment into the in-memory cache.

        Records are wire-encoded payloads; a record that fails to decode
        (e.g. written by a build with a different wire version) is
        counted and skipped, never trusted.  Only the newest
        ``cache_size`` entries are loaded — the segment is append-only
        and can outgrow the LRU, and loading the tail end matches what
        the LRU would have kept anyway.
        """
        from repro.service.wire import decode_payload

        self._store = SegmentStore(self.config.cache_dir)
        with self.tracer.span("cache.recover", detach=True) as span:
            entries, report = self._store.recover()
            report["undecodable"] = 0
            for key, raw in list(entries.items())[-self.config.cache_size:]:
                try:
                    self.cache.put(key, decode_payload(raw))
                except Exception:
                    report["undecodable"] += 1
            span.set(**report)
            self.recovery_report = report

    async def _spawn_pool(self) -> ProcessPoolExecutor:
        """Fork and warm one worker pool (initial start and respawns)."""
        pool = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=_init_worker,
            initargs=(self.config.fault_plan,),
        )
        warmups = [pool.submit(_warm_worker) for _ in range(self.config.workers)]
        await asyncio.gather(*[asyncio.wrap_future(f) for f in warmups])
        return pool

    async def stop(self, drain: bool = True, drain_timeout: float = 30.0) -> None:
        """Stop the engine.

        ``drain=True`` (graceful): refuse new submissions, let every
        queued and in-flight job finish (bounded by ``drain_timeout``),
        then tear the pool down.  ``drain=False``: cancel everything
        pending; waiters see :class:`ServiceClosedError`.
        """
        if not self._started:
            return
        self._closed = True
        if drain:
            deadline = time.monotonic() + drain_timeout
            while (self._inflight or not self._queue.empty()) and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
        if self._stop is not None:
            # A dedicated stop event, never an in-band queue sentinel: a
            # bounded queue can be full at stop time, and a sentinel
            # that cannot be enqueued (or re-enqueued by the batch loop)
            # would crash the dispatcher and deadlock shutdown.
            self._stop.set()
        if self._dispatcher is not None:
            try:
                await asyncio.wait_for(self._dispatcher, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._dispatcher.cancel()
            self._dispatcher = None
        for task in list(self._running):
            if not drain:
                task.cancel()
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)
        for job in list(self._inflight.values()):
            if not job.future.done():
                job.future.set_exception(ServiceClosedError("engine stopped"))
        self._inflight.clear()
        while not self._queue.empty():  # anything the dispatcher never reached
            job = self._queue.get_nowait()
            if job is not None and not job.future.done():
                job.future.set_exception(ServiceClosedError("engine stopped"))
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=not drain)
            self._pool = None
        if self._store is not None:
            self._store.close()
            self._store = None
        self._started = False

    @property
    def draining(self) -> bool:
        return self._closed

    @property
    def pool_generation(self) -> int:
        """How many pools this engine has had (0 = the original)."""
        return self._pool_generation

    @property
    def tracer(self) -> Tracer | NullTracer:
        """This engine's tracer: the injected one, else the module default."""
        return self._tracer if self._tracer is not None else get_tracer()

    def _next_trace_id(self) -> str:
        self._trace_seq += 1
        return f"req-{self._trace_seq:08d}"

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, instance: Instance, alg: str,
                     timeout: float | None = None,
                     trace_id: str | None = None,
                     deadline: "Deadline | float | None" = None,
                     encoded: bytes | None = None) -> dict:
        """Schedule ``instance`` with scheduler ``alg``; return the payload.

        The returned dict is a fresh copy carrying ``cache_hit``,
        ``fingerprint`` and ``server_ms`` alongside the placement data
        (plus ``trace_id`` when tracing is on).  Raises
        :class:`ServiceOverloadedError` (queue full),
        :class:`ServiceTimeoutError` (deadline), :class:`WorkerError`
        (computation failed) or :class:`ServiceClosedError` (draining).

        ``encoded`` is the instance's binary wire form when the request
        arrived that way: a cold job then ships those exact bytes to the
        pool worker, which decodes packed arrays instead of re-parsing a
        JSON document (the worker accepts either form).

        ``deadline`` (a :class:`~repro.service.resilience.Deadline` or
        an absolute ``time.monotonic()`` float) is the one end-to-end
        expiry the request carries from the client: the effective wait
        here is ``min(timeout, deadline.remaining())``, so time already
        spent in transport or in the queue is never double-counted.  A
        request that arrives past its deadline is answered 504 without
        occupying queue space (a cache hit still answers — it is free).

        All request spans use explicit parents (``parent=``/``detach``)
        rather than the tracer's thread-local nesting: the event-loop
        thread interleaves many requests, so implicit nesting would
        attribute spans to whichever request last yielded.
        """
        if self._closed or not self._started:
            raise ServiceClosedError("engine is not accepting requests")
        tracer = self.tracer
        if trace_id is None and tracer.enabled:
            trace_id = self._next_trace_id()
        self.metrics.request()
        t0 = time.perf_counter()
        with tracer.span("service.request", detach=True,
                         alg=alg, trace_id=trace_id) as req:
            key = request_key(instance, alg)
            with tracer.span("cache.lookup", parent=req.sid, trace_id=trace_id) as lk:
                cached = self.cache.get(key)
                lk.set(hit=cached is not None)
            if cached is not None:
                self.metrics.cache_hit()
                with tracer.span("cache.hit", parent=req.sid,
                                 alg=alg, trace_id=trace_id):
                    pass
                return self._respond(cached, key, t0, cache_hit=True,
                                     trace_id=trace_id, parent=req.sid)
            self.metrics.cache_miss()

            if timeout is None:
                timeout = self.config.default_timeout
            if deadline is not None:
                if isinstance(deadline, float | int):
                    deadline = Deadline(float(deadline))
                timeout = min(timeout, deadline.remaining())
                if timeout <= 0:
                    self.metrics.timeout()
                    raise ServiceTimeoutError(
                        f"deadline expired before {alg} could be scheduled "
                        f"({-timeout:g}s past)"
                    )

            job = self._inflight.get(key)
            if job is None:
                job = _Job(key, encoded if encoded is not None else instance_to_json(instance), alg,
                           asyncio.get_running_loop().create_future(),
                           trace_id=trace_id, sid=req.sid,
                           enqueued=time.perf_counter())
                try:
                    self._queue.put_nowait(job)
                except asyncio.QueueFull:
                    self.metrics.reject()
                    exc = ServiceOverloadedError(
                        f"request queue full ({self.config.queue_depth}); retry later"
                    )
                    exc.retry_after = self.retry_after_hint()
                    raise exc from None
                self._inflight[key] = job
            else:
                self.metrics.coalesce()
                if tracer.enabled:
                    tracer.count("service.coalesced")

            try:
                payload = await asyncio.wait_for(asyncio.shield(job.future), timeout)
            except asyncio.TimeoutError:
                self.metrics.timeout()
                raise ServiceTimeoutError(
                    f"no result for {alg} within {timeout:g}s (key {key[:12]}...)"
                ) from None
            return self._respond(payload, key, t0, cache_hit=False,
                                 trace_id=trace_id, parent=req.sid)

    def retry_after_hint(self) -> float:
        """Load-aware backoff suggestion (seconds) for 429 responses.

        Scales with how much queued work each worker has to chew
        through; clamped so clients neither hammer a saturated daemon
        nor stall for ages after a transient spike.
        """
        per_worker = self._queue.qsize() / max(1, self.config.workers)
        return min(2.0, max(0.05, 0.05 * per_worker))

    def submit_cached(self, key: str, trace_id: str | None = None) -> dict | None:
        """Answer request ``key`` from the cache, or ``None`` if absent.

        Fast path for callers that already know the request key (the
        server remembers it per exact request body): a hit skips
        instance parsing and fingerprinting entirely.  A miss is silent
        — no counters move — because the caller falls back to
        :meth:`submit`, which accounts the request in full.
        """
        if self._closed or not self._started:
            raise ServiceClosedError("engine is not accepting requests")
        if key not in self.cache:
            return None
        tracer = self.tracer
        if trace_id is None and tracer.enabled:
            trace_id = self._next_trace_id()
        self.metrics.request()
        t0 = time.perf_counter()
        with tracer.span("service.request", detach=True,
                         trace_id=trace_id, fast_path=True) as req:
            payload = self.cache.get(key)
            self.metrics.cache_hit()
            with tracer.span("cache.hit", parent=req.sid, trace_id=trace_id):
                pass
            return self._respond(payload, key, t0, cache_hit=True,
                                 trace_id=trace_id, parent=req.sid)

    def _respond(self, payload: dict, key: str, t0: float, cache_hit: bool,
                 trace_id: str | None = None, parent: int | None = None) -> dict:
        tracer = self.tracer
        with tracer.span("service.encode", parent=parent, trace_id=trace_id):
            latency_ms = (time.perf_counter() - t0) * 1e3
            self.metrics.complete(latency_ms)
            out = {
                **payload,
                "cache_hit": cache_hit,
                "fingerprint": key,
                "server_ms": latency_ms,
            }
            if trace_id is not None:
                out["trace_id"] = trace_id
            return out

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Pull jobs off the queue in batches and fan them out.

        Shutdown is signalled by the dedicated ``self._stop`` event —
        never by an in-band queue sentinel, which a full bounded queue
        could refuse to (re-)enqueue, crashing this task and
        deadlocking :meth:`stop`.  Both blocking points (queue get,
        slot acquire) race the event, so a hard stop interrupts the
        dispatcher wherever it is waiting.
        """
        stop = self._stop
        stop_wait = asyncio.create_task(stop.wait())
        try:
            while True:
                if stop.is_set() and self._queue.empty():
                    return
                getter = asyncio.create_task(self._queue.get())
                await asyncio.wait({getter, stop_wait},
                                   return_when=asyncio.FIRST_COMPLETED)
                if not getter.done():
                    getter.cancel()
                    try:
                        await getter
                    except asyncio.CancelledError:
                        pass
                    return  # hard stop; stop() fails whatever is queued
                batch = [getter.result()]
                while len(batch) < self.config.batch_size:
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                self.metrics.batch(len(batch))
                if self.tracer.enabled:
                    # Traced requests dispatch one job per worker call so
                    # each gets its own service.compute span and absorbed
                    # worker trace.
                    groups = [[item] for item in batch]
                    runner = self._run_job_group_traced
                else:
                    # Cold path: the drained batch is split into one
                    # contiguous chunk per pool worker and each chunk
                    # ships as a single batched worker call — one IPC
                    # round trip amortised over the chunk, consecutive
                    # same-content jobs sharing the worker's lowered
                    # instance memo.
                    n_groups = min(len(batch), max(1, self.config.workers))
                    size = -(-len(batch) // n_groups)
                    groups = [batch[i:i + size] for i in range(0, len(batch), size)]
                    runner = self._run_group
                for group in groups:
                    if not await self._acquire_slot(stop_wait):
                        return  # hard stop mid-batch; stop() owns the futures
                    # The dispatcher owns the slot lifecycle end to end:
                    # acquired here, released in the done-callback.  A
                    # release inside the job coroutine's ``finally``
                    # would leak the slot if the task were cancelled
                    # before its first await (the coroutine never enters
                    # ``try``).
                    task = asyncio.create_task(runner(group))
                    self._running.add(task)
                    task.add_done_callback(self._job_task_done)
        finally:
            if not stop_wait.done():
                stop_wait.cancel()
                try:
                    await stop_wait
                except asyncio.CancelledError:
                    pass

    async def _acquire_slot(self, stop_wait: asyncio.Task) -> bool:
        """Acquire one dispatch slot, or give up when stop trips first."""
        acquire = asyncio.create_task(self._slots.acquire())
        await asyncio.wait({acquire, stop_wait},
                           return_when=asyncio.FIRST_COMPLETED)
        if acquire.done() and not acquire.cancelled():
            return True
        acquire.cancel()
        try:
            await acquire
        except asyncio.CancelledError:
            pass
        return False

    def _job_task_done(self, task: asyncio.Task) -> None:
        self._running.discard(task)
        self._slots.release()

    async def _run_job(self, job: _Job) -> None:
        """Execute one job, healing the worker pool on worker death.

        ``BrokenProcessPool`` (a worker was OOM-killed, segfaulted, or
        chaos-killed) fails *every* future in flight on that pool; the
        computation itself is pure and content-addressed, so each
        affected job is transparently re-executed on a respawned pool
        instead of surfacing :class:`WorkerError` to its waiters.  The
        respawn budget (``max_respawns`` per ``respawn_window``) bounds
        how long a crash-looping workload can grind before the engine
        declares itself unrecoverable.
        """
        loop = asyncio.get_running_loop()
        tracer = self.tracer
        if tracer.enabled:
            tracer.record_span("queue.wait", job.enqueued, time.perf_counter(),
                               parent=job.sid, alg=job.alg, trace_id=job.trace_id)
        attempt = 0
        while True:
            generation = self._pool_generation
            try:
                if tracer.enabled:
                    # The traced compute function builds a local tracer in
                    # the worker (process or thread) and ships its export
                    # back with the payload; absorbing it under the
                    # service.compute span yields one merged request tree.
                    with tracer.span("service.compute", parent=job.sid,
                                     alg=job.alg, trace_id=job.trace_id,
                                     attempt=attempt) as cs:
                        payload, worker_trace = await loop.run_in_executor(
                            self._pool, protocol.compute_schedule_payload_traced,
                            job.text, job.alg, job.trace_id,
                        )
                    tracer.absorb(worker_trace, parent=cs.sid)
                    tracer.count("service.computes")
                else:
                    payload = await loop.run_in_executor(
                        self._pool, protocol.compute_schedule_payload, job.text, job.alg
                    )
                break
            except asyncio.CancelledError:
                self._inflight.pop(job.key, None)
                if not job.future.done():
                    job.future.set_exception(ServiceClosedError("computation cancelled"))
                raise
            except BrokenExecutor as exc:
                if not await self._heal_pool(generation, exc):
                    self.metrics.error()
                    self._inflight.pop(job.key, None)
                    if not job.future.done():
                        job.future.set_exception(ServiceClosedError(
                            "worker pool broken and respawn budget exhausted "
                            f"({self.config.max_respawns} per "
                            f"{self.config.respawn_window:g}s); engine closed"
                        ))
                    return
                attempt += 1
                self.metrics.retry()
                if tracer.enabled:
                    tracer.count("service.reexecutions")
                continue
            except Exception as exc:
                self.metrics.error()
                self._inflight.pop(job.key, None)
                if not job.future.done():
                    job.future.set_exception(WorkerError(f"{type(exc).__name__}: {exc}"))
                return
        self.cache.put(job.key, payload)
        self._persist(job.key, payload)
        self._inflight.pop(job.key, None)
        if not job.future.done():
            job.future.set_result(payload)

    async def _run_job_group_traced(self, group: list[_Job]) -> None:
        """Traced dispatch adapter: the group is always a single job."""
        await self._run_job(group[0])

    async def _run_group(self, jobs: list[_Job]) -> None:
        """Execute one chunk of cold jobs as a single batched worker call.

        The worker resolves each item independently (per-item faults
        become per-item ``WorkerError``), but pool breakage propagates
        whole — the computation is pure and content-addressed, so the
        entire chunk transparently re-executes on the healed pool, the
        same semantics :meth:`_run_job` gives a single job.  The worker
        also returns its lowering-memo and compiled-executor counter
        deltas for the call, which are folded into the service metrics.
        """
        loop = asyncio.get_running_loop()
        items = [(job.text, job.alg) for job in jobs]

        def _fail_all(make_exc) -> None:
            for job in jobs:
                self.metrics.error()
                self._inflight.pop(job.key, None)
                if not job.future.done():
                    job.future.set_exception(make_exc())

        while True:
            generation = self._pool_generation
            try:
                results, worker_stats = await loop.run_in_executor(
                    self._pool, protocol.compute_schedule_payload_batch, items
                )
                break
            except asyncio.CancelledError:
                for job in jobs:
                    self._inflight.pop(job.key, None)
                    if not job.future.done():
                        job.future.set_exception(
                            ServiceClosedError("computation cancelled")
                        )
                raise
            except BrokenExecutor as exc:
                if not await self._heal_pool(generation, exc):
                    _fail_all(lambda: ServiceClosedError(
                        "worker pool broken and respawn budget exhausted "
                        f"({self.config.max_respawns} per "
                        f"{self.config.respawn_window:g}s); engine closed"
                    ))
                    return
                self.metrics.retry()
                continue
            except Exception as exc:
                # The batch call itself failed before producing per-item
                # results (e.g. the items could not reach the worker).
                _fail_all(lambda: WorkerError(f"{type(exc).__name__}: {exc}"))
                return
        self.metrics.worker_stats(worker_stats)
        for job, (status, value) in zip(jobs, results):
            self._inflight.pop(job.key, None)
            if status == "ok":
                self.cache.put(job.key, value)
                self._persist(job.key, value)
                if not job.future.done():
                    job.future.set_result(value)
            else:
                self.metrics.error()
                if not job.future.done():
                    job.future.set_exception(WorkerError(str(value)))

    def _persist(self, key: str, payload: dict) -> None:
        """Durably append one computed payload to the segment store.

        Persistence is best-effort relative to the request: the waiter
        already has (or is about to get) the payload, so a full disk or
        revoked cache dir degrades the daemon to memory-only caching
        instead of failing requests.
        """
        if self._store is None:
            return
        from repro.service.wire import encode_payload

        tracer = self.tracer
        try:
            with tracer.span("cache.persist", detach=True, key=key[:12]):
                self._store.append(key, encode_payload(payload))
        except OSError:
            if tracer.enabled:
                tracer.count("cache.persist_failures")
            self._store.close()
            self._store = None

    async def _heal_pool(self, failed_generation: int, cause: BaseException) -> bool:
        """Quarantine a broken pool and respawn a fresh, warmed one.

        Every job that died with the pool races in here; the lock makes
        the first one respawn and the rest observe the already-advanced
        generation and simply retry.  Returns ``False`` — and closes
        the engine — once the respawn budget for the sliding window is
        spent (or a respawn itself fails).
        """
        tracer = self.tracer
        lock = self._respawn_lock
        if lock is None:  # engine never started; nothing to heal
            return False
        async with lock:
            if self._closed and not self._started:
                return False
            if self._pool_generation != failed_generation:
                return True  # a sibling job already healed this pool
            now = time.monotonic()
            while self._respawn_times and now - self._respawn_times[0] > self.config.respawn_window:
                self._respawn_times.popleft()
            if len(self._respawn_times) >= self.config.max_respawns:
                if tracer.enabled:
                    tracer.count("pool.respawns_exhausted")
                self._closed = True
                return False
            self._respawn_times.append(now)
            try:
                with tracer.span("pool.respawn", detach=True,
                                 generation=self._pool_generation + 1,
                                 cause=type(cause).__name__):
                    if self.config.workers > 0:
                        old = self._pool
                        if old is not None:
                            # Quarantine: never wait on a broken pool's
                            # workers, just tear its bookkeeping down.
                            old.shutdown(wait=False, cancel_futures=True)
                        self._pool = await self._spawn_pool()
            except Exception:
                if tracer.enabled:
                    tracer.count("pool.respawn_failures")
                self._closed = True
                return False
            self._pool_generation += 1
            self.metrics.respawn()
            if tracer.enabled:
                tracer.count("pool.respawns")
            return True

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _gauges(self) -> dict:
        return {
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "workers": self.config.workers,
            "cache_size": len(self.cache),
            "cache_evictions": self.cache.evictions,
        }

    def stats(self):
        """A :class:`~repro.service.metrics.ServiceStats` snapshot."""
        return self.metrics.snapshot(**self._gauges())

    def render_metrics(self) -> str:
        """Prometheus-style exposition text.

        When this engine traces, the tracer's counters and gauges are
        appended to the same exposition (``repro_obs_*`` metrics), so
        ``GET /metrics`` is the one unified scrape target.
        """
        tracer = self.tracer
        extra = to_prometheus(tracer) if tracer.enabled else ""
        return self.metrics.render(extra=extra, **self._gauges())
