"""Assignment decoder shared by the metaheuristics.

A candidate solution is a task -> processor assignment.  Decoding places
tasks in decreasing upward-rank order, each on its assigned processor at
the earliest insertion slot — the same substrate as every list
scheduler, so search quality differences are purely about assignments.

Two decode paths produce bit-identical schedules:

* :func:`decode_assignment` — the object path, building a real
  :class:`~repro.schedule.schedule.Schedule` (the specification, and
  what callers use to materialise the final winner);
* :func:`compiled_decoder` — the flat-array
  :class:`~repro.compiled.CompiledInstance` used for fitness
  evaluation in the GA/SA inner loops (``None`` when the kernel layer
  is off or the machine uses a per-link communication model).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.schedule.schedule import Schedule
from repro.schedulers.base import schedule_task_on
from repro.schedulers.ranking import upward_ranks
from repro.types import ProcId, TaskId


def rank_order(instance: Instance) -> list[TaskId]:
    """The decoding order: decreasing upward rank (precedence-valid).

    Served from the per-instance cache on ``Instance.kernel`` when the
    kernel layer is on — thousands of decodes share one rank pass —
    with the scalar recomputation kept as the reference path.
    """
    if kernels_enabled():
        return list(instance.kernel.rank_order("mean"))
    ranks = upward_ranks(instance)
    pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
    return sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))


def compiled_decoder(instance: Instance):
    """The instance's :class:`~repro.compiled.CompiledInstance`, or ``None``.

    ``None`` when the kernel layer is disabled (differential tests and
    the benchmark baseline run the object path) or when the machine's
    communication model has no per-pair constant.
    """
    if not kernels_enabled():
        return None
    return instance.kernel.compiled()


def decode_assignment(
    instance: Instance,
    assignment: Mapping[TaskId, ProcId],
    order: Sequence[TaskId] | None = None,
    name: str = "decoded",
) -> Schedule:
    """Build the schedule induced by ``assignment``.

    ``order`` defaults to the rank order; callers running many decodes
    should precompute it once via :func:`rank_order` (or decode through
    :func:`compiled_decoder`, which is makespan-bit-identical).
    """
    if order is None:
        order = rank_order(instance)
    schedule = Schedule(instance.machine, name=name)
    for task in order:
        schedule_task_on(schedule, instance, task, assignment[task], insertion=True)
    return schedule
