"""Processor-selection engine combining lookahead and duplication.

This is the placement half of the improved scheduler.  For each
candidate processor it (1) optionally plans idle-slot duplicates of the
parents that dominate the task's data-ready time, keeping them only when
they strictly lower the task's earliest finish on that processor, and
(2) scores the resulting placement either by the task's own EFT (HEFT's
rule) or by a one-level *lookahead*: the estimated earliest finish of
the task's most critical unscheduled child given this placement.

Duplicates never extend the makespan: a duplicate's finish time bounds
the task's data-ready time from below, so it always completes before the
task it serves starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.obs import get_tracer
from repro.schedule.schedule import Schedule, ScheduledTask
from repro.schedulers.base import Placement, placement_on, ready_time
from repro.types import ProcId, TaskId

_EPS = 1e-12


@dataclass(frozen=True)
class _DupPlan:
    """One tentative duplicate placement."""

    task: TaskId
    proc: ProcId
    start: float
    duration: float


class PlacementEngine:
    """Stateful-free placement policy used by the improved schedulers."""

    def __init__(
        self,
        lookahead: bool = True,
        duplication: bool = True,
        insertion: bool = True,
        max_duplications_per_task: int = 3,
    ) -> None:
        self.lookahead = lookahead
        self.duplication = duplication
        self.insertion = insertion
        self.max_duplications_per_task = max_duplications_per_task
        # (dag, position-map) pair; recomputing the topological position
        # map per placement would cost O(n) per call, O(n^2 q) per run.
        self._pos_cache: tuple[object, dict[TaskId, int]] | None = None

    def _positions(self, instance: Instance) -> dict[TaskId, int]:
        if kernels_enabled():
            return instance.kernel.pos
        dag = instance.dag
        if self._pos_cache is None or self._pos_cache[0] is not dag:
            pos = {t: i for i, t in enumerate(dag.topological_order())}
            self._pos_cache = (dag, pos)
        return self._pos_cache[1]

    # ------------------------------------------------------------------
    # duplication planning
    # ------------------------------------------------------------------
    def _arrivals(
        self, schedule: Schedule, instance: Instance, task: TaskId, proc: ProcId
    ) -> dict[TaskId, float]:
        """Per-parent earliest data arrival on ``proc``."""
        out: dict[TaskId, float] = {}
        if kernels_enabled():
            kern = instance.kernel
            consts = kern.out_const
            if consts is not None:
                for parent in kern.pred[task]:
                    const = consts[parent][task]
                    arrival = float("inf")
                    for c in schedule.copies(parent):
                        cand = c.end if c.proc == proc else c.end + const
                        if cand < arrival:
                            arrival = cand
                    out[parent] = arrival
                return out
        for parent in instance.predecessors_of(task):
            arrival = float("inf")
            for c in schedule.copies(parent):
                cand = c.end + instance.comm_time(parent, task, c.proc, proc)
                if cand < arrival:
                    arrival = cand
            out[parent] = arrival
        return out

    def _plan_duplicates(
        self, schedule: Schedule, instance: Instance, task: TaskId, proc: ProcId
    ) -> list[_DupPlan]:
        """Tentatively add parent duplicates on ``proc``; return the plans.

        The duplicates are *applied to the schedule* so the subsequent
        placement probe sees them; the caller must roll them back with
        :meth:`_rollback` unless it commits to this processor.
        """
        applied: list[_DupPlan] = []
        pos = self._positions(instance)
        for _ in range(self.max_duplications_per_task):
            arrivals = self._arrivals(schedule, instance, task, proc)
            if not arrivals:
                break
            # The parent whose data arrives last constrains the task.
            dominant = max(arrivals, key=lambda p: (arrivals[p], -pos[p]))
            if arrivals[dominant] <= _EPS:
                break
            if any(c.proc == proc for c in schedule.copies(dominant)):
                break  # already local; nothing left to win on this parent
            dup_ready = ready_time(schedule, instance, dominant, proc)
            dup_duration = instance.exec_time(dominant, proc)
            dup_start = schedule.timeline(proc).find_slot(
                dup_ready, dup_duration, insertion=self.insertion
            )
            if dup_start + dup_duration >= arrivals[dominant] - _EPS:
                break  # re-running the parent locally would not be faster
            schedule.add(dominant, proc, dup_start, dup_duration, duplicate=True)
            applied.append(_DupPlan(dominant, proc, dup_start, dup_duration))
        return applied

    @staticmethod
    def _rollback(schedule: Schedule, plans: list[_DupPlan]) -> None:
        for plan in reversed(plans):
            schedule.remove_duplicate(plan.task, plan.proc)

    @staticmethod
    def _apply(schedule: Schedule, plans: list[_DupPlan]) -> None:
        for plan in plans:
            schedule.add(plan.task, plan.proc, plan.start, plan.duration, duplicate=True)

    # ------------------------------------------------------------------
    # lookahead scoring
    # ------------------------------------------------------------------
    def _critical_child(
        self,
        schedule: Schedule,
        instance: Instance,
        task: TaskId,
        ranks: dict[TaskId, float],
    ) -> TaskId | None:
        pending = [s for s in instance.successors_of(task) if s not in schedule]
        if not pending:
            return None
        pos = self._positions(instance)
        return max(pending, key=lambda s: (ranks.get(s, 0.0), -pos[s]))

    def _lookahead_score(
        self,
        schedule: Schedule,
        instance: Instance,
        task: TaskId,
        placed: Placement,
        child: TaskId,
    ) -> float:
        """Estimated earliest finish of ``child`` if ``task`` runs as
        ``placed``.

        The estimate ignores the slot the task itself will occupy (it is
        not in the schedule yet) except on the task's own processor,
        where availability is clamped to the task's finish — a cheap,
        deterministic approximation that keeps the engine at
        O(q^2) per task.
        """
        if kernels_enabled():
            fast = instance.kernel.lookahead_score(
                schedule, task, child, placed.proc, placed.end
            )
            if fast is not None:
                return fast
        best = float("inf")
        for proc in instance.machine.proc_ids():
            ready = placed.end + instance.comm_time(task, child, placed.proc, proc)
            for parent in instance.predecessors_of(child):
                if parent == task or parent not in schedule:
                    continue
                ready = max(
                    ready,
                    min(
                        c.end + instance.comm_time(parent, child, c.proc, proc)
                        for c in schedule.copies(parent)
                    ),
                )
            avail = schedule.timeline(proc).end_time
            if proc == placed.proc:
                avail = max(avail, placed.end)
            finish = max(ready, avail) + instance.exec_time(child, proc)
            best = min(best, finish)
        return best

    # ------------------------------------------------------------------
    # the placement decision
    # ------------------------------------------------------------------
    def place(
        self,
        schedule: Schedule,
        instance: Instance,
        task: TaskId,
        ranks: dict[TaskId, float] | None = None,
    ) -> ScheduledTask:
        """Choose a processor for ``task``, commit any winning duplicates
        and the task's primary placement, and return the placed record."""
        procs = instance.machine.proc_ids()
        ranks = ranks or {}
        child = (
            self._critical_child(schedule, instance, task, ranks)
            if self.lookahead
            else None
        )

        best_key: tuple[float, float, int] | None = None
        best_proc: ProcId | None = None
        best_plans: list[_DupPlan] = []
        best_placement: Placement | None = None

        # The plain probes all see the same schedule state (tentative
        # duplicates are rolled back before the next processor), so the
        # per-processor ready times can be batched once up front.
        ready_vec = (
            instance.kernel.ready_times(schedule, task) if kernels_enabled() else None
        )
        for j, proc in enumerate(procs):
            if ready_vec is not None:
                duration = instance.exec_time(task, proc)
                start = schedule.timeline(proc).find_slot(
                    float(ready_vec[j]), duration, insertion=self.insertion
                )
                plain = Placement(proc=proc, start=start, end=start + duration)
            else:
                plain = placement_on(
                    schedule, instance, task, proc, insertion=self.insertion
                )
            plans: list[_DupPlan] = []
            placed = plain
            if self.duplication:
                plans = self._plan_duplicates(schedule, instance, task, proc)
                if plans:
                    with_dups = placement_on(
                        schedule, instance, task, proc, insertion=self.insertion
                    )
                    if with_dups.end < plain.end - _EPS:
                        placed = with_dups
                    else:
                        self._rollback(schedule, plans)
                        plans = []
            if child is not None:
                score = self._lookahead_score(schedule, instance, task, placed, child)
            else:
                score = placed.end
            key = (score, placed.end, j)
            if best_key is None or key < best_key:
                best_key = key
                best_proc = proc
                best_plans = plans
                best_placement = placed
            if plans:
                self._rollback(schedule, plans)

        assert best_placement is not None and best_proc is not None
        if best_plans:
            get_tracer().count("imp.duplicates", len(best_plans))
        self._apply(schedule, best_plans)
        return schedule.add(
            task,
            best_proc,
            best_placement.start,
            best_placement.end - best_placement.start,
        )
