"""DLS — Dynamic Level Scheduling (Sih & Lee, 1993).

A dynamic list scheduler: at every step the (ready task, processor) pair
with the highest *dynamic level*

    ``DL(t, p) = SL*(t) - max(data_ready(t, p), avail(p)) + Δ(t, p)``

is scheduled, where ``SL*`` is the static level computed with median
execution costs and ``Δ(t, p) = w*(t) - w(t, p)`` rewards placing a task
on a processor that runs it faster than typical.  Classic DLS appends to
the processor's ready end (no insertion).
"""

from __future__ import annotations

from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, compiled_for, ready_time
from repro.schedulers.ranking import machine_static_levels


class DLS(Scheduler):
    """Dynamic Level Scheduling."""

    name = "DLS"

    def schedule(self, instance: Instance) -> Schedule:
        dag = instance.dag
        sl = machine_static_levels(instance, agg="median")
        wstar = {t: instance.etc.median(t) for t in dag.tasks()}

        ci = compiled_for(instance)
        if ci is not None:
            result = ci.schedule_dls(
                [sl[t] for t in ci.tasks], [wstar[t] for t in ci.tasks]
            )
            return ci.materialize(
                result, instance.machine, f"{self.name}:{instance.name}"
            )

        pos = {t: i for i, t in enumerate(dag.topological_order())}
        procs = instance.machine.proc_ids()

        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        indegree = {t: dag.in_degree(t) for t in dag.tasks()}
        ready = {t for t in dag.tasks() if indegree[t] == 0}

        scheduled = 0
        use_batched = kernels_enabled()
        # A task enters `ready` only once all parents are placed, and DLS
        # never moves or duplicates a placement afterwards — so its
        # per-processor data-ready vector is fixed while it waits.
        ready_cache: dict = {}
        while ready:
            best = None  # (neg_dl, pos, proc_index) ordering key
            best_choice = None
            for task in ready:
                ready_vec = None
                if use_batched:
                    ready_vec = ready_cache.get(task)
                    if ready_vec is None:
                        ready_vec = instance.kernel.ready_times(schedule, task)
                        if ready_vec is not None:
                            ready_cache[task] = ready_vec
                for j, proc in enumerate(procs):
                    if ready_vec is not None:
                        data_ready = float(ready_vec[j])
                    else:
                        data_ready = ready_time(schedule, instance, task, proc)
                    start = max(data_ready, schedule.timeline(proc).end_time)
                    delta = wstar[task] - instance.exec_time(task, proc)
                    dl = sl[task] - start + delta
                    key = (-dl, pos[task], j)
                    if best is None or key < best:
                        best = key
                        best_choice = (task, proc, start)
            assert best_choice is not None
            task, proc, start = best_choice
            schedule.add(task, proc, start, instance.exec_time(task, proc))
            scheduled += 1
            ready.discard(task)
            ready_cache.pop(task, None)
            for child in dag.successors(task):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.add(child)

        if scheduled != instance.num_tasks:
            raise SchedulingError(f"DLS scheduled {scheduled}/{instance.num_tasks} tasks")
        return schedule
