"""Tests for Monte-Carlo makespan distributions."""

import pytest

from repro.dag.generators import random_dag
from repro.exceptions import ConfigurationError
from repro.instance import make_instance
from repro.schedulers.heft import HEFT
from repro.sim.montecarlo import makespan_distribution


@pytest.fixture(scope="module")
def plan():
    dag = random_dag(40, seed=1)
    inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=1)
    return HEFT().schedule(inst), inst


class TestMakespanDistribution:
    def test_zero_cv_degenerate(self, plan):
        schedule, inst = plan
        dist = makespan_distribution(schedule, inst, cv=0.0, samples=5, seed=0)
        assert dist.std == pytest.approx(0.0)
        assert dist.mean <= schedule.makespan + 1e-9  # left-shift replay

    def test_noise_spreads(self, plan):
        schedule, inst = plan
        dist = makespan_distribution(schedule, inst, cv=0.4, samples=40, seed=1)
        assert dist.std > 0
        assert dist.p95 >= dist.percentile(50.0)
        assert dist.tail_ratio >= 1.0

    def test_reproducible_and_extendable(self, plan):
        schedule, inst = plan
        a = makespan_distribution(schedule, inst, cv=0.3, samples=10, seed=2)
        b = makespan_distribution(schedule, inst, cv=0.3, samples=10, seed=2)
        assert a.samples == b.samples
        more = makespan_distribution(schedule, inst, cv=0.3, samples=20, seed=2)
        assert more.samples[:10] == a.samples

    def test_degradation_grows_with_cv(self, plan):
        schedule, inst = plan
        low = makespan_distribution(schedule, inst, cv=0.1, samples=30, seed=3)
        high = makespan_distribution(schedule, inst, cv=0.8, samples=30, seed=3)
        assert high.degradation > low.degradation

    def test_contention_flag(self, plan):
        schedule, inst = plan
        plain = makespan_distribution(schedule, inst, cv=0.0, samples=3, seed=4)
        busy = makespan_distribution(
            schedule, inst, cv=0.0, samples=3, seed=4, link_contention=True
        )
        assert busy.mean >= plain.mean - 1e-9

    def test_validation(self, plan):
        schedule, inst = plan
        with pytest.raises(ConfigurationError):
            makespan_distribution(schedule, inst, samples=0)
        with pytest.raises(ConfigurationError):
            makespan_distribution(schedule, inst, cv=-1.0)
        dist = makespan_distribution(schedule, inst, samples=2, seed=5)
        with pytest.raises(ConfigurationError):
            dist.percentile(150.0)
