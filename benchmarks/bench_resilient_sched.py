"""Resilient-scheduling benchmark: the price of fault tolerance.

Measures, over the full 56-instance differential corpus, what k-backup
active replication costs and what it buys:

* **makespan overhead** — FT-HEFT-k / FT-IMP-k fault-free makespan
  relative to the k=0 base schedule (replication serialises extra
  copies, so overhead is the price of the guarantee);
* **degraded exposure** — worst-case makespan over all size-k kill sets
  at time zero, relative to the base scheduler's fault-free makespan
  (what you actually pay when faults land vs what an unprotected
  schedule simply loses: completion);
* **survival** — fraction of (instance, kill set) scenarios where every
  task still completes: 1.0 for FT schedules by construction, and the
  measured (usually dismal) fraction for the unreplicated baseline.

Writes ``BENCH_resilient_sched.json`` at the repo root.  Run directly
to regenerate:

    PYTHONPATH=src python benchmarks/bench_resilient_sched.py

The pytest wrapper enforces the PR's acceptance floor on a corpus
subsample: FT schedules survive every kill set, the baseline does not
survive everywhere (the guarantee is not vacuous), and overheads stay
finite and ordered (k=2 costs at least as much as k=1 on average).
"""

from __future__ import annotations

import json
import math
import sys
import time
from itertools import combinations
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    # The differential corpus lives in the tests package; direct
    # ``python benchmarks/bench_resilient_sched.py`` runs need the root.
    sys.path.insert(0, str(ROOT))

from repro.schedulers.registry import get_scheduler
from repro.schedulers.resilient import predict_degraded
from tests.population import build_population

OUT = ROOT / "BENCH_resilient_sched.json"

#: (resilient scheduler, base scheduler, k) benchmark axes.
VARIANTS = [
    ("FT-HEFT-k1", "HEFT", 1),
    ("FT-HEFT-k2", "HEFT", 2),
    ("FT-IMP-k1", "IMP", 1),
    ("FT-IMP-k2", "IMP", 2),
]


def _survival(schedule, inst, k: int) -> tuple[int, int]:
    """(scenarios where all tasks complete, total scenarios) over all
    size-k kill sets at time zero."""
    ok = total = 0
    for kill in combinations(inst.machine.proc_ids(), k):
        pred = predict_degraded(schedule, inst, {p: 0.0 for p in kill})
        total += 1
        ok += pred.all_completed(inst)
    return ok, total


def run_bench(stride: int = 1) -> dict:
    corpus = build_population()[::stride]
    rows = []
    for alg, base_name, k in VARIANTS:
        overheads, exposures = [], []
        ft_ok = ft_total = base_ok = base_total = 0
        sched_seconds = 0.0
        for label, inst in corpus:
            keff = min(k, inst.num_procs - 1)
            base = get_scheduler(base_name).schedule(inst)
            t0 = time.perf_counter()
            ft = get_scheduler(alg).schedule(inst)
            sched_seconds += time.perf_counter() - t0
            overheads.append(ft.makespan / base.makespan)
            worst = max(
                predict_degraded(ft, inst, {p: 0.0 for p in kill}).makespan
                for kill in combinations(inst.machine.proc_ids(), keff)
            )
            exposures.append(worst / base.makespan)
            ok, total = _survival(ft, inst, keff)
            ft_ok += ok
            ft_total += total
            ok, total = _survival(base, inst, keff)
            base_ok += ok
            base_total += total
        rows.append({
            "alg": alg,
            "base": base_name,
            "k": k,
            "instances": len(corpus),
            "geomean_makespan_overhead": math.exp(
                sum(math.log(o) for o in overheads) / len(overheads)
            ),
            "max_makespan_overhead": max(overheads),
            "geomean_degraded_exposure": math.exp(
                sum(math.log(e) for e in exposures) / len(exposures)
            ),
            "ft_survival": ft_ok / ft_total,
            "base_survival": base_ok / base_total,
            "kill_scenarios": ft_total,
            "schedule_seconds": sched_seconds,
        })
    return {"variants": rows}


def test_resilient_sched_gate():
    """Acceptance floor: the guarantee holds, is not vacuous, and the
    replication price is sane and monotone in k."""
    report = run_bench(stride=4)  # corpus subsample keeps CI fast
    by_alg = {r["alg"]: r for r in report["variants"]}
    for r in report["variants"]:
        assert r["ft_survival"] == 1.0, r
        assert 1.0 <= r["geomean_makespan_overhead"] < 10.0, r
        assert r["geomean_degraded_exposure"] >= 1.0, r
    assert any(r["base_survival"] < 1.0 for r in report["variants"]), (
        "unprotected baselines survived every kill set — gate is vacuous"
    )
    for base in ("HEFT", "IMP"):
        assert (
            by_alg[f"FT-{base}-k2"]["geomean_makespan_overhead"]
            >= by_alg[f"FT-{base}-k1"]["geomean_makespan_overhead"]
        ), base


def main() -> None:
    report = run_bench()
    OUT.write_text(json.dumps(report, indent=2) + "\n")
    for r in report["variants"]:
        print(
            f"{r['alg']:10s} overhead x{r['geomean_makespan_overhead']:.3f} "
            f"(max x{r['max_makespan_overhead']:.3f})  "
            f"exposure x{r['geomean_degraded_exposure']:.3f}  "
            f"survival ft={r['ft_survival']:.3f} base={r['base_survival']:.3f} "
            f"over {r['kill_scenarios']} scenarios"
        )
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
