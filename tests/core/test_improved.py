"""Tests for the headline ImprovedScheduler and its two isolated
components (LookaheadScheduler, DuplicationScheduler)."""

import pytest

from repro.core import (
    DuplicationScheduler,
    ImprovedConfig,
    ImprovedScheduler,
    LookaheadScheduler,
)
from repro.dag.generators import gaussian_elimination_dag, random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT


class TestNeverWorseThanHeft:
    """The contribution's headline invariant: a strict superset of
    HEFT's search can never lose to HEFT."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_heterogeneous(self, seed):
        dag = random_dag(50, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.75, seed=seed)
        imp = ImprovedScheduler().schedule(inst)
        heft = HEFT().schedule(inst)
        validate(imp, inst)
        assert imp.makespan <= heft.makespan + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_random_homogeneous(self, seed):
        dag = random_dag(50, seed=seed)
        inst = homogeneous_instance(dag, num_procs=4)
        imp = ImprovedScheduler().schedule(inst)
        heft = HEFT().schedule(inst)
        validate(imp, inst)
        assert imp.makespan <= heft.makespan + 1e-9

    def test_topcuoglu(self, topcuoglu_instance):
        imp = ImprovedScheduler().schedule(topcuoglu_instance)
        validate(imp, topcuoglu_instance)
        assert imp.makespan <= 80.0 + 1e-9

    def test_strictly_better_somewhere(self):
        # Over a modest suite the improvements must actually fire.
        better = 0
        for seed in range(10):
            dag = random_dag(60, seed=seed)
            inst = make_instance(dag, num_procs=4, heterogeneity=0.75, seed=seed)
            if (
                ImprovedScheduler().schedule(inst).makespan
                < HEFT().schedule(inst).makespan - 1e-9
            ):
                better += 1
        assert better >= 5


class TestConfigBehaviour:
    def test_baseline_config_equals_heft(self, topcuoglu_instance):
        imp = ImprovedScheduler(ImprovedConfig.baseline_heft())
        s = imp.schedule(topcuoglu_instance)
        h = HEFT().schedule(topcuoglu_instance)
        assert s.makespan == pytest.approx(h.makespan)
        assert s.assignment() == h.assignment()

    def test_single_variant_on_homogeneous(self, diamond_dag):
        # All variants coincide: one pass must suffice and still be valid.
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        s = ImprovedScheduler().schedule(inst)
        validate(s, inst)

    def test_each_ablation_point_feasible(self, topcuoglu_instance):
        from repro.bench.registry import ablation_configs

        for label, config in ablation_configs().items():
            s = ImprovedScheduler(config).schedule(topcuoglu_instance)
            validate(s, topcuoglu_instance)

    def test_name_reflects_config(self):
        assert ImprovedScheduler().name == "IMP"
        assert "la" in ImprovedScheduler(ImprovedConfig()).name

    def test_deterministic(self, topcuoglu_instance):
        a = ImprovedScheduler().schedule(topcuoglu_instance)
        b = ImprovedScheduler().schedule(topcuoglu_instance)
        assert a.makespan == b.makespan
        assert a.assignment() == b.assignment()


class TestIsolatedComponents:
    @pytest.mark.parametrize("cls", [LookaheadScheduler, DuplicationScheduler])
    def test_feasible_everywhere(self, cls, topcuoglu_instance):
        s = cls().schedule(topcuoglu_instance)
        validate(s, topcuoglu_instance)

    def test_duplication_pays_on_gaussian(self):
        # The pivot column broadcast is where duplication shines.
        dag = gaussian_elimination_dag(8, data_scale=30.0)
        wins = 0
        for seed in range(5):
            inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
            dup = DuplicationScheduler().schedule(inst).makespan
            heft = HEFT().schedule(inst).makespan
            wins += dup <= heft + 1e-9
        assert wins >= 3

    def test_lookahead_feasible_on_random(self):
        for seed in range(4):
            dag = random_dag(40, seed=seed)
            inst = make_instance(dag, num_procs=3, seed=seed)
            validate(LookaheadScheduler().schedule(inst), inst)

    def test_components_subset_of_improved(self):
        # IMP's best must be <= each isolated component's result when the
        # component is part of IMP's search... not guaranteed in general
        # (different rank variants), so assert the weaker corridor:
        # IMP within 5% of the best isolated component on average.
        import numpy as np

        ratios = []
        for seed in range(6):
            dag = random_dag(50, seed=seed)
            inst = make_instance(dag, num_procs=4, heterogeneity=0.75, seed=seed)
            imp = ImprovedScheduler().schedule(inst).makespan
            best_comp = min(
                LookaheadScheduler().schedule(inst).makespan,
                DuplicationScheduler().schedule(inst).makespan,
            )
            ratios.append(imp / best_comp)
        assert float(np.mean(ratios)) <= 1.05


class TestEdgeCases:
    def test_single_task(self):
        from repro.dag.graph import TaskDAG
        from repro.dag.task import Task

        dag = TaskDAG()
        dag.add_task(Task("x", cost=4.0))
        inst = homogeneous_instance(dag, num_procs=3)
        s = ImprovedScheduler().schedule(inst)
        assert s.makespan == pytest.approx(4.0)

    def test_single_processor(self):
        dag = random_dag(25, seed=2)
        inst = make_instance(dag, num_procs=1, seed=2)
        s = ImprovedScheduler().schedule(inst)
        validate(s, inst)
        total = sum(inst.exec_time(t, 0) for t in dag.tasks())
        assert s.makespan == pytest.approx(total)

    def test_chain(self, chain_dag):
        inst = make_instance(chain_dag, num_procs=3, heterogeneity=0.5, seed=1)
        s = ImprovedScheduler().schedule(inst)
        validate(s, inst)
