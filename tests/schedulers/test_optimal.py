"""Tests for the branch-and-bound optimal scheduler (the test oracle)."""

import itertools

import pytest

from repro.dag.generators import random_dag
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import SchedulingError
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT
from repro.schedulers.optimal import BranchAndBoundScheduler


class TestGuardRails:
    def test_refuses_large_instances(self):
        dag = random_dag(30, seed=0)
        inst = make_instance(dag, num_procs=2, seed=0)
        with pytest.raises(SchedulingError):
            BranchAndBoundScheduler(max_tasks=12).schedule(inst)


class TestKnownOptima:
    def test_chain_optimum_is_fastest_processor(self):
        # A chain cannot be parallelised: optimum = chain on best proc.
        dag = TaskDAG.from_edges(
            [(0, 1, 5.0), (1, 2, 5.0)], costs={0: 4.0, 1: 4.0, 2: 4.0}
        )
        from repro.instance import speed_scaled_instance

        inst = speed_scaled_instance(dag, speeds=[1.0, 2.0], bandwidth=1.0)
        best = BranchAndBoundScheduler().schedule(inst)
        validate(best, inst)
        assert best.makespan == pytest.approx(6.0)  # 3 * 4 / 2

    def test_independent_tasks_spread(self):
        # Two independent equal tasks on two processors: optimum = 1 task each.
        dag = TaskDAG()
        dag.add_task(Task("x", cost=4.0))
        dag.add_task(Task("y", cost=4.0))
        inst = homogeneous_instance(dag, num_procs=2)
        best = BranchAndBoundScheduler().schedule(inst)
        assert best.makespan == pytest.approx(4.0)

    def test_comm_vs_parallelism_tradeoff(self):
        # Fork of two children with huge comm: optimum keeps everything local.
        dag = TaskDAG.from_edges(
            [("a", "b", 100.0), ("a", "c", 100.0)],
            costs={"a": 1.0, "b": 2.0, "c": 2.0},
        )
        inst = homogeneous_instance(dag, num_procs=2, bandwidth=0.1)
        best = BranchAndBoundScheduler().schedule(inst)
        assert best.makespan == pytest.approx(5.0)

    def test_comm_cheap_parallelises(self):
        dag = TaskDAG.from_edges(
            [("a", "b", 0.0), ("a", "c", 0.0)],
            costs={"a": 1.0, "b": 2.0, "c": 2.0},
        )
        inst = homogeneous_instance(dag, num_procs=2)
        best = BranchAndBoundScheduler().schedule(inst)
        assert best.makespan == pytest.approx(3.0)


class TestDominatesHeuristics:
    @pytest.mark.parametrize("seed,q", list(itertools.product(range(6), (2, 3))))
    def test_never_worse_than_heft(self, seed, q):
        dag = random_dag(6, seed=seed)
        inst = make_instance(dag, num_procs=q, heterogeneity=0.8, seed=seed)
        opt = BranchAndBoundScheduler().schedule(inst)
        validate(opt, inst)
        heft = HEFT().schedule(inst)
        assert opt.makespan <= heft.makespan + 1e-9

    def test_matches_exhaustive_bound(self):
        # Cross-check against instance.cp_min_length: optimum is at least
        # the critical-path lower bound.
        dag = random_dag(7, seed=11)
        inst = make_instance(dag, num_procs=2, seed=11)
        opt = BranchAndBoundScheduler().schedule(inst)
        assert opt.makespan >= inst.cp_min_length - 1e-9
