"""PETS — Performance Effective Task Scheduling (Ilavarasan &
Thambidurai, 2007).

A contemporaneous low-complexity competitor of the target paper: tasks
are processed level by level (ASAP depth); within a level the priority
is ``rank = round(ACC + DTC + RPT)`` where ACC is the average
computation cost, DTC the total outgoing communication and RPT the
highest parent rank.  Placement is insertion-based EFT.
"""

from __future__ import annotations

from repro.dag.analysis import graph_levels
from repro.instance import Instance
from repro.schedulers.base import ListScheduler
from repro.types import TaskId


class PETS(ListScheduler):
    """Performance Effective Task Scheduling."""

    insertion = True
    name = "PETS"
    compiled_policy = "eft"

    def priority_order(self, instance: Instance) -> list[TaskId]:
        dag = instance.dag
        levels = graph_levels(dag)
        order = dag.topological_order()
        pos = {t: i for i, t in enumerate(order)}

        acc = {t: instance.avg_exec_time(t) for t in dag.tasks()}
        dtc = {
            t: sum(instance.avg_comm_time(t, s) for s in dag.successors(t))
            for t in dag.tasks()
        }
        rank: dict[TaskId, float] = {}
        for t in order:
            rpt = max((rank[p] for p in dag.predecessors(t)), default=0.0)
            # The published algorithm rounds the rank to an integer.
            rank[t] = float(round(acc[t] + dtc[t] + rpt))

        max_level = max(levels.values(), default=0)
        out: list[TaskId] = []
        for lvl in range(max_level + 1):
            members = [t for t in dag.tasks() if levels[t] == lvl]
            # Higher rank first; ties by smaller average cost, then by
            # topological position for determinism.
            members.sort(key=lambda t: (-rank[t], acc[t], pos[t]))
            out.extend(members)
        return out
