"""The scheduling *instance*: a DAG, a machine and an ETC matrix.

Every scheduler consumes an :class:`Instance`.  Bundling the three parts
keeps scheduler signatures uniform and lets the bench harness construct
thousands of instances declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.dag.graph import TaskDAG
from repro.exceptions import ConfigurationError, UnknownTaskError
from repro.kernels import InstanceKernel, kernels_enabled
from repro.machine.cluster import Machine
from repro.machine.etc import Consistency, ETCMatrix, etc_from_speeds, generate_etc
from repro.types import ProcId, TaskId
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class Instance:
    """One static-scheduling problem instance.

    Attributes
    ----------
    dag:
        The task graph (costs on tasks are *nominal*; actual per-processor
        times come from ``etc``).
    machine:
        Processors plus communication model.
    etc:
        Expected-time-to-compute matrix covering every (task, processor).
    deadline:
        Optional end-to-end deadline (a period for periodic workloads):
        every task must finish by this absolute time.  ``None`` means
        unconstrained — the historical behaviour, and the default, so
        deadline-free instances keep their exact fingerprints.
    """

    dag: TaskDAG
    machine: Machine
    etc: ETCMatrix
    name: str = field(default="")
    deadline: float | None = field(default=None)

    def __post_init__(self) -> None:
        missing_tasks = set(self.dag.tasks()) - set(self.etc.task_ids)
        if missing_tasks:
            raise ConfigurationError(f"ETC lacks tasks: {sorted(map(str, missing_tasks))[:5]}")
        missing_procs = set(self.machine.proc_ids()) - set(self.etc.proc_ids)
        if missing_procs:
            raise ConfigurationError(f"ETC lacks processors: {sorted(map(str, missing_procs))[:5]}")
        if self.deadline is not None:
            deadline = float(self.deadline)
            if not np.isfinite(deadline) or deadline <= 0:
                raise ConfigurationError(f"deadline must be finite and > 0, got {self.deadline!r}")
            object.__setattr__(self, "deadline", deadline)
        if not self.name:
            object.__setattr__(self, "name", f"{self.dag.name}@{self.machine.name}")

    # ------------------------------------------------------------------
    # cost queries (the vocabulary schedulers are written in)
    # ------------------------------------------------------------------
    def exec_time(self, task: TaskId, proc: ProcId) -> float:
        """Execution time of ``task`` on ``proc``."""
        if kernels_enabled():
            try:
                return self.kernel.exec_table()[task][proc]
            except KeyError:
                pass  # unknown id: fall through for the exact legacy error
        return self.etc.time(task, proc)

    def avg_exec_time(self, task: TaskId) -> float:
        """Mean execution time of ``task`` across processors (w̄ of HEFT)."""
        return self.etc.mean(task)

    def comm_time(self, parent: TaskId, child: TaskId, src: ProcId, dst: ProcId) -> float:
        """Actual transfer time of edge data between two placements."""
        if kernels_enabled():
            return self.kernel.comm_time(parent, child, src, dst)
        return self.machine.comm_time(self.dag.data(parent, child), src, dst)

    def avg_comm_time(self, parent: TaskId, child: TaskId) -> float:
        """Average transfer time of an edge (c̄ of HEFT's ranking)."""
        if kernels_enabled():
            return self.kernel.avg_comm(parent, child)
        return self.machine.avg_comm_time(self.dag.data(parent, child))

    def successors_of(self, task: TaskId) -> list[TaskId]:
        """Successors of ``task`` (memoized; treat the list as read-only)."""
        if kernels_enabled():
            try:
                return self.kernel.succ[task]
            except KeyError:
                raise UnknownTaskError(task) from None
        return self.dag.successors(task)

    def predecessors_of(self, task: TaskId) -> list[TaskId]:
        """Predecessors of ``task`` (memoized; treat the list as read-only)."""
        if kernels_enabled():
            try:
                return self.kernel.pred[task]
            except KeyError:
                raise UnknownTaskError(task) from None
        return self.dag.predecessors(task)

    def etc_row(self, task: TaskId) -> np.ndarray:
        """Per-processor execution times of ``task`` in machine proc order.

        The kernel path returns a cached read-only view; the fallback
        materializes the same floats from the ETC matrix.
        """
        if kernels_enabled():
            return self.kernel.etc_row(task)
        return np.array([self.etc.time(task, p) for p in self.machine.proc_ids()])

    @cached_property
    def kernel(self) -> InstanceKernel:
        """Per-instance cache + vectorized-kernel bundle (built lazily).

        Like the other cached properties, this snapshots the instance at
        first use — instances are immutable bundles by convention.
        """
        return InstanceKernel(self)

    @property
    def num_tasks(self) -> int:
        return self.dag.num_tasks

    @property
    def num_procs(self) -> int:
        return self.machine.num_procs

    @cached_property
    def sequential_time(self) -> float:
        """Best single-processor makespan: min over processors of the sum
        of that processor's ETC column.  The numerator of speedup."""
        procs = self.machine.proc_ids()
        tasks = list(self.dag.tasks())
        if not tasks:
            return 0.0
        return min(sum(self.etc.time(t, p) for t in tasks) for p in procs)

    @cached_property
    def cp_min_length(self) -> float:
        """Critical-path length using each task's *minimum* ETC and no
        communication — the denominator of the SLR metric (a lower bound
        on any makespan)."""
        best: dict[TaskId, float] = {}
        total = 0.0
        for t in reversed(self.dag.topological_order()):
            succ = self.dag.successors(t)
            tail = max((best[s] for s in succ), default=0.0)
            best[t] = self.etc.best(t) + tail
            total = max(total, best[t])
        return total

    @cached_property
    def _fingerprint(self) -> str:
        from repro.instance_io import instance_fingerprint  # lazy: avoids import cycle

        return instance_fingerprint(self)

    def fingerprint(self) -> str:
        """Stable content hash of this instance (SHA-256 hex digest).

        Covers DAG structure (tasks, costs, edges, edge data), the
        machine (processors, speeds, communication model) and the ETC
        matrix, all in a canonical order — equal for equal content no
        matter how the instance was assembled, different under any
        single perturbation.  Names are metadata and excluded.  The
        serving layer keys its content-addressed schedule cache on this
        (see :mod:`repro.service.cache`).
        """
        return self._fingerprint

    def with_deadline(self, deadline: float | None) -> "Instance":
        """Copy of this instance carrying ``deadline`` (``None`` clears it).

        Returns a fresh instance even for an unchanged value, so cached
        properties (kernel, fingerprint) never leak across constraint
        variants of the same problem.
        """
        return Instance(
            dag=self.dag, machine=self.machine, etc=self.etc,
            name=self.name, deadline=deadline,
        )

    def is_homogeneous(self) -> bool:
        """True when every task runs equally fast on every processor."""
        arr = self.etc.as_array()
        if arr.size == 0:
            return True
        return bool((arr.max(axis=1) - arr.min(axis=1) <= 1e-12 * (1 + arr.max())).all())


def make_instance(
    dag: TaskDAG,
    num_procs: int = 8,
    heterogeneity: float = 0.5,
    consistency: Consistency = "inconsistent",
    latency: float = 0.0,
    bandwidth: float = 1.0,
    seed: SeedLike = None,
    name: str = "",
) -> Instance:
    """Build a fully connected heterogeneous instance for ``dag``.

    This is the declarative entry point used by the examples and the
    bench harness: a fully connected machine with uniform links plus a
    range-based ETC matrix with heterogeneity ``β``.
    """
    machine = Machine.homogeneous(
        num_procs, latency=latency, bandwidth=bandwidth, name=f"q{num_procs}-b{heterogeneity:g}"
    )
    etc = generate_etc(dag, machine, heterogeneity=heterogeneity, consistency=consistency, seed=seed)
    return Instance(dag=dag, machine=machine, etc=etc, name=name)


def homogeneous_instance(
    dag: TaskDAG,
    num_procs: int = 8,
    latency: float = 0.0,
    bandwidth: float = 1.0,
    name: str = "",
) -> Instance:
    """Build a homogeneous instance: identical processors, ETC = nominal
    cost everywhere.  Used by the homogeneous-system experiments (E11)."""
    machine = Machine.homogeneous(num_procs, latency=latency, bandwidth=bandwidth)
    etc = etc_from_speeds(dag, machine)
    return Instance(dag=dag, machine=machine, etc=etc, name=name)


def speed_scaled_instance(
    dag: TaskDAG,
    speeds: list[float],
    latency: float = 0.0,
    bandwidth: float = 1.0,
    name: str = "",
) -> Instance:
    """Consistent-heterogeneity instance driven by processor speeds."""
    machine = Machine.from_speeds(speeds, latency=latency, bandwidth=bandwidth)
    etc = etc_from_speeds(dag, machine)
    return Instance(dag=dag, machine=machine, etc=etc, name=name)
