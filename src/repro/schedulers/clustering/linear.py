"""Linear clustering (Kim & Browne, 1988).

Repeatedly extracts the current critical path of the *unclustered*
remainder of the graph and makes it one cluster.  Each cluster is a
chain, so intra-cluster execution is strictly sequential and all chain
communication is zeroed — the archetypal "communication-avoiding"
clustering that the DSC paper improved on.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedulers.clustering.base import ClusteringScheduler
from repro.types import TaskId


class LinearClustering(ClusteringScheduler):
    """Repeated critical-path extraction."""

    name = "LC"

    def clusters(self, instance: Instance) -> list[list[TaskId]]:
        dag = instance.dag
        pos = {t: i for i, t in enumerate(dag.topological_order())}
        remaining: set[TaskId] = set(dag.tasks())
        out: list[list[TaskId]] = []

        while remaining:
            # Longest path (avg exec + avg comm) through the remaining
            # subgraph, computed by DP over the stable topological order.
            best_len: dict[TaskId, float] = {}
            best_succ: dict[TaskId, TaskId | None] = {}
            for t in sorted(remaining, key=lambda x: -pos[x]):
                tail = 0.0
                nxt: TaskId | None = None
                for s in dag.successors(t):
                    if s not in remaining:
                        continue
                    cand = instance.avg_comm_time(t, s) + best_len[s]
                    if cand > tail + 1e-12 or (abs(cand - tail) <= 1e-12 and nxt is not None and pos[s] < pos[nxt]):
                        tail = cand
                        nxt = s
                best_len[t] = instance.avg_exec_time(t) + tail
                best_succ[t] = nxt
            head = max(remaining, key=lambda t: (best_len[t], -pos[t]))
            chain: list[TaskId] = []
            cur: TaskId | None = head
            while cur is not None:
                chain.append(cur)
                cur = best_succ[cur]
            out.append(chain)
            remaining.difference_update(chain)
        return out
