"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import exceptions as exc


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(exc):
            obj = getattr(exc, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not exc.ReproError:
                if obj.__module__ == "repro.exceptions":
                    assert issubclass(obj, exc.ReproError), name

    def test_keyerror_compat(self):
        # Lookup-style errors double as KeyError for dict-like APIs.
        assert issubclass(exc.UnknownTaskError, KeyError)
        assert issubclass(exc.UnknownProcessorError, KeyError)

    def test_cycle_is_graph_error(self):
        assert issubclass(exc.CycleError, exc.GraphError)

    def test_validation_is_schedule_error(self):
        assert issubclass(exc.ValidationError, exc.ScheduleError)

    def test_validation_error_carries_violations(self):
        e = exc.ValidationError(["v1", "v2"])
        assert e.violations == ["v1", "v2"]
        assert "v1" in str(e)

    def test_validation_error_truncates_long_lists(self):
        e = exc.ValidationError([f"v{i}" for i in range(20)])
        assert "+15 more" in str(e)

    def test_parse_error_line_numbers(self):
        e = exc.ParseError("bad token", line=7)
        assert "line 7" in str(e)
        assert e.line == 7

    def test_catch_all_pattern(self):
        # The advertised usage: one except clause for library errors.
        from repro.dag.graph import TaskDAG

        with pytest.raises(exc.ReproError):
            TaskDAG().add_edge("a", "b")


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_example(self):
        # The module docstring's example must actually work.
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_key_subpackages_importable(self):
        import repro.bench
        import repro.core
        import repro.dag.generators
        import repro.dag.suites
        import repro.energy
        import repro.machine.profiles
        import repro.schedule.analysis
        import repro.sim.montecarlo  # noqa: F401
