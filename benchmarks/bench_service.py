"""Serving-layer throughput/latency benchmark.

Boots the real daemon (TCP, process-pool workers), drives it with the
async client, and measures:

* **cold** per-request latency — unique instances, every request reaches
  a worker;
* **warm** per-request latency — the same instances again, every request
  a cache hit;
* **sustained throughput** — a concurrent burst across the worker pool.

Writes ``BENCH_service.json`` at the repo root.  Run directly to
regenerate:

    PYTHONPATH=src python benchmarks/bench_service.py

The pytest wrapper re-runs a smaller protocol and enforces the PR's
acceptance floor: warm-cache latency at least 10x below cold at >= 2
workers, with throughput > 0 sustained over the burst.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import time
from pathlib import Path

from repro.bench import workloads as W
from repro.service import (
    EngineConfig,
    ScheduleServer,
    SchedulingEngine,
    ServiceClient,
)
from repro.service.metrics import percentile
from repro.utils.rng import as_generator

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_service.json"

#: Benchmark protocol: medium DAGs so a cold request costs real
#: scheduling work, sized to keep the whole harness under ~2 minutes.
PROTOCOL = dict(num_instances=24, num_tasks=80, num_procs=8, workers=2, alg="IMP")


def _instances(n: int, num_tasks: int, num_procs: int, seed_base: int = 1000):
    return [
        W.random_instance(as_generator(seed_base + i), num_tasks=num_tasks, num_procs=num_procs)
        for i in range(n)
    ]


async def _timed_serial(client: ServiceClient, instances, alg: str) -> list[float]:
    """Per-request wall latencies (ms), submitted one at a time."""
    latencies = []
    for inst in instances:
        t0 = time.perf_counter()
        await client.schedule(inst, alg=alg)
        latencies.append((time.perf_counter() - t0) * 1e3)
    return latencies


async def _timed_burst(client: ServiceClient, instances, alg: str) -> float:
    """Concurrent burst; returns sustained requests/second."""
    t0 = time.perf_counter()
    await asyncio.gather(*[client.schedule(i, alg=alg) for i in instances])
    return len(instances) / (time.perf_counter() - t0)


def _summary(latencies: list[float]) -> dict:
    return {
        "mean_ms": statistics.fmean(latencies),
        "p50_ms": percentile(latencies, 50),
        "p95_ms": percentile(latencies, 95),
        "min_ms": min(latencies),
        "max_ms": max(latencies),
    }


async def run_benchmark(num_instances: int, num_tasks: int, num_procs: int,
                        workers: int, alg: str) -> dict:
    """One full cold/warm/burst protocol against a fresh daemon."""
    instances = _instances(num_instances, num_tasks, num_procs)
    engine = SchedulingEngine(
        EngineConfig(workers=workers, cache_size=4 * num_instances, queue_depth=256)
    )
    server = ScheduleServer(engine, port=0)
    await server.start()
    client = ServiceClient(port=server.port, request_timeout=300.0)
    try:
        cold = await _timed_serial(client, instances, alg)
        warm = await _timed_serial(client, instances, alg)
        # Burst over a fresh instance set (disjoint seeds, so every
        # request is cold) to measure pool throughput, then a warm burst
        # over the cached set.
        burst_instances = _instances(num_instances, num_tasks, num_procs, seed_base=9000)
        cold_rps = await _timed_burst(client, burst_instances, alg)
        warm_rps = await _timed_burst(client, instances, alg)
        stats = (await client.stats()).as_dict()
    finally:
        await server.stop()
    result = {
        "config": {
            "num_instances": num_instances,
            "num_tasks": num_tasks,
            "num_procs": num_procs,
            "workers": workers,
            "alg": alg,
        },
        "cold": _summary(cold),
        "warm": _summary(warm),
        "warm_speedup_p50": _summary(cold)["p50_ms"] / max(_summary(warm)["p50_ms"], 1e-9),
        "throughput_cold_rps": cold_rps,
        "throughput_warm_rps": warm_rps,
        "server_stats": stats,
    }
    return result


def generate() -> dict:
    doc = {
        "benchmark": "repro.service cold/warm latency + throughput",
        "results": asyncio.run(run_benchmark(**PROTOCOL)),
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


# ----------------------------------------------------------------------
# pytest wrapper (soft-threshold CI gate, smaller protocol)
# ----------------------------------------------------------------------
def test_service_warm_cache_latency_floor():
    result = asyncio.run(
        run_benchmark(num_instances=8, num_tasks=60, num_procs=6, workers=2, alg="IMP")
    )
    cold_p50 = result["cold"]["p50_ms"]
    warm_p50 = result["warm"]["p50_ms"]
    assert result["server_stats"]["cache_hits"] >= 8, "warm pass must hit the cache"
    assert warm_p50 * 10 <= cold_p50, (
        f"warm-cache p50 {warm_p50:.2f}ms not >=10x below cold p50 {cold_p50:.2f}ms"
    )
    assert result["throughput_cold_rps"] > 0
    assert result["throughput_warm_rps"] > result["throughput_cold_rps"]


if __name__ == "__main__":
    doc = generate()
    res = doc["results"]
    print(f"cold  p50 {res['cold']['p50_ms']:8.2f} ms   p95 {res['cold']['p95_ms']:8.2f} ms")
    print(f"warm  p50 {res['warm']['p50_ms']:8.2f} ms   p95 {res['warm']['p95_ms']:8.2f} ms")
    print(f"warm speedup (p50): {res['warm_speedup_p50']:.1f}x")
    print(f"throughput cold {res['throughput_cold_rps']:.1f} rps, "
          f"warm {res['throughput_warm_rps']:.1f} rps "
          f"(workers={res['config']['workers']})")
    print(f"wrote {OUT}")
