"""Tests for the cost-annotation helpers (scale_ccr, randomize_costs)."""

import pytest

from repro.dag.generators import randomize_costs, scale_ccr
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError


@pytest.fixture
def dag() -> TaskDAG:
    return TaskDAG.from_edges(
        [("a", "b", 4.0), ("b", "c", 2.0)], costs={"a": 1.0, "b": 2.0, "c": 3.0}
    )


class TestScaleCcr:
    @pytest.mark.parametrize("target", [0.1, 1.0, 3.7, 10.0])
    def test_exact(self, dag, target):
        out = scale_ccr(dag, target)
        assert out.ccr() == pytest.approx(target)

    def test_relative_edge_sizes_preserved(self, dag):
        out = scale_ccr(dag, 5.0)
        assert out.data("a", "b") / out.data("b", "c") == pytest.approx(2.0)

    def test_original_untouched(self, dag):
        scale_ccr(dag, 5.0)
        assert dag.data("a", "b") == 4.0

    def test_zero_target(self, dag):
        out = scale_ccr(dag, 0.0)
        assert out.total_data() == 0.0

    def test_zero_data_graph_gets_uniform(self):
        d = TaskDAG.from_edges([("a", "b", 0.0), ("b", "c", 0.0)],
                               costs={"a": 1.0, "b": 1.0, "c": 1.0})
        out = scale_ccr(d, 2.0)
        assert out.ccr() == pytest.approx(2.0)
        assert out.data("a", "b") == out.data("b", "c")

    def test_negative_rejected(self, dag):
        with pytest.raises(ConfigurationError):
            scale_ccr(dag, -1.0)

    def test_edgeless_nonzero_rejected(self):
        d = TaskDAG()
        d.add_task(Task("x", cost=1.0))
        with pytest.raises(ConfigurationError):
            scale_ccr(d, 1.0)

    def test_zero_cost_graph_rejected(self):
        d = TaskDAG.from_edges([("a", "b", 1.0)], costs={"a": 0.0, "b": 0.0})
        with pytest.raises(ConfigurationError):
            scale_ccr(d, 1.0)


class TestRandomizeCosts:
    def test_bounds(self, dag):
        out = randomize_costs(dag, avg_cost=10.0, seed=1)
        for t in out.tasks():
            assert 0 < out.cost(t) <= 20.0
        for u, v in out.edges():
            assert 0 <= out.data(u, v) <= 20.0

    def test_deterministic(self, dag):
        a = randomize_costs(dag, seed=3)
        b = randomize_costs(dag, seed=3)
        assert [a.cost(t) for t in a.tasks()] == [b.cost(t) for t in b.tasks()]

    def test_structure_preserved(self, dag):
        out = randomize_costs(dag, seed=4)
        assert set(out.edges()) == set(dag.edges())

    def test_avg_data_control(self, dag):
        out = randomize_costs(dag, avg_cost=10.0, avg_data=0.0, seed=5)
        assert out.total_data() == 0.0

    def test_bad_params(self, dag):
        with pytest.raises(ConfigurationError):
            randomize_costs(dag, avg_cost=0.0)
        with pytest.raises(ConfigurationError):
            randomize_costs(dag, avg_cost=1.0, avg_data=-1.0)
