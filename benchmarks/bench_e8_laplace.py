"""E8 — Laplace wavefront: SLR vs grid size.

Expected shape: the diamond wavefront serialises at the corners, so SLR
starts high for tiny grids and falls as the anti-diagonal widens; the
improved scheduler dominates HEFT at every grid size.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e8_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e8_shape(quick):
    res = e8_data(quick)
    print("\n" + res.table("E8: Laplace SLR vs grid size"))
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    for i, _ in enumerate(res.x_values):
        assert res.series["IMP"][i] <= res.series["HEFT"][i] + 1e-9


def test_e8_wavefront_limits_speedup(quick):
    # Structural sanity: a g x g wavefront cannot exceed speedup ~ g
    # even on 8 processors.
    from repro.bench.runner import run_sweep

    g = 4
    res = run_sweep(
        ["HEFT"], "grid", [g],
        lambda x, rng: W.laplace_instance(rng, grid_size=x, ccr=0.1),
        reps=W.reps(quick), metric="speedup", seed=208,
    )
    assert res.series["HEFT"][0] <= g + 1e-6


def test_e8_benchmark(benchmark):
    rng = np.random.default_rng(208)
    inst = W.laplace_instance(rng, grid_size=10)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
