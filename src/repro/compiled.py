"""Compiled flat-array scheduling core for the metaheuristic search loop.

The GA/SA schedulers (:mod:`repro.schedulers.meta`) evaluate thousands of
candidate assignments, and each evaluation builds a full schedule: walk
the rank order, compute the data-ready time on the assigned processor,
insertion-search the processor's timeline, place the task.  The object
path does that through :class:`~repro.schedule.schedule.Schedule`,
frozen-dataclass placements and dict-based cost lookups — correct, but
allocation-heavy, and it caps search quality because the metaheuristics
are budgeted in *evaluations per second*.

This module lowers an :class:`~repro.instance.Instance` once into flat
arrays (:class:`CompiledInstance`, cached on ``Instance.kernel``):

* the decode order (decreasing mean upward rank, topological tie-break)
  as integer task indices,
* a predecessor CSR (``pred_ptr``/``pred_idx``/``pred_const``) whose
  per-edge entry is the pair-independent communication constant of the
  uniform/zero link models,
* the dense ETC matrix in canonical (task, machine-proc) order.

:meth:`CompiledInstance.decode_fast` then builds a whole schedule in
preallocated scratch buffers — plain floats and per-processor
start/end lists, no ``Schedule``/``Placement``/``Slot`` objects — and
:meth:`CompiledInstance.decode_batch` evaluates an entire GA population
per call.  The slot search is the *same* helper the object path's
:meth:`~repro.schedule.timeline.Timeline.find_slot` delegates to
(:func:`~repro.schedule.timeline.scan_slots`), and every arithmetic
operation replays the object path's float sequence exactly, so decoded
makespans are bit-identical to
:func:`repro.schedulers.meta.decoder.decode_assignment` (asserted over
the 56-instance differential corpus by
``tests/core/test_compiled_decode.py``).

Machines with per-link communication models have no pair-independent
edge constant; :func:`compile_instance` returns ``None`` there and
callers fall back to the object path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.exceptions import SchedulingError
from repro.obs import get_tracer
from repro.schedule.timeline import scan_slots

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instance import Instance
    from repro.kernels import InstanceKernel
    from repro.types import ProcId, TaskId

__all__ = ["CompiledInstance", "compile_instance"]


class CompiledInstance:
    """Flat-array lowering of one instance plus a reusable decoder.

    All arrays are fixed at construction; the decode scratch buffers are
    reused across calls, so — like :class:`~repro.kernels.InstanceKernel`
    — a ``CompiledInstance`` must only be used from one thread at a time
    (scheduling is single-threaded per instance everywhere in the
    library).
    """

    def __init__(self, kernel: "InstanceKernel") -> None:
        if kernel.out_const is None:
            raise SchedulingError(
                "cannot compile an instance with a per-link communication model"
            )
        self.tasks: list["TaskId"] = kernel.tasks
        self.procs: list["ProcId"] = kernel.procs
        self.n = n = len(self.tasks)
        self.q = len(self.procs)
        ti = kernel.ti
        self._pi = kernel.pi

        # Decode order: decreasing mean upward rank, exactly the order
        # rank_order() hands the metaheuristics (cached on the kernel).
        self.order = np.array(
            [ti[t] for t in kernel.rank_order("mean")], dtype=np.intp
        )
        self.order.flags.writeable = False
        self._order_list: list[int] = self.order.tolist()

        # Predecessor CSR over canonical task indices.  ``pred_const[e]``
        # is the uniform/zero-model edge constant — the exact float the
        # object path's ready_time adds for a cross-processor transfer.
        consts = kernel.out_const
        ptr = [0]
        idx: list[int] = []
        const: list[float] = []
        for t in self.tasks:
            for parent in kernel.pred[t]:
                idx.append(ti[parent])
                const.append(consts[parent][t])
            ptr.append(len(idx))
        self.pred_ptr = np.array(ptr, dtype=np.intp)
        self.pred_idx = np.array(idx, dtype=np.intp)
        self.pred_const = np.array(const, dtype=float)
        for arr in (self.pred_ptr, self.pred_idx, self.pred_const):
            arr.flags.writeable = False

        # Python-level mirrors for the hot loop: per-task (parent index,
        # edge constant) pairs, and the ETC matrix as nested lists.
        self._preds: list[list[tuple[int, float]]] = [
            list(zip(idx[ptr[i] : ptr[i + 1]], const[ptr[i] : ptr[i + 1]]))
            for i in range(n)
        ]
        self.etc = kernel.etc_arr  # shared read-only view
        self._etc_rows: list[list[float]] = self.etc.tolist()

        # Decode scratch (reused; every read is preceded by a same-decode
        # write because the decode order is topological).
        self._end_of: list[float] = [0.0] * n
        self._start_of: list[float] = [0.0] * n
        self._proc_of: list[int] = [-1] * n
        self._proc_starts: list[list[float]] = [[] for _ in range(self.q)]
        self._proc_ends: list[list[float]] = [[] for _ in range(self.q)]

    # ------------------------------------------------------------------
    # genome plumbing
    # ------------------------------------------------------------------
    def genome_of(self, assignment: Mapping["TaskId", "ProcId"]) -> np.ndarray:
        """Lower a ``{task: proc}`` mapping to a decode-order genome."""
        pi = self._pi
        tasks = self.tasks
        try:
            return np.array(
                [pi[assignment[tasks[t]]] for t in self._order_list], dtype=np.int64
            )
        except KeyError as exc:
            raise SchedulingError(f"assignment is missing {exc.args[0]!r}") from None

    def assignment_of(self, genome: Sequence[int]) -> dict["TaskId", "ProcId"]:
        """Raise a decode-order genome back to a ``{task: proc}`` mapping."""
        tasks, procs = self.tasks, self.procs
        return {tasks[t]: procs[int(g)] for t, g in zip(self._order_list, genome)}

    def _as_genome_list(self, assignment) -> list[int]:
        if isinstance(assignment, Mapping):
            genome = self.genome_of(assignment).tolist()
        else:
            genome = [int(g) for g in assignment]
            if len(genome) != self.n:
                raise SchedulingError(
                    f"genome length {len(genome)} != {self.n} tasks"
                )
        q = self.q
        for g in genome:
            if not 0 <= g < q:
                raise SchedulingError(f"processor index {g} out of range [0, {q})")
        return genome

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _decode(self, genome: Sequence[int]) -> float:
        """Makespan of one decode-order genome (no validation, no copies).

        Replays ``decode_assignment`` float-for-float: per task, the
        ready time is the max over parents of ``end`` (same processor)
        or ``end + const`` (cross processor); the start comes from the
        shared insertion scan; the busy interval is inserted in
        start-sorted order with `bisect_left` ties — exactly like
        ``Timeline.add``.
        """
        preds = self._preds
        etc_rows = self._etc_rows
        end_of = self._end_of
        start_of = self._start_of
        proc_of = self._proc_of
        proc_starts = self._proc_starts
        proc_ends = self._proc_ends
        for lst in proc_starts:
            del lst[:]
        for lst in proc_ends:
            del lst[:]
        makespan = 0.0
        for k, t in enumerate(self._order_list):
            p = genome[k]
            duration = etc_rows[t][p]
            ready = 0.0
            for u, const in preds[t]:
                cand = end_of[u]
                if proc_of[u] != p:
                    cand += const
                if cand > ready:
                    ready = cand
            starts = proc_starts[p]
            ends = proc_ends[p]
            start = scan_slots(starts, ends, ready, duration)
            # The object path records ``start + ((start + duration) -
            # start)`` (Placement end minus start, re-added by
            # Schedule.add) — replay that double rounding so recorded
            # ends are bit-identical.
            end = start + duration
            end = start + (end - start)
            i = bisect_left(starts, start)
            starts.insert(i, start)
            ends.insert(i, end)
            start_of[t] = start
            end_of[t] = end
            proc_of[t] = p
            if end > makespan:
                makespan = end
        return makespan

    def decode_fast(
        self, assignment: Mapping["TaskId", "ProcId"] | Sequence[int]
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Decode one assignment into ``(makespan, starts, procs)``.

        ``assignment`` is either a ``{task: proc}`` mapping or a
        decode-order genome of processor indices.  ``starts``/``procs``
        are indexed by canonical task position (``self.tasks``); end
        times follow as ``starts + etc[task, proc]``.
        """
        genome = self._as_genome_list(assignment)
        makespan = self._decode(genome)
        starts = np.array(self._start_of, dtype=float)
        procs = np.array(self._proc_of, dtype=np.intp)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("compiled.decodes")
        return makespan, starts, procs

    def decode_span(self, genome: Sequence[int]) -> float:
        """Makespan of one decode-order genome (the SA inner loop)."""
        return self._decode(genome)

    def decode_batch(self, population: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
        """Makespans of a whole population, one row per genome.

        This is the GA fitness evaluation: one call per generation
        instead of one object-path schedule per chromosome.
        """
        rows = np.asarray(population)
        if rows.ndim != 2 or rows.shape[1] != self.n:
            raise SchedulingError(
                f"population must have shape (m, {self.n}), got {rows.shape}"
            )
        decode = self._decode
        tracer = get_tracer()
        if not tracer.enabled:
            return np.array([decode(genome) for genome in rows.tolist()], dtype=float)
        with tracer.span("compiled.decode_batch", genomes=len(rows), tasks=self.n):
            out = np.array([decode(genome) for genome in rows.tolist()], dtype=float)
        tracer.count("compiled.decodes", len(rows))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledInstance(tasks={self.n}, procs={self.q}, "
            f"edges={len(self.pred_idx)})"
        )


def compile_instance(instance: "Instance") -> CompiledInstance | None:
    """The cached compiled form of ``instance``, or ``None``.

    Delegates to ``instance.kernel.compiled()`` — the lowering happens
    once per instance and is shared by every subsequent caller (the
    metaheuristics, the service workers, the benchmarks).  ``None`` when
    the machine's link model has no per-pair constant; callers fall back
    to the object decode path.
    """
    return instance.kernel.compiled()
