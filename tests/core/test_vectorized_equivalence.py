"""Differential suite: the vectorized kernel layer is behavior-preserving.

The scalar implementations (``upward_ranks_scalar``, per-processor
``ready_time``, the legacy comm/adjacency lookups) are the specification;
this suite checks on a broad seeded instance population — heterogeneous
(all consistency classes) and homogeneous, all four rank aggregations —
that the NumPy kernels reproduce them to 1e-9 (they are in fact
bit-identical), and that every scheduler's makespan is unchanged with the
kernel layer on vs off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import workloads as W
from repro.kernels import kernels_enabled, use_kernels
from repro.schedulers.base import ready_time
from repro.schedulers.ranking import (
    downward_ranks,
    downward_ranks_scalar,
    upward_ranks,
    upward_ranks_scalar,
)
from repro.schedulers.registry import all_scheduler_names, get_scheduler
from tests.population import build_population, partially_consistent_instance

AGGS = ("mean", "median", "best", "worst")


@pytest.fixture(scope="module")
def population():
    # 14 seeds x 4 families = 56 instances >= 50 (tests/population.py).
    return build_population()


def test_population_is_large_enough(population):
    assert len(population) >= 50


def test_ranks_match_scalar_reference(population):
    for label, inst in population:
        for agg in AGGS:
            with use_kernels(False):
                up_ref = upward_ranks(inst, agg)
                down_ref = downward_ranks(inst, agg)
            with use_kernels(True):
                up_vec = upward_ranks(inst, agg)
                down_vec = downward_ranks(inst, agg)
            assert up_vec.keys() == up_ref.keys(), label
            for t in up_ref:
                assert up_vec[t] == pytest.approx(up_ref[t], abs=1e-9), (label, agg, t)
                assert down_vec[t] == pytest.approx(down_ref[t], abs=1e-9), (label, agg, t)


def test_ranks_are_bit_identical(population):
    # Stronger than the 1e-9 contract: the kernels replay the scalar
    # float operations exactly.
    for label, inst in population[::5]:
        for agg in AGGS:
            assert inst.kernel.upward(agg) == upward_ranks_scalar(inst, agg), (label, agg)
            assert inst.kernel.downward(agg) == downward_ranks_scalar(inst, agg), (label, agg)


def test_batched_eft_ready_times_match_scalar(population):
    """Replay a HEFT pass; at every placement step the kernel's batched
    per-processor ready times must equal the scalar ready_time."""
    from repro.schedule.schedule import Schedule
    from repro.schedulers.base import eft_placement

    for label, inst in population[::7]:
        heft = get_scheduler("HEFT")
        order = heft.priority_order(inst)
        schedule = Schedule(inst.machine)
        procs = inst.machine.proc_ids()
        for task in order:
            batched = inst.kernel.ready_times(schedule, task)
            assert batched is not None, label
            for j, proc in enumerate(procs):
                with use_kernels(False):
                    scalar = ready_time(schedule, inst, task, proc)
                assert float(batched[j]) == pytest.approx(scalar, abs=1e-9), (label, task, proc)
                assert float(batched[j]) == scalar  # and in fact exactly
            placed = eft_placement(schedule, inst, task)
            schedule.add(task, placed.proc, placed.start, placed.end - placed.start)


def test_every_scheduler_makespan_bit_identical(population):
    """Makespans are unchanged with kernels on vs off, for every
    registered scheduler (the B&B oracle is covered separately on a
    size it can handle)."""
    names = [n for n in all_scheduler_names() if n != "OPT-BB"]
    for label, inst in population[::9]:
        for name in names:
            with use_kernels(False):
                legacy = get_scheduler(name).schedule(inst)
            with use_kernels(True):
                fast = get_scheduler(name).schedule(inst)
            assert fast.makespan == legacy.makespan, (label, name)


def test_optimal_scheduler_bit_identical():
    inst = partially_consistent_instance(3)
    small = W.random_instance(np.random.default_rng(7), num_tasks=8, num_procs=3)
    del inst  # 18 tasks is beyond the oracle's default cap
    with use_kernels(False):
        legacy = get_scheduler("OPT-BB").schedule(small)
    with use_kernels(True):
        fast = get_scheduler("OPT-BB").schedule(small)
    assert fast.makespan == legacy.makespan


def test_full_placements_identical_not_just_makespan(population):
    for label, inst in population[::11]:
        for name in ("HEFT", "CPOP", "IMP"):
            with use_kernels(False):
                legacy = get_scheduler(name).schedule(inst)
            with use_kernels(True):
                fast = get_scheduler(name).schedule(inst)
            for task in legacy.tasks():
                a, b = legacy.entry(task), fast.entry(task)
                assert (a.proc, a.start, a.end) == (b.proc, b.start, b.end), (label, name, task)


def test_use_kernels_restores_previous_state():
    before = kernels_enabled()
    with use_kernels(not before):
        assert kernels_enabled() is (not before)
        with use_kernels(before):
            assert kernels_enabled() is before
        assert kernels_enabled() is (not before)
    assert kernels_enabled() is before
