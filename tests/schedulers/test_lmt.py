"""Tests for the LMT (Levelized Min Time) scheduler."""

import pytest

from repro.dag.analysis import graph_levels
from repro.dag.generators import random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.validation import validate
from repro.schedulers.lmt import LMT


class TestLMT:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasible(self, seed):
        dag = random_dag(40, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = LMT().schedule(inst)
        validate(s, inst)

    def test_topcuoglu(self, topcuoglu_instance):
        s = LMT().schedule(topcuoglu_instance)
        validate(s, topcuoglu_instance)
        assert s.makespan <= 160.0  # sanity corridor vs HEFT's 80

    def test_level_order_respected(self, topcuoglu_instance):
        # Within the schedule, a level-l task never starts after a
        # level-(l+1) task *that depends on it* — trivially true via
        # validate; the LMT-specific claim is the processing order:
        # all levels are placed level-by-level, so a deeper task's
        # placement cannot affect a shallower one's.  We check the
        # weaker observable: same result when scheduling twice.
        a = LMT().schedule(topcuoglu_instance)
        b = LMT().schedule(topcuoglu_instance)
        assert a.assignment() == b.assignment()

    def test_big_tasks_first_within_level(self, topcuoglu_instance):
        # Level 1 holds tasks 2..6; the largest-average task must get
        # first pick of the machine (start no later than its level
        # peers on the same processor).
        s = LMT().schedule(topcuoglu_instance)
        levels = graph_levels(topcuoglu_instance.dag)
        level1 = [t for t, l in levels.items() if l == 1]
        biggest = max(level1, key=lambda t: topcuoglu_instance.avg_exec_time(t))
        same_proc_peers = [
            t for t in level1
            if s.proc_of(t) == s.proc_of(biggest) and t != biggest
        ]
        for peer in same_proc_peers:
            assert s.start_of(biggest) <= s.start_of(peer) + 1e-9

    def test_homogeneous(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        validate(LMT().schedule(inst), inst)

    def test_single_task(self):
        from repro.dag.graph import TaskDAG
        from repro.dag.task import Task

        dag = TaskDAG()
        dag.add_task(Task("x", cost=4.0))
        inst = homogeneous_instance(dag, num_procs=2)
        assert LMT().schedule(inst).makespan == pytest.approx(4.0)
