"""Bounding policy of the per-instance kernel caches.

Every lazy cache on :class:`~repro.kernels.InstanceKernel` is either
keyed by a validated rank aggregation (bounded at 4 entries) or a
singleton memo; ``cache_info()`` exposes sizes and caps so this is an
asserted invariant, not a comment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import workloads as W
from repro.exceptions import ConfigurationError


@pytest.fixture
def instance():
    return W.random_instance(np.random.default_rng(21), num_tasks=15, num_procs=4)


def _assert_bounded(info):
    for name, entry in info.items():
        assert entry["size"] <= entry["maxsize"], (name, entry)


def test_caches_start_empty_and_stay_bounded(instance):
    kernel = instance.kernel
    info = kernel.cache_info()
    assert all(entry["size"] == 0 for entry in info.values()), info
    _assert_bounded(info)
    for agg in ("mean", "median", "best", "worst"):
        kernel.upward(agg)
        kernel.downward(agg)
        kernel.rank_order(agg)
        _assert_bounded(kernel.cache_info())
    kernel.exec_table()
    kernel.compiled()
    info = kernel.cache_info()
    _assert_bounded(info)
    assert info["weights"]["size"] == 4
    assert info["rank_order"]["size"] == 4
    assert info["compiled"]["size"] == 1
    assert info["exec_table"]["size"] == 1


def test_unknown_aggregation_rejected_before_caching(instance):
    kernel = instance.kernel
    for call in (kernel.weights, kernel.upward, kernel.downward, kernel.rank_order):
        with pytest.raises(ConfigurationError):
            call("p99")
    assert all(entry["size"] == 0 for entry in kernel.cache_info().values())


def test_repeat_calls_return_cached_objects(instance):
    kernel = instance.kernel
    assert kernel.rank_order("mean") is kernel.rank_order("mean")
    assert kernel.compiled() is kernel.compiled()
    assert kernel.upward("best") is kernel.upward("best")
    info = kernel.cache_info()
    assert info["rank_order"]["size"] == 1
    # rank_order("mean") pulled upward("mean") in; plus the explicit "best".
    assert info["upward"]["size"] == 2


def test_rank_order_matches_decoder(instance):
    from repro.kernels import use_kernels
    from repro.schedulers.meta.decoder import rank_order

    with use_kernels(False):
        legacy = rank_order(instance)
    with use_kernels(True):
        cached = rank_order(instance)
    assert cached == legacy
    # The decoder hands out a copy; mutating it must not poison the cache.
    cached.reverse()
    with use_kernels(True):
        assert rank_order(instance) == legacy
