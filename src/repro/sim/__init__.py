"""Discrete-event execution simulator.

Replays a static :class:`~repro.schedule.schedule.Schedule` on its
machine, re-deriving all start/finish times from first principles
(processor order + message arrivals) independently of the scheduler's
bookkeeping — optionally under stochastic runtime noise, which is how
the robustness experiment (E14) measures how schedules degrade when
execution times deviate from the ETC estimates.
"""

from repro.sim.engine import Event, EventQueue
from repro.sim.noise import MultiplicativeNoise, NoiseModel, NoNoise, PerProcessorDrift
from repro.sim.executor import SimulatedCopy, SimulationResult, execute, proc_sort_key
from repro.sim.trace import save_chrome_trace, to_chrome_trace

__all__ = [
    "Event",
    "EventQueue",
    "NoiseModel",
    "NoNoise",
    "MultiplicativeNoise",
    "PerProcessorDrift",
    "SimulatedCopy",
    "SimulationResult",
    "execute",
    "proc_sort_key",
    "to_chrome_trace",
    "save_chrome_trace",
]
