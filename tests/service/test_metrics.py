"""Counters, percentiles and the Prometheus exposition."""

from __future__ import annotations

from repro.service.metrics import ServiceMetrics, ServiceStats, percentile


def test_percentile_empty_is_zero():
    assert percentile([], 50) == 0.0
    assert percentile([], 99) == 0.0


def test_percentile_nearest_rank():
    samples = [float(i) for i in range(1, 101)]  # 1..100
    assert percentile(samples, 50) == 50.0
    assert percentile(samples, 95) == 95.0
    assert percentile(samples, 99) == 99.0
    assert percentile(samples, 100) == 100.0


def test_percentile_order_independent():
    assert percentile([5.0, 1.0, 3.0], 50) == 3.0


def test_percentile_nearest_rank_uses_ceil():
    # Regression: banker's round() picked rank 94 for p95 of 99 samples
    # (0.95 * 99 = 94.05 -> round 94); nearest-rank is ceil -> 95.
    samples = [float(i) for i in range(1, 100)]  # 1..99
    assert percentile(samples, 95) == 95.0
    assert percentile(samples, 99) == 99.0  # ceil(98.01) = 99, round gave 98
    assert percentile(samples, 50) == 50.0  # ceil(49.5) = 50, round gave 50 too


def test_percentile_small_sample_ceil_pins():
    # n=2: p50 must be the first sample (ceil(1.0)=1), p51 the second.
    assert percentile([10.0, 20.0], 50) == 10.0
    assert percentile([10.0, 20.0], 51) == 20.0
    # n=1: every quantile is the sample itself.
    assert percentile([7.0], 1) == 7.0
    assert percentile([7.0], 99) == 7.0
    # n=4: ceil(0.25*4)=1 keeps p25 at the minimum, round would too,
    # but p26 must step to the second sample (ceil(1.04)=2).
    assert percentile([1.0, 2.0, 3.0, 4.0], 25) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 26) == 2.0


def test_percentile_zero_q_clamps_to_minimum():
    assert percentile([3.0, 1.0, 2.0], 0) == 1.0


def test_snapshot_counts_and_latency():
    m = ServiceMetrics()
    for _ in range(3):
        m.request()
    m.cache_miss()
    m.complete(10.0)
    m.cache_hit()
    m.complete(1.0)
    m.reject()
    m.timeout()
    m.error()
    m.coalesce()
    m.batch(4)
    stats = m.snapshot(queue_depth=2, inflight=1, workers=2, cache_size=7,
                       cache_evictions=1)
    assert stats.requests == 3
    assert stats.completed == 2
    assert stats.cache_hits == 1 and stats.cache_misses == 1
    assert stats.rejected == 1 and stats.timeouts == 1 and stats.errors == 1
    assert stats.coalesced == 1
    assert stats.batches == 1 and stats.batched_jobs == 4
    assert stats.queue_depth == 2 and stats.inflight == 1 and stats.workers == 2
    assert stats.cache_size == 7 and stats.cache_evictions == 1
    assert stats.p50_ms in (1.0, 10.0)
    assert stats.uptime_s >= 0.0
    assert 0.0 < stats.hit_rate < 1.0


def test_hit_rate_zero_before_any_lookup():
    assert ServiceStats().hit_rate == 0.0


def test_reservoir_is_sliding():
    m = ServiceMetrics(reservoir_size=4)
    for ms in (100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0):
        m.complete(ms)
    assert m.snapshot().p99_ms == 1.0  # old spikes aged out


def test_render_prometheus_shape():
    m = ServiceMetrics()
    m.request()
    m.cache_miss()
    m.complete(5.0)
    text = m.render(queue_depth=3, workers=2)
    lines = dict(line.rsplit(" ", 1) for line in text.strip().splitlines())
    assert lines["repro_service_requests_total"] == "1"
    assert lines["repro_service_cache_misses_total"] == "1"
    assert lines["repro_service_queue_depth"] == "3"
    assert lines["repro_service_workers"] == "2"
    assert float(lines["repro_service_p50_ms"]) == 5.0
    assert text.endswith("\n")


def test_stats_as_dict_round_trip():
    stats = ServiceMetrics().snapshot()
    assert ServiceStats(**stats.as_dict()) == stats
