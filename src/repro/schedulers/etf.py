"""ETF — Earliest Time First (Hwang, Chow, Anger & Lee, 1989).

A dynamic list scheduler for bounded processors: at every step the
ready task that can *start* earliest (over all processors) is scheduled
there; ties are broken by higher static level (the published rule), then
deterministically.  ETF appends without idle-gap insertion, as in the
original formulation.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, ready_time
from repro.schedulers.ranking import machine_static_levels


class ETF(Scheduler):
    """Earliest Time First."""

    name = "ETF"

    def schedule(self, instance: Instance) -> Schedule:
        dag = instance.dag
        sl = machine_static_levels(instance, agg="mean")
        pos = {t: i for i, t in enumerate(dag.topological_order())}
        procs = instance.machine.proc_ids()

        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        indegree = {t: dag.in_degree(t) for t in dag.tasks()}
        ready = {t for t in dag.tasks() if indegree[t] == 0}

        scheduled = 0
        while ready:
            best_key = None  # (est, -static_level, pos, proc_index)
            best_choice = None
            for task in ready:
                for j, proc in enumerate(procs):
                    data_ready = ready_time(schedule, instance, task, proc)
                    start = max(data_ready, schedule.timeline(proc).end_time)
                    key = (start, -sl[task], pos[task], j)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_choice = (task, proc, start)
            assert best_choice is not None
            task, proc, start = best_choice
            schedule.add(task, proc, start, instance.exec_time(task, proc))
            scheduled += 1
            ready.discard(task)
            for child in dag.successors(task):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.add(child)

        if scheduled != instance.num_tasks:
            raise SchedulingError(f"ETF scheduled {scheduled}/{instance.num_tasks} tasks")
        return schedule
