"""Content-addressed LRU cache of computed schedules.

Keys are :func:`request_key` digests — instance fingerprint plus
scheduler name — so *what* was asked, never *when* or *by whom*,
determines the entry.  Values are the immutable response payloads of
:func:`repro.service.protocol.schedule_payload`; a hit returns the
exact object stored by the cold run, which is what makes hit responses
bit-identical to cold responses by construction.

The cache is used from a single event loop, so plain dict operations
need no locking; it still keeps its own hit/miss/eviction counters so a
:class:`ScheduleCache` is observable on its own (the engine-level
metrics aggregate over it).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.instance import Instance


def request_key(instance: Instance, alg: str) -> str:
    """Cache key of one request: content fingerprint x scheduler config."""
    digest = hashlib.sha256(instance.fingerprint().encode("ascii"))
    digest.update(b"\x00")
    digest.update(alg.encode("utf-8"))
    return digest.hexdigest()


class ScheduleCache:
    """Bounded LRU mapping request keys to response payloads."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        """Look up a payload; refreshes recency on hit.

        Treat the returned payload as read-only — it is shared with
        every other hit on the same key.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, payload: dict) -> None:
        """Insert (or refresh) an entry, evicting the least recently
        used entries beyond capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
