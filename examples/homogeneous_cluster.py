#!/usr/bin/env python3
"""The "and homogeneous systems" half of the title: the improved
scheduler on identical processors against the homogeneous classics
(MCP, ETF, DLS, HLFET).

On a homogeneous machine all rank variants coincide and duplication
rarely pays, so the improvement must come from lookahead + refinement —
this example shows the algorithm degrades gracefully instead of
regressing.

Run:  python examples/homogeneous_cluster.py
"""

import numpy as np

from repro import homogeneous_instance, slr, validate
from repro.dag.generators import fork_join_dag, laplace_dag, random_dag
from repro.schedulers import get_scheduler
from repro.utils.tables import format_table

ALGORITHMS = ["IMP", "HEFT", "MCP", "ETF", "DLS", "HLFET"]
PROCESSORS = 8

workloads = [
    ("random n=100", lambda s: random_dag(100, ccr=1.0, seed=s)),
    ("random n=100 ccr=5", lambda s: random_dag(100, ccr=5.0, seed=s)),
    ("laplace 8x8", lambda s: laplace_dag(8)),
    ("fork-join 16x3", lambda s: fork_join_dag(16, stages=3, chain_length=2,
                                               jitter=0.4, seed=s)),
]

rows = []
for label, factory in workloads:
    samples: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
    for seed in range(5):
        instance = homogeneous_instance(factory(seed), num_procs=PROCESSORS)
        assert instance.is_homogeneous()
        for a in ALGORITHMS:
            schedule = get_scheduler(a).schedule(instance)
            validate(schedule, instance)
            samples[a].append(slr(schedule, instance))
    rows.append([label, *(f"{float(np.mean(samples[a])):.3f}" for a in ALGORITHMS)])

print(format_table(
    ["workload", *ALGORITHMS],
    rows,
    title=f"homogeneous machine (q={PROCESSORS}): average SLR, lower is better",
))

print("\nNote: with identical processors the ETC matrix carries no")
print("heterogeneity, so IMP runs a single rank variant; gains come from")
print("lookahead and the refinement post-pass only.")
