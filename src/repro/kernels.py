"""Hot-path kernel layer: per-instance caches and NumPy-vectorized kernels.

Every figure of the reconstructed protocol averages hundreds of
replications, and each replication runs every compared scheduler on the
same :class:`~repro.instance.Instance`.  The scalar implementations in
:mod:`repro.schedulers.ranking` and :mod:`repro.schedulers.base` are the
specification; this module supplies *behaviour-preserving* accelerated
equivalents:

* :class:`InstanceKernel` — built once per instance (lazily, via
  ``Instance.kernel``), it memoizes successor/predecessor lists, per-edge
  data volumes, average communication costs, per-pair communication
  constants (for the uniform/zero link models every experiment uses) and
  a dense ETC array in canonical (machine) processor order.
* level-grouped NumPy evaluation of the upward/downward rank recurrences
  (``np.maximum.reduceat`` over the DAG's depth levels), cached per
  aggregation so HEFT, CPOP and the improved scheduler's rank-variant
  search never recompute a rank for the same instance;
* batched earliest-data-ready times across all processors for EFT/EST
  placement, and a vectorized one-level lookahead score.

The kernels reproduce the scalar floating-point operations exactly —
same additions, in the same order, with exact min/max reductions — so
schedules are bit-identical with the layer on or off (asserted by
``tests/core/test_vectorized_equivalence.py``).  The module-level switch
(:func:`use_kernels`) exists for those differential tests and for the
perf-regression harness, which measures the legacy scalar path as its
baseline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    GraphError,
    SchedulingError,
    UnknownProcessorError,
    UnknownTaskError,
)
from repro.machine.comm import UniformCommunication, ZeroCommunication
from repro.obs import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instance import Instance
    from repro.schedule.schedule import Schedule
    from repro.types import ProcId, TaskId

#: Aggregations a rank kernel understands (mirrors ranking.RankAggregation).
_AGGS = ("mean", "median", "best", "worst")

#: Below this task count the *first* rank computation per direction runs
#: the scalar recurrence over the kernel's memoized adjacency instead of
#: building the level structure — the one-time ``_build_levels`` cost
#: dominates the vectorized win for small DAGs (measured crossover is
#: well above typical experiment sizes).  A second aggregation request
#: builds the levels, since the build then amortizes across the cached
#: variants.  Both paths replay the same float operations, so results
#: stay bit-identical either way.
_SCALAR_RANK_CUTOFF = 256

_ENABLED = True


def kernels_enabled() -> bool:
    """True when the accelerated kernel layer is active (the default)."""
    return _ENABLED


def set_kernels_enabled(enabled: bool) -> None:
    """Globally enable/disable the kernel layer (process-wide)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def use_kernels(enabled: bool) -> Iterator[None]:
    """Temporarily force the kernel layer on or off.

    Used by the differential tests (compare against the scalar reference)
    and by ``benchmarks/bench_regression.py`` (time the legacy path).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


class InstanceKernel:
    """Precomputed arrays and caches for one (immutable) instance.

    The kernel snapshots the DAG/machine/ETC at construction; instances
    are treated as immutable bundles everywhere in the library (see
    ``docs/architecture.md``), so the snapshot never goes stale.  All
    returned lists/arrays are shared — callers must treat them as
    read-only.
    """

    def __init__(self, instance: "Instance") -> None:
        dag = instance.dag
        machine = instance.machine
        etc = instance.etc

        self.tasks: list["TaskId"] = list(dag.tasks())
        self.ti: dict["TaskId", int] = {t: i for i, t in enumerate(self.tasks)}
        self.procs: list["ProcId"] = machine.proc_ids()
        self.pi: dict["ProcId", int] = {p: j for j, p in enumerate(self.procs)}
        self._etc = etc
        self._comm = machine.comm

        # Dense ETC in canonical (task insertion, machine proc) order.
        # Reindexing copies the stored floats verbatim — no arithmetic.
        arr = etc.as_array()
        trow = {t: i for i, t in enumerate(etc.task_ids)}
        pcol = {p: j for j, p in enumerate(etc.proc_ids)}
        rows = [trow[t] for t in self.tasks]
        cols = [pcol[p] for p in self.procs]
        if arr.size:
            self.etc_arr = np.ascontiguousarray(arr[np.ix_(rows, cols)])
        else:
            self.etc_arr = np.zeros((len(self.tasks), len(self.procs)))
        self.etc_arr.flags.writeable = False

        # Adjacency, memoized once instead of per networkx query.
        self.succ: dict["TaskId", list["TaskId"]] = {t: dag.successors(t) for t in self.tasks}
        self.pred: dict["TaskId", list["TaskId"]] = {t: dag.predecessors(t) for t in self.tasks}

        self.topo: list["TaskId"] = dag.topological_order()
        self.pos: dict["TaskId", int] = {t: i for i, t in enumerate(self.topo)}

        # Per-edge data volumes and machine-average communication times.
        self._edge_data: dict["TaskId", dict["TaskId", float]] = {t: {} for t in self.tasks}
        self._avg_comm: dict["TaskId", dict["TaskId", float]] = {t: {} for t in self.tasks}
        for u, v in dag.edges():
            data = dag.data(u, v)
            self._edge_data[u][v] = data
            self._avg_comm[u][v] = machine.avg_comm_time(data)

        # Per-pair constants: with the uniform (or zero) link model the
        # cost of an edge is one constant for every distinct pair — the
        # exact float the model itself would return.  ``None`` for
        # per-link models; hot paths then fall back to scalar code.
        self.out_const: dict["TaskId", dict["TaskId", float]] | None
        if isinstance(self._comm, ZeroCommunication):
            self.out_const = {u: {v: 0.0 for v in row} for u, row in self._edge_data.items()}
        elif isinstance(self._comm, UniformCommunication):
            lat, bw = self._comm.latency, self._comm.bandwidth
            self.out_const = {
                u: {v: lat + d / bw for v, d in row.items()}
                for u, row in self._edge_data.items()
            }
        else:
            self.out_const = None

        # Lazy per-aggregation caches.  Bounding policy: every keyed
        # cache is keyed by a rank aggregation, and :meth:`weights`
        # validates the key against ``_AGGS`` *before* inserting, so each
        # dict holds at most ``len(_AGGS)`` (= 4) entries for the life of
        # the instance; the unkeyed memos (exec table, level structures,
        # compiled form) are singletons.  Nothing here can grow with
        # request volume — :meth:`cache_info` exposes the sizes and caps
        # so tests can assert the bound.
        self._weights: dict[str, np.ndarray] = {}
        self._upward: dict[str, dict["TaskId", float]] = {}
        self._downward: dict[str, dict["TaskId", float]] = {}
        self._rank_order: dict[str, list["TaskId"]] = {}
        self._up_levels: list[tuple] | None = None
        self._down_levels: list[tuple] | None = None
        self._exec: dict["TaskId", dict["ProcId", float]] | None = None
        self._compiled: object | None = None
        self._compiled_built = False

        # Scratch buffers for the batched scoring kernels.  Scheduling is
        # single-threaded per instance, so reuse is safe; ready_times
        # hands out a fresh array, never a buffer.
        q = len(self.procs)
        self._row_buf = np.empty(q)
        self._arr_buf = np.empty(q)
        self._la_ready_buf = np.empty(q)
        self._avail_buf = np.empty(q)

    # ------------------------------------------------------------------
    # memoized cost queries
    # ------------------------------------------------------------------
    def comm_time(self, parent: "TaskId", child: "TaskId", src: "ProcId", dst: "ProcId") -> float:
        """Edge transfer time between two placements (== Instance.comm_time)."""
        consts = self.out_const
        if consts is not None:
            try:
                const = consts[parent][child]
            except KeyError:
                raise GraphError(f"no edge {parent!r} -> {child!r}") from None
            if src not in self.pi:
                raise UnknownProcessorError(src)
            if dst not in self.pi:
                raise UnknownProcessorError(dst)
            return 0.0 if src == dst else const
        try:
            data = self._edge_data[parent][child]
        except KeyError:
            raise GraphError(f"no edge {parent!r} -> {child!r}") from None
        if src not in self.pi:
            raise UnknownProcessorError(src)
        if dst not in self.pi:
            raise UnknownProcessorError(dst)
        return self._comm.time(data, src, dst)

    def avg_comm(self, parent: "TaskId", child: "TaskId") -> float:
        """Machine-average transfer time of one edge (== Instance.avg_comm_time)."""
        try:
            return self._avg_comm[parent][child]
        except KeyError:
            raise GraphError(f"no edge {parent!r} -> {child!r}") from None

    def etc_row(self, task: "TaskId") -> np.ndarray:
        """Read-only per-processor execution times in machine proc order."""
        try:
            return self.etc_arr[self.ti[task]]
        except KeyError:
            raise UnknownTaskError(task) from None

    def exec_table(self) -> dict["TaskId", dict["ProcId", float]]:
        """Nested ``{task: {proc: time}}`` memo of the ETC lookups.

        Built lazily from ``ETCMatrix.time`` itself so the floats are the
        exact values the scalar path sees.
        """
        table = self._exec
        if table is None:
            time = self._etc.time
            table = {
                t: {p: time(t, p) for p in self.procs} for t in self.tasks
            }
            self._exec = table
        return table

    def weights(self, agg: str) -> np.ndarray:
        """Per-task scalar weight vector for one rank aggregation.

        Delegates to the ETCMatrix accessors so the floats are the exact
        ones the scalar rank implementations see.
        """
        cached = self._weights.get(agg)
        if cached is not None:
            return cached
        if agg == "mean":
            fn = self._etc.mean
        elif agg == "median":
            fn = self._etc.median
        elif agg == "best":
            fn = self._etc.best
        elif agg == "worst":
            fn = self._etc.worst
        else:
            raise ConfigurationError(f"unknown rank aggregation {agg!r}")
        w = np.array([fn(t) for t in self.tasks], dtype=float)
        w.flags.writeable = False
        self._weights[agg] = w
        return w

    # ------------------------------------------------------------------
    # vectorized rank recurrences
    # ------------------------------------------------------------------
    def _build_levels(self, upward: bool) -> list[tuple]:
        """Group tasks into dependency levels for batched evaluation.

        For the upward recurrence a task's level is ``1 + max`` over its
        successors' levels (exit tasks at level 0); processing levels in
        ascending order guarantees every successor rank is final before
        it is read.  Each level is stored as ``(leaf_idx, seg_idx,
        seg_ptr, edge_dst, edge_comm)`` where *leaf* tasks have no edges
        on the relevant side and *seg* tasks own the contiguous edge
        segments ``[seg_ptr[i], seg_ptr[i+1])``.
        """
        n = len(self.tasks)
        neigh = self.succ if upward else self.pred
        neigh_idx: list[list[int]] = [
            [self.ti[s] for s in neigh[t]] for t in self.tasks
        ]
        comm_of: list[list[float]] = []
        for t in self.tasks:
            if upward:
                comm_of.append([self._avg_comm[t][s] for s in neigh[t]])
            else:
                comm_of.append([self._avg_comm[p][t] for p in neigh[t]])
        depth = [0] * n
        order = reversed(self.topo) if upward else self.topo
        for t in order:
            i = self.ti[t]
            d = 0
            for j in neigh_idx[i]:
                if depth[j] + 1 > d:
                    d = depth[j] + 1
            depth[i] = d
        by_level: dict[int, list[int]] = {}
        for i in range(n):
            by_level.setdefault(depth[i], []).append(i)
        levels = []
        for level in sorted(by_level):
            members = by_level[level]
            leaf = [i for i in members if not neigh_idx[i]]
            seg = [i for i in members if neigh_idx[i]]
            ptr = [0]
            dst: list[int] = []
            comm: list[float] = []
            for i in seg:
                dst.extend(neigh_idx[i])
                comm.extend(comm_of[i])
                ptr.append(len(dst))
            levels.append(
                (
                    np.asarray(leaf, dtype=np.intp),
                    np.asarray(seg, dtype=np.intp),
                    np.asarray(ptr, dtype=np.intp),
                    np.asarray(dst, dtype=np.intp),
                    np.asarray(comm, dtype=float),
                )
            )
        return levels

    def _upward_scalar(self, agg: str) -> dict["TaskId", float]:
        """Scalar upward recurrence over the memoized adjacency.

        Bit-identical to the vectorized evaluation: the same weights,
        the same ``comm + rank`` additions, an exact max fold, and the
        same final ``w + tail`` rounding.
        """
        w = self.weights(agg).tolist()
        ti = self.ti
        succ = self.succ
        avg = self._avg_comm
        rank: dict["TaskId", float] = {}
        for t in reversed(self.topo):
            tail = 0.0
            row = avg[t]
            for s in succ[t]:
                cand = row[s] + rank[s]
                if cand > tail:
                    tail = cand
            rank[t] = w[ti[t]] + tail
        return rank

    def _downward_scalar(self, agg: str) -> dict["TaskId", float]:
        """Scalar downward recurrence (see :meth:`_upward_scalar`)."""
        w = self.weights(agg).tolist()
        ti = self.ti
        pred = self.pred
        avg = self._avg_comm
        rank: dict["TaskId", float] = {}
        for t in self.topo:
            best = 0.0
            for p in pred[t]:
                cand = (rank[p] + w[ti[p]]) + avg[p][t]
                if cand > best:
                    best = cand
            rank[t] = best
        return rank

    def upward(self, agg: str) -> dict["TaskId", float]:
        """Cached upward ranks (HEFT's ``rank_u``) for one aggregation."""
        cached = self._upward.get(agg)
        if cached is not None:
            return cached
        if (
            self._up_levels is None
            and not self._upward
            and len(self.tasks) < _SCALAR_RANK_CUTOFF
        ):
            out = self._upward_scalar(agg)
            self._upward[agg] = out
            return out
        w = self.weights(agg)
        if self._up_levels is None:
            self._up_levels = self._build_levels(upward=True)
        n = len(self.tasks)
        rank = np.zeros(n)
        for leaf, seg, ptr, dst, comm in self._up_levels:
            if leaf.size:
                rank[leaf] = w[leaf]
            if seg.size:
                cand = comm + rank[dst]
                tails = np.maximum.reduceat(cand, ptr[:-1])
                rank[seg] = w[seg] + tails
        out = {t: float(rank[i]) for i, t in enumerate(self.tasks)}
        self._upward[agg] = out
        return out

    def downward(self, agg: str) -> dict["TaskId", float]:
        """Cached downward ranks (CPOP's ``rank_d``) for one aggregation."""
        cached = self._downward.get(agg)
        if cached is not None:
            return cached
        if (
            self._down_levels is None
            and not self._downward
            and len(self.tasks) < _SCALAR_RANK_CUTOFF
        ):
            out = self._downward_scalar(agg)
            self._downward[agg] = out
            return out
        w = self.weights(agg)
        if self._down_levels is None:
            self._down_levels = self._build_levels(upward=False)
        n = len(self.tasks)
        rank = np.zeros(n)
        for leaf, seg, ptr, src, comm in self._down_levels:
            # Entry tasks rank 0; `leaf` needs no write into the zeros.
            del leaf
            if seg.size:
                cand = (rank[src] + w[src]) + comm
                rank[seg] = np.maximum.reduceat(cand, ptr[:-1])
        out = {t: float(rank[i]) for i, t in enumerate(self.tasks)}
        self._downward[agg] = out
        return out

    def rank_order(self, agg: str = "mean") -> list["TaskId"]:
        """Cached decode order: decreasing upward rank, ties by
        topological position — the order the metaheuristic decoder and
        the compiled core place tasks in.  Treat the list as read-only.
        """
        cached = self._rank_order.get(agg)
        if cached is None:
            ranks = self.upward(agg)  # validates ``agg`` before caching
            pos = self.pos
            cached = sorted(self.tasks, key=lambda t: (-ranks[t], pos[t]))
            self._rank_order[agg] = cached
        return cached

    # ------------------------------------------------------------------
    # compiled flat-array form
    # ------------------------------------------------------------------
    def compiled(self):
        """The :class:`~repro.compiled.CompiledInstance` lowering, or
        ``None`` for per-link communication models (no pair-independent
        edge constant; callers fall back to the object decode path).

        Built once and shared — the service workers key their instance
        memo by fingerprint precisely so repeat requests reuse this.
        """
        tracer = get_tracer()
        if not self._compiled_built:
            if self.out_const is None:
                self._compiled = None
            else:
                from repro.compiled import CompiledInstance  # lazy: avoids cycle

                with tracer.span(
                    "compiled.lower", tasks=len(self.tasks), procs=len(self.procs)
                ):
                    self._compiled = CompiledInstance(self)
            self._compiled_built = True
            if tracer.enabled:
                tracer.count("kernel.compiled_build")
        elif tracer.enabled:
            tracer.count("kernel.compiled_hit")
        return self._compiled

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, dict[str, int]]:
        """Sizes and caps of every lazy cache on this kernel.

        ``maxsize`` is a hard bound: aggregation-keyed caches reject
        unknown keys before inserting, singletons hold at most one
        entry.  Tests assert ``size <= maxsize`` stays invariant.
        """
        cap = len(_AGGS)
        return {
            "weights": {"size": len(self._weights), "maxsize": cap},
            "upward": {"size": len(self._upward), "maxsize": cap},
            "downward": {"size": len(self._downward), "maxsize": cap},
            "rank_order": {"size": len(self._rank_order), "maxsize": cap},
            "up_levels": {"size": int(self._up_levels is not None), "maxsize": 1},
            "down_levels": {"size": int(self._down_levels is not None), "maxsize": 1},
            "exec_table": {"size": int(self._exec is not None), "maxsize": 1},
            "compiled": {"size": int(self._compiled is not None), "maxsize": 1},
        }

    # ------------------------------------------------------------------
    # batched placement scoring
    # ------------------------------------------------------------------
    def ready_times(self, schedule: "Schedule", task: "TaskId") -> np.ndarray | None:
        """Earliest data-ready time of ``task`` on *every* processor.

        Returns ``None`` when the machine's link model has no per-pair
        constant (the caller then falls back to the scalar path).  The
        reductions mirror ``schedulers.base.ready_time`` element-wise:
        per parent, min over placed copies of ``end + comm``; across
        parents, a running max starting at 0.
        """
        consts = self.out_const
        if consts is None:
            return None
        pi = self.pi
        ready = np.zeros(len(self.procs))
        row = self._row_buf
        arrival = self._arr_buf
        for parent in self.pred[task]:
            if parent not in schedule:
                raise SchedulingError(f"parent {parent!r} of {task!r} is unscheduled")
            const = consts[parent][task]
            first = True
            for copy in schedule.copies(parent):
                row.fill(copy.end + const)
                row[pi[copy.proc]] = copy.end
                if first:
                    arrival[:] = row
                    first = False
                else:
                    np.minimum(arrival, row, out=arrival)
            np.maximum(ready, arrival, out=ready)
        return ready

    def lookahead_score(
        self,
        schedule: "Schedule",
        task: "TaskId",
        child: "TaskId",
        placed_proc: "ProcId",
        placed_end: float,
    ) -> float | None:
        """Vectorized one-level lookahead (see PlacementEngine).

        Estimated earliest finish of ``child`` over all processors given
        ``task`` finishing at ``placed_end`` on ``placed_proc``; ``None``
        when no fast communication path exists.
        """
        consts = self.out_const
        if consts is None:
            return None
        pi = self.pi
        j_placed = pi[placed_proc]
        ready = self._la_ready_buf
        row = self._row_buf
        arrival = self._arr_buf
        ready.fill(placed_end + consts[task][child])
        ready[j_placed] = placed_end
        for parent in self.pred[child]:
            if parent == task or parent not in schedule:
                continue
            const = consts[parent][child]
            first = True
            for copy in schedule.copies(parent):
                row.fill(copy.end + const)
                row[pi[copy.proc]] = copy.end
                if first:
                    arrival[:] = row
                    first = False
                else:
                    np.minimum(arrival, row, out=arrival)
            if not first:
                np.maximum(ready, arrival, out=ready)
        avail = self._avail_buf
        for j, p in enumerate(self.procs):
            avail[j] = schedule.timeline(p).end_time
        if placed_end > avail[j_placed]:
            avail[j_placed] = placed_end
        np.maximum(ready, avail, out=ready)
        ready += self.etc_arr[self.ti[child]]
        return float(ready.min())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InstanceKernel(tasks={len(self.tasks)}, procs={len(self.procs)})"
