"""Deterministic consistent-hash ring with virtual nodes.

The fleet routes every schedule request by the instance's content
fingerprint, and the whole point of the topology is that the mapping
``fingerprint -> shard`` is a *pure function of the ring membership*:

* **Deterministic everywhere.**  Positions are SHA-256 digests, never
  Python ``hash()`` — the same node set produces the same ring in every
  process, across restarts and under any ``PYTHONHASHSEED``.  Routers
  never have to gossip assignments; two routers with the same member
  list agree by construction (and the layout is pinned by a golden
  fixture under ``tests/service/golden/``).
* **Minimal movement.**  Each node projects ``vnodes`` virtual points
  onto the ring, so adding or removing one node of *n* moves roughly
  ``1/n`` of the keyspace — only the keys the changed node owned (or
  now claims) re-home; everything else keeps its warm cache owner.
* **Orderly failover.**  :meth:`owners` walks the ring past the primary
  owner, yielding the distinct nodes that *would* own the key if the
  ones before them disappeared.  The router retries a failed proxy on
  exactly that sequence, which is also where the key re-homes once the
  dead shard is quarantined — the retry lands on the next owner's cache.

Mutation is O(vnodes · log ring); lookup is one SHA-256 plus a bisect.
A ring of a few dozen shards rebuilds in microseconds, so quarantine
and re-admission simply call :meth:`remove`/:meth:`add`.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

__all__ = ["HashRing"]

#: Virtual nodes per member.  128 points keeps the max/mean shard load
#: within ~20% for small fleets while add/remove stays sub-millisecond.
DEFAULT_VNODES = 128


def _position(label: str) -> int:
    """Ring position of one label: the first 8 bytes of its SHA-256."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring mapping string keys to member nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        # Parallel sorted arrays: position -> owning node.  Collisions
        # between different nodes' points are broken by node name so the
        # layout stays order-of-insertion independent.
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Admit ``node``; a no-op when it is already a member."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Drop ``node``; a no-op when it is not a member."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._rebuild()

    def _rebuild(self) -> None:
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            points.extend(
                (_position(f"{node}#{i}"), node) for i in range(self.vnodes)
            )
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    @property
    def nodes(self) -> frozenset[str]:
        """The current member set."""
        return frozenset(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return bool(self._nodes)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The node owning ``key`` — the first ring point at or after
        the key's position (wrapping).  Raises ``LookupError`` on an
        empty ring."""
        if not self._points:
            raise LookupError("hash ring has no members")
        idx = bisect.bisect_left(self._points, _position(key))
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def owners(self, key: str, count: int | None = None) -> list[str]:
        """The failover sequence for ``key``: distinct nodes in ring
        order starting at the primary owner.

        ``owners(key)[0] == owner(key)``, and ``owners(key)[i]`` is the
        node the key re-homes to after the first ``i`` entries leave the
        ring — so a router that retries down this list lands exactly
        where the quarantined ring would route next.
        """
        if not self._points:
            raise LookupError("hash ring has no members")
        limit = len(self._nodes) if count is None else min(count, len(self._nodes))
        start = bisect.bisect_left(self._points, _position(key))
        seen: list[str] = []
        for i in range(len(self._points)):
            node = self._owners[(start + i) % len(self._points)]
            if node not in seen:
                seen.append(node)
                if len(seen) == limit:
                    break
        return seen

    def layout(self) -> list[tuple[int, str]]:
        """The full ``(position, node)`` table in ring order — the
        golden-testable form of the ring."""
        return list(zip(self._points, self._owners))

    def iter_points(self) -> Iterator[tuple[int, str]]:
        return iter(self.layout())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashRing(nodes={sorted(self._nodes)}, vnodes={self.vnodes}, "
            f"points={len(self._points)})"
        )
