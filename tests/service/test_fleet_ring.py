"""HashRing property layer: determinism, minimal movement, golden layout.

The fleet's correctness rests on the ring being a *pure function of the
member set* — every router in every process must map a fingerprint to
the same shard, across restarts and any ``PYTHONHASHSEED``.  These
tests pin that down three ways: structural properties (movement bounds,
failover ordering), a real subprocess restart under a different hash
seed, and a golden fixture that freezes the exact layout so any change
to the position function is a deliberate, visible event (it would
re-home every fleet's keyspace and cold every per-shard cache segment).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.fleet.ring import DEFAULT_VNODES, HashRing

GOLDEN = Path(__file__).parent / "golden" / "hashring_layout.json"

KEYS = [f"fingerprint-{i:04d}" for i in range(600)]


# ----------------------------------------------------------------------
# construction and membership
# ----------------------------------------------------------------------
def test_vnodes_validated():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_empty_ring_lookup_raises():
    ring = HashRing()
    assert not ring and len(ring) == 0
    with pytest.raises(LookupError):
        ring.owner("anything")
    with pytest.raises(LookupError):
        ring.owners("anything")


def test_membership_and_idempotence():
    ring = HashRing(["a", "b"])
    ring.add("a")  # duplicate add is a no-op
    assert ring.nodes == {"a", "b"}
    before = ring.layout()
    ring.remove("missing")  # absent remove is a no-op
    assert ring.layout() == before
    ring.remove("a")
    assert "a" not in ring and "b" in ring
    assert len(ring.layout()) == DEFAULT_VNODES


def test_single_node_owns_everything():
    ring = HashRing(["only"])
    assert all(ring.owner(k) == "only" for k in KEYS[:50])
    assert ring.owners(KEYS[0]) == ["only"]


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_layout_is_insertion_order_independent():
    nodes = [f"shard-{i}" for i in range(5)]
    forward = HashRing(nodes)
    backward = HashRing(reversed(nodes))
    rebuilt = HashRing(nodes[2:] + nodes[:2])
    assert forward.layout() == backward.layout() == rebuilt.layout()


def test_remove_then_readd_restores_layout():
    """Quarantine + readmission must be a perfect round trip: the
    returning shard gets back exactly the keyspace it owned."""
    ring = HashRing([f"shard-{i}" for i in range(4)])
    before = ring.layout()
    owners_before = {k: ring.owner(k) for k in KEYS}
    ring.remove("shard-2")
    ring.add("shard-2")
    assert ring.layout() == before
    assert {k: ring.owner(k) for k in KEYS} == owners_before


def test_determinism_across_pythonhashseed(tmp_path):
    """The mapping must not depend on ``hash()``: two fresh interpreters
    with different hash seeds must produce identical assignments."""
    script = tmp_path / "ring_dump.py"
    script.write_text(
        "import json, sys\n"
        "from repro.service.fleet.ring import HashRing\n"
        "ring = HashRing(['shard-%d' % i for i in range(4)], vnodes=64)\n"
        "keys = ['fingerprint-%04d' % i for i in range(200)]\n"
        "json.dump({k: ring.owner(k) for k in keys}, sys.stdout)\n"
    )
    outputs = []
    for seed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": seed,
                 "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
    # ... and match this process's ring too (a "restart" of the router)
    here = HashRing([f"shard-{i}" for i in range(4)], vnodes=64)
    assert outputs[0] == {k: here.owner(k) for k in outputs[0]}


# ----------------------------------------------------------------------
# minimal movement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [3, 4, 8])
def test_adding_a_node_moves_at_most_2_over_n(n):
    ring = HashRing([f"shard-{i}" for i in range(n)])
    before = {k: ring.owner(k) for k in KEYS}
    ring.add("shard-new")
    moved = [k for k in KEYS if ring.owner(k) != before[k]]
    # Ideal is 1/(n+1); allow 2/(n+1) headroom for vnode placement noise.
    assert len(moved) <= 2 * len(KEYS) / (n + 1), (
        f"{len(moved)}/{len(KEYS)} keys moved adding 1 node to {n}"
    )
    # every moved key moved *to* the new node, never between old ones
    assert all(ring.owner(k) == "shard-new" for k in moved)


@pytest.mark.parametrize("n", [3, 4, 8])
def test_removing_a_node_moves_only_its_keys(n):
    ring = HashRing([f"shard-{i}" for i in range(n)])
    before = {k: ring.owner(k) for k in KEYS}
    ring.remove("shard-0")
    for key in KEYS:
        if before[key] == "shard-0":
            assert ring.owner(key) != "shard-0"
        else:
            # survivors keep their keyspace (and their warm caches)
            assert ring.owner(key) == before[key]


def test_load_stays_roughly_balanced():
    ring = HashRing([f"shard-{i}" for i in range(4)])
    counts: dict[str, int] = {}
    for key in KEYS:
        counts[ring.owner(key)] = counts.get(ring.owner(key), 0) + 1
    mean = len(KEYS) / len(ring)
    assert all(c > 0.4 * mean for c in counts.values()), counts
    assert all(c < 2.0 * mean for c in counts.values()), counts


# ----------------------------------------------------------------------
# failover ordering
# ----------------------------------------------------------------------
def test_owners_sequence_matches_post_removal_rehash():
    """owners()[i] must be where the key re-homes after the first i
    owners die — the invariant that makes router retry land exactly on
    the quarantined ring's destination."""
    nodes = [f"shard-{i}" for i in range(5)]
    for key in KEYS[:100]:
        ring = HashRing(nodes)
        sequence = ring.owners(key)
        assert sequence[0] == ring.owner(key)
        assert sorted(sequence) == sorted(nodes)  # distinct, exhaustive
        for expected_next in sequence[1:]:
            ring.remove(ring.owner(key))
            assert ring.owner(key) == expected_next


def test_owners_count_clamps():
    ring = HashRing(["a", "b", "c"])
    assert len(ring.owners(KEYS[0], count=2)) == 2
    assert len(ring.owners(KEYS[0], count=99)) == 3


# ----------------------------------------------------------------------
# golden layout
# ----------------------------------------------------------------------
def test_golden_layout_is_pinned():
    """The exact ring layout is frozen to disk.  If this fails, the
    position function changed: every deployed fleet would re-home its
    whole keyspace and lose all cache locality.  Regenerate the fixture
    only as a deliberate, called-out migration:

        PYTHONPATH=src python tests/service/test_fleet_ring.py
    """
    fixture = json.loads(GOLDEN.read_text())
    ring = HashRing(fixture["nodes"], vnodes=fixture["vnodes"])
    layout = [[pos, node] for pos, node in ring.layout()]
    assert layout == fixture["layout"], "ring layout drifted from golden fixture"
    owners = {k: ring.owner(k) for k in fixture["owners"]}
    assert owners == fixture["owners"], "key ownership drifted from golden fixture"


def _regenerate() -> None:  # pragma: no cover - manual fixture refresh
    nodes = [f"shard-{i}" for i in range(3)]
    ring = HashRing(nodes, vnodes=8)
    fixture = {
        "nodes": nodes,
        "vnodes": 8,
        "layout": [[pos, node] for pos, node in ring.layout()],
        "owners": {k: ring.owner(k) for k in KEYS[:32]},
    }
    GOLDEN.write_text(json.dumps(fixture, indent=1) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
