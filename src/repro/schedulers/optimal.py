"""Exhaustive branch-and-bound scheduler (test oracle for tiny DAGs).

Enumerates every sequence of (ready task, processor) decisions with
insertion-based earliest placement, i.e. the space of *semi-active*
schedules, which is guaranteed to contain a makespan-optimal schedule
for this machine model.  Used by the optimality-gap experiment (E13) and
by correctness tests; refuses instances beyond ``max_tasks``.

Pruning: an incumbent initialised with HEFT plus a per-node lower bound
combining the current partial makespan with each unscheduled task's
earliest possible completion extended by its minimum-cost critical tail.
"""

from __future__ import annotations

from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, placement_on
from repro.schedulers.heft import HEFT
from repro.types import TaskId

_EPS = 1e-9


class BranchAndBoundScheduler(Scheduler):
    """Optimal (non-duplicating) scheduler for very small instances."""

    name = "OPT-BB"

    def __init__(self, max_tasks: int = 12) -> None:
        self.max_tasks = max_tasks

    def schedule(self, instance: Instance) -> Schedule:
        n = instance.num_tasks
        if n > self.max_tasks:
            raise SchedulingError(
                f"branch-and-bound refuses {n} tasks (limit {self.max_tasks}); "
                "it is a test oracle, not a production scheduler"
            )
        dag = instance.dag
        procs = instance.machine.proc_ids()

        # Minimum-cost critical tail of each task (no communication): a
        # valid lower bound on the time from the task's start to the end
        # of the schedule.
        tail: dict[TaskId, float] = {}
        for t in reversed(dag.topological_order()):
            tail[t] = instance.etc.best(t) + max(
                (tail[s] for s in dag.successors(t)), default=0.0
            )

        incumbent = HEFT().schedule(instance)
        best_span = incumbent.makespan
        best_moves: list[tuple[TaskId, object]] | None = None

        work = Schedule(instance.machine, name="bb-work")
        indegree = {t: dag.in_degree(t) for t in dag.tasks()}
        ready: list[TaskId] = sorted(
            (t for t in dag.tasks() if indegree[t] == 0), key=str
        )
        moves: list[tuple[TaskId, object]] = []

        def lower_bound() -> float:
            lb = work.makespan
            for t in dag.tasks():
                if t in work:
                    continue
                # Earliest the task could possibly start: each placed
                # parent must at least have finished (communication is
                # optimistically free, keeping the bound valid).
                est = 0.0
                for p in dag.predecessors(t):
                    if p in work:
                        est = max(est, min(c.end for c in work.copies(p)))
                lb = max(lb, est + tail[t])
            return lb

        def dfs() -> None:
            nonlocal best_span, best_moves
            if not ready:
                span = work.makespan
                if span < best_span - _EPS:
                    best_span = span
                    best_moves = list(moves)
                return
            if lower_bound() >= best_span - _EPS:
                return
            for task in list(ready):
                ready.remove(task)
                newly = []
                for child in dag.successors(task):
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        newly.append(child)
                ready.extend(newly)
                for proc in procs:
                    placed = placement_on(work, instance, task, proc, insertion=True)
                    if placed.start + tail[task] >= best_span - _EPS:
                        continue
                    work.add(task, placed.proc, placed.start, placed.end - placed.start)
                    moves.append((task, proc))
                    dfs()
                    moves.pop()
                    work.remove(task)
                for child in newly:
                    ready.remove(child)
                for child in dag.successors(task):
                    indegree[child] += 1
                ready.append(task)

        dfs()

        if best_moves is None:
            # HEFT was already optimal among explored candidates.
            return incumbent
        out = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        for task, proc in best_moves:
            placed = placement_on(out, instance, task, proc, insertion=True)
            out.add(task, placed.proc, placed.start, placed.end - placed.start)
        return out
