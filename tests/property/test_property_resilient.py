"""Property tests: resilient schedules under *random* fault plans.

The exhaustive suite (``tests/schedulers/test_killk_differential.py``)
enumerates size-k kill sets at time zero; here hypothesis drives
arbitrary kill subsets within budget, arbitrary kill times, and fresh
random instances, checking the two load-bearing contracts:

* prediction == simulation, bit for bit, for any fault plan;
* a ``schedulable`` verdict is honoured by every kill set within
  budget at any kill times (fault monotonicity makes time-0 the worst
  case — these draws probe exactly that claim).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.schedulers.heft import HEFT
from repro.schedulers.registry import get_scheduler
from repro.schedulers.resilient import (
    ResilientScheduler,
    predict_degraded,
    schedulability_report,
)
from repro.sim.executor import execute
from tests.population import build_deadline_population

#: Pre-built deadline corpus members with their k=1 resilient schedules
#: and worst-case reports (module scope: hypothesis re-draws only the
#: fault plan, not the expensive schedule/report pipeline).
_PREPARED = []
for _label, _inst in build_deadline_population():
    _sched = get_scheduler("FT-HEFT-k1").schedule(_inst)
    _report = schedulability_report(_sched, _inst, k=1)
    _PREPARED.append((_label, _inst, _sched, _report))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_random_kill_plans_respect_schedulable_verdict(data):
    label, inst, sched, report = data.draw(st.sampled_from(_PREPARED))
    procs = inst.machine.proc_ids()
    kill = data.draw(
        st.lists(st.sampled_from(procs), unique=True, max_size=report.k)
    )
    times = [
        data.draw(st.floats(0.0, 1.5 * sched.makespan, allow_nan=False))
        for _ in kill
    ]
    faults = dict(zip(kill, times))
    pred = predict_degraded(sched, inst, faults)
    real = execute(sched, inst, faults=faults)
    assert pred.makespan == real.makespan, (label, faults)
    assert pred.task_ends == real.task_ends(), (label, faults)
    if report.schedulable:
        assert real.all_tasks_completed(inst), (label, faults)
        assert all(
            end <= inst.deadline for end in real.task_ends().values()
        ), (label, faults)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    q=st.integers(min_value=2, max_value=5),
    ccr=st.floats(min_value=0.0, max_value=5.0),
    seed=st.integers(min_value=0, max_value=5_000),
    k=st.integers(min_value=1, max_value=2),
    data=st.data(),
)
def test_prediction_matches_simulation_on_random_instances(n, q, ccr, seed, k, data):
    dag = random_dag(n, ccr=ccr, seed=seed)
    inst = make_instance(dag, num_procs=q, heterogeneity=0.8, seed=seed)
    sched = ResilientScheduler(HEFT(), k=k).schedule(inst)
    keff = min(k, q - 1)
    kill = data.draw(
        st.lists(
            st.sampled_from(inst.machine.proc_ids()), unique=True, max_size=keff
        )
    )
    faults = {
        p: data.draw(st.floats(0.0, 2.0 * sched.makespan, allow_nan=False))
        for p in kill
    }
    pred = predict_degraded(sched, inst, faults)
    real = execute(sched, inst, faults=faults)
    assert pred.makespan == real.makespan
    assert pred.task_ends == real.task_ends()
    assert real.all_tasks_completed(inst)
