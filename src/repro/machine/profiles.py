"""Named machine profiles: realistic target-system presets.

The parametric builders in :mod:`repro.machine.topology` are fully
general; these profiles capture the three system archetypes the
heterogeneous-scheduling literature targets, ready to drop into
examples and user code:

* :func:`workstation_cluster` — a LAN of mixed-generation workstations
  (moderate consistent heterogeneity, visible network costs),
* :func:`accelerated_node` — CPUs plus accelerators where only *some*
  kernels enjoy the accelerator speedup (inconsistent ETC — the case
  where HEFT-style per-task processor choice matters most),
* :func:`compute_grid` — clustered machines with cheap intra-cluster
  and expensive inter-cluster links.
"""

from __future__ import annotations

import numpy as np

from repro.dag.graph import TaskDAG
from repro.exceptions import MachineError
from repro.instance import Instance
from repro.machine.cluster import Machine
from repro.machine.comm import LinkCommunication, UniformCommunication
from repro.machine.etc import ETCMatrix
from repro.machine.processor import Processor
from repro.utils.rng import SeedLike, as_generator


def workstation_cluster(
    num_nodes: int = 8,
    generations: int = 3,
    latency: float = 1.0,
    bandwidth: float = 2.0,
    seed: SeedLike = 0,
) -> Machine:
    """Mixed-generation workstation LAN.

    Node speeds are drawn from ``generations`` discrete tiers
    (1.0, 1.5, 2.25, ... — each generation 50% faster), mimicking a lab
    that buys machines every couple of years.
    """
    if num_nodes < 1:
        raise MachineError(f"num_nodes must be >= 1, got {num_nodes}")
    if generations < 1:
        raise MachineError(f"generations must be >= 1, got {generations}")
    rng = as_generator(seed)
    tiers = [1.5**g for g in range(generations)]
    speeds = [float(tiers[int(rng.integers(0, len(tiers)))]) for _ in range(num_nodes)]
    procs = [Processor(id=i, speed=s, name=f"ws{i}") for i, s in enumerate(speeds)]
    return Machine(procs, UniformCommunication(latency, bandwidth), name="workstation-cluster")


def accelerated_node(
    dag: TaskDAG,
    num_cpus: int = 4,
    num_accels: int = 2,
    accel_speedup: float = 8.0,
    accel_fraction: float = 0.4,
    pcie_latency: float = 2.0,
    pcie_bandwidth: float = 4.0,
    seed: SeedLike = 0,
) -> Instance:
    """A CPU + accelerator node as a ready-made :class:`Instance`.

    A seeded ``accel_fraction`` of the tasks are "accelerable": they run
    ``accel_speedup``x faster on accelerator processors; everything else
    runs *slower* there (0.5x), producing the classic inconsistent ETC
    where greedy per-task processor choice is non-trivial.  Transfers to
    or from an accelerator pay the PCIe-style link; CPU-to-CPU transfers
    are fast shared-memory copies.
    """
    if num_cpus < 1 or num_accels < 0:
        raise MachineError("need >= 1 CPU and >= 0 accelerators")
    if accel_speedup <= 0 or not (0.0 <= accel_fraction <= 1.0):
        raise MachineError("bad accelerator parameters")
    rng = as_generator(seed)

    cpu_ids = list(range(num_cpus))
    accel_ids = list(range(num_cpus, num_cpus + num_accels))
    procs = [Processor(id=i, name=f"cpu{i}") for i in cpu_ids] + [
        Processor(id=i, name=f"accel{i - num_cpus}") for i in accel_ids
    ]
    all_ids = cpu_ids + accel_ids

    lat: dict[int, dict[int, float]] = {}
    bw: dict[int, dict[int, float]] = {}
    for src in all_ids:
        lat[src] = {}
        bw[src] = {}
        for dst in all_ids:
            if src == dst:
                continue
            if src in cpu_ids and dst in cpu_ids:
                lat[src][dst] = 0.1
                bw[src][dst] = 50.0  # shared memory
            else:
                lat[src][dst] = pcie_latency
                bw[src][dst] = pcie_bandwidth
    machine = Machine(procs, LinkCommunication(all_ids, lat, bw), name="accelerated-node")

    tasks = list(dag.tasks())
    accelerable = {t for t in tasks if rng.random() < accel_fraction}
    values = np.zeros((len(tasks), len(all_ids)))
    for i, t in enumerate(tasks):
        base = dag.cost(t)
        for j, p in enumerate(all_ids):
            if p in cpu_ids:
                values[i, j] = base
            elif t in accelerable:
                values[i, j] = base / accel_speedup
            else:
                values[i, j] = base * 2.0
    etc = ETCMatrix(tasks, all_ids, values)
    return Instance(dag=dag, machine=machine, etc=etc, name=f"{dag.name}@accel-node")


def compute_grid(
    clusters: int = 3,
    nodes_per_cluster: int = 4,
    intra_latency: float = 0.5,
    intra_bandwidth: float = 10.0,
    inter_latency: float = 20.0,
    inter_bandwidth: float = 1.0,
    seed: SeedLike = 0,
) -> Machine:
    """Clusters of homogeneous nodes joined by a slow WAN.

    Intra-cluster links are fast; inter-cluster links pay the WAN.  Node
    speeds differ per cluster (drawn once per cluster), modelling sites
    with different hardware.
    """
    if clusters < 1 or nodes_per_cluster < 1:
        raise MachineError("clusters and nodes_per_cluster must be >= 1")
    rng = as_generator(seed)
    cluster_speed = [float(rng.uniform(1.0, 2.0)) for _ in range(clusters)]
    procs = []
    cluster_of: dict[int, int] = {}
    for c in range(clusters):
        for k in range(nodes_per_cluster):
            pid = c * nodes_per_cluster + k
            procs.append(Processor(id=pid, speed=cluster_speed[c], name=f"c{c}n{k}"))
            cluster_of[pid] = c
    ids = [p.id for p in procs]
    lat: dict[int, dict[int, float]] = {}
    bw: dict[int, dict[int, float]] = {}
    for src in ids:
        lat[src] = {}
        bw[src] = {}
        for dst in ids:
            if src == dst:
                continue
            same = cluster_of[src] == cluster_of[dst]
            lat[src][dst] = intra_latency if same else inter_latency
            bw[src][dst] = intra_bandwidth if same else inter_bandwidth
    return Machine(procs, LinkCommunication(ids, lat, bw), name="compute-grid")
