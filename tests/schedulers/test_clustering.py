"""Tests for the clustering schedulers (DSC, linear clustering)."""

import pytest

from repro.dag.generators import out_tree_dag, random_dag
from repro.dag.graph import TaskDAG
from repro.exceptions import SchedulingError
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.validation import validate
from repro.schedulers.clustering import DSC, ClusteringScheduler, LinearClustering
from repro.schedulers.baselines import RandomScheduler


@pytest.fixture(params=[DSC, LinearClustering], ids=lambda c: c.__name__)
def scheduler(request):
    return request.param()


class TestFeasibility:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random(self, scheduler, seed):
        dag = random_dag(40, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = scheduler.schedule(inst)
        validate(s, inst)
        assert len(s) == 40

    def test_topcuoglu(self, scheduler, topcuoglu_instance):
        s = scheduler.schedule(topcuoglu_instance)
        validate(s, topcuoglu_instance)

    def test_homogeneous(self, scheduler, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        validate(scheduler.schedule(inst), inst)

    def test_single_task(self, scheduler):
        from repro.dag.task import Task

        dag = TaskDAG()
        dag.add_task(Task("x", cost=2.0))
        inst = homogeneous_instance(dag, num_procs=3)
        assert scheduler.schedule(inst).makespan == pytest.approx(2.0)

    def test_deterministic(self, scheduler, topcuoglu_instance):
        a = scheduler.schedule(topcuoglu_instance)
        b = scheduler.schedule(topcuoglu_instance)
        assert a.assignment() == b.assignment()


class TestClusterStructure:
    def test_clusters_partition_tasks(self, topcuoglu_instance):
        for cls in (DSC, LinearClustering):
            clusters = cls().clusters(topcuoglu_instance)
            flat = [t for c in clusters for t in c]
            assert sorted(map(str, flat)) == sorted(
                map(str, topcuoglu_instance.dag.tasks())
            )

    def test_linear_clusters_are_chains(self, topcuoglu_instance):
        dag = topcuoglu_instance.dag
        for chain in LinearClustering().clusters(topcuoglu_instance):
            for u, v in zip(chain, chain[1:]):
                assert dag.has_edge(u, v)

    def test_dsc_chain_stays_together(self):
        # A pure chain with heavy comm must form one cluster.
        dag = TaskDAG.from_edges(
            [(0, 1, 50.0), (1, 2, 50.0)], costs={0: 1.0, 1: 1.0, 2: 1.0}
        )
        inst = homogeneous_instance(dag, num_procs=3, bandwidth=0.1)
        clusters = DSC().clusters(inst)
        assert len(clusters) == 1

    def test_dsc_independent_tasks_split(self):
        from repro.dag.task import Task

        dag = TaskDAG()
        for i in range(4):
            dag.add_task(Task(i, cost=5.0))
        inst = homogeneous_instance(dag, num_procs=4)
        clusters = DSC().clusters(inst)
        assert len(clusters) == 4

    def test_mapping_balances_load(self, topcuoglu_instance):
        sched = DSC()
        clusters = sched.clusters(topcuoglu_instance)
        assignment = sched.map_clusters(topcuoglu_instance, clusters)
        assert set(assignment) == set(topcuoglu_instance.dag.tasks())
        assert set(assignment.values()) <= set(topcuoglu_instance.machine.proc_ids())

    def test_incomplete_clusters_rejected(self, topcuoglu_instance):
        class Broken(ClusteringScheduler):
            name = "broken"

            def clusters(self, instance):
                return [[1, 2]]

        with pytest.raises(SchedulingError):
            Broken().schedule(topcuoglu_instance)

    def test_overlapping_clusters_rejected(self, topcuoglu_instance):
        class Overlap(ClusteringScheduler):
            name = "overlap"

            def clusters(self, instance):
                tasks = list(instance.dag.tasks())
                return [tasks, [tasks[0]]]

        with pytest.raises(SchedulingError):
            Overlap().schedule(topcuoglu_instance)


class TestQuality:
    def test_beats_random_usually(self, scheduler):
        wins = 0
        for seed in range(6):
            dag = random_dag(50, ccr=5.0, seed=seed)
            inst = make_instance(dag, num_procs=4, seed=seed)
            clu = scheduler.schedule(inst).makespan
            rnd = RandomScheduler(seed=seed).schedule(inst).makespan
            wins += clu <= rnd
        assert wins >= 4

    def test_clustering_on_comm_heavy_trees(self, scheduler):
        # High-communication out-trees: DSC's merge criterion (join a
        # parent's cluster when it lowers EST) keeps hot edges local and
        # must beat serial execution.  Linear clustering extracts
        # root-to-leaf chains whose *heads* still pay the heavy cross-
        # cluster edge, so it only gets a loose corridor.
        dag = out_tree_dag(2, 4, cost_scale=2.0, data_scale=40.0)
        inst = homogeneous_instance(dag, num_procs=4, bandwidth=1.0)
        s = scheduler.schedule(inst)
        validate(s, inst)
        serial = inst.sequential_time
        if isinstance(scheduler, DSC):
            assert s.makespan <= serial + 1e-9
        else:
            assert s.makespan <= 5 * serial
