"""Tests for machine-aware ranking functions, anchored on the published
Topcuoglu (TPDS 2002) reference values."""

import pytest

from repro.exceptions import ConfigurationError
from repro.instance import homogeneous_instance
from repro.schedulers.ranking import (
    alap_times,
    critical_path_tasks,
    downward_ranks,
    est_times,
    machine_static_levels,
    upward_ranks,
)

#: Published upward ranks of the TPDS-2002 example (mean aggregation).
TOPCUOGLU_RANKS = {
    1: 108.000, 2: 77.000, 3: 80.000, 4: 80.000, 5: 69.000,
    6: 63.333, 7: 42.667, 8: 35.667, 9: 44.333, 10: 14.667,
}


class TestUpwardRanks:
    def test_published_values(self, topcuoglu_instance):
        ranks = upward_ranks(topcuoglu_instance)
        for t, expected in TOPCUOGLU_RANKS.items():
            assert ranks[t] == pytest.approx(expected, abs=5e-4), f"task {t}"

    def test_monotone_along_edges(self, topcuoglu_instance):
        ranks = upward_ranks(topcuoglu_instance)
        dag = topcuoglu_instance.dag
        for u, v in dag.edges():
            assert ranks[u] > ranks[v]

    def test_exit_rank_is_weight(self, topcuoglu_instance):
        ranks = upward_ranks(topcuoglu_instance)
        assert ranks[10] == pytest.approx(topcuoglu_instance.avg_exec_time(10))

    def test_aggregation_variants_differ(self, topcuoglu_instance):
        mean = upward_ranks(topcuoglu_instance, "mean")
        best = upward_ranks(topcuoglu_instance, "best")
        worst = upward_ranks(topcuoglu_instance, "worst")
        assert best[1] < mean[1] < worst[1]

    def test_variants_coincide_on_homogeneous(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=3)
        for agg in ("median", "best", "worst"):
            assert upward_ranks(inst, agg) == upward_ranks(inst, "mean")

    def test_unknown_aggregation(self, topcuoglu_instance):
        with pytest.raises(ConfigurationError):
            upward_ranks(topcuoglu_instance, "mode")  # type: ignore[arg-type]


class TestDownwardRanks:
    def test_entry_is_zero(self, topcuoglu_instance):
        assert downward_ranks(topcuoglu_instance)[1] == 0.0

    def test_known_value(self, topcuoglu_instance):
        down = downward_ranks(topcuoglu_instance)
        # task 2 via task 1: w(1)=13 + c(1,2)=18
        assert down[2] == pytest.approx(13.0 + 18.0)

    def test_monotone_along_edges(self, topcuoglu_instance):
        down = downward_ranks(topcuoglu_instance)
        for u, v in topcuoglu_instance.dag.edges():
            assert down[v] > down[u]


class TestCriticalPath:
    def test_topcuoglu_cp(self, topcuoglu_instance):
        # The published critical path is 1 -> 2 -> 9 -> 10.
        assert critical_path_tasks(topcuoglu_instance) == [1, 2, 9, 10]

    def test_cp_value_constant_along_path(self, topcuoglu_instance):
        up = upward_ranks(topcuoglu_instance)
        down = downward_ranks(topcuoglu_instance)
        cp = critical_path_tasks(topcuoglu_instance)
        values = {round(up[t] + down[t], 6) for t in cp}
        assert len(values) == 1

    def test_path_connected(self, topcuoglu_instance):
        cp = critical_path_tasks(topcuoglu_instance)
        dag = topcuoglu_instance.dag
        for u, v in zip(cp, cp[1:]):
            assert dag.has_edge(u, v)

    def test_starts_at_entry_ends_at_exit(self, topcuoglu_instance):
        cp = critical_path_tasks(topcuoglu_instance)
        dag = topcuoglu_instance.dag
        assert cp[0] in dag.entry_tasks()
        assert cp[-1] in dag.exit_tasks()


class TestAlapAndEst:
    def test_est_entry_zero(self, topcuoglu_instance):
        assert est_times(topcuoglu_instance)[1] == 0.0

    def test_slack_nonnegative(self, topcuoglu_instance):
        est = est_times(topcuoglu_instance)
        alap = alap_times(topcuoglu_instance)
        for t in topcuoglu_instance.dag.tasks():
            assert alap[t] >= est[t] - 1e-9

    def test_critical_path_zero_slack(self, topcuoglu_instance):
        est = est_times(topcuoglu_instance)
        alap = alap_times(topcuoglu_instance)
        for t in critical_path_tasks(topcuoglu_instance):
            assert alap[t] - est[t] == pytest.approx(0.0, abs=1e-9)

    def test_alap_horizon(self, topcuoglu_instance):
        alap = alap_times(topcuoglu_instance)
        up = upward_ranks(topcuoglu_instance)
        horizon = max(up.values())
        # Exit task ALAP + its weight == horizon.
        assert alap[10] + topcuoglu_instance.avg_exec_time(10) == pytest.approx(horizon)


class TestStaticLevels:
    def test_no_comm_terms(self, topcuoglu_instance):
        sl = machine_static_levels(topcuoglu_instance, agg="mean")
        up = upward_ranks(topcuoglu_instance)
        # Static level must be <= upward rank (comm dropped).
        for t in topcuoglu_instance.dag.tasks():
            assert sl[t] <= up[t] + 1e-9

    def test_exit_equals_weight(self, topcuoglu_instance):
        sl = machine_static_levels(topcuoglu_instance, agg="mean")
        assert sl[10] == pytest.approx(topcuoglu_instance.avg_exec_time(10))
