"""CLI smoke coverage: every subcommand's --help, --version, aliases.

``--help`` for each subcommand guards the parser wiring; the
import-check walks every ``_cmd_*`` handler's lazy imports so a renamed
module can't rot silently behind an untested subcommand; the console-
script test pins both ``repro-sched`` and the ``repro`` alias to
``repro.cli:main``.
"""

from __future__ import annotations

import ast
import importlib
import inspect
from pathlib import Path

import pytest

import repro.cli as cli
from repro._version import __version__


def _subcommands() -> list[str]:
    """Discover subcommand names from the real parser, not a hand list."""
    parser = cli.build_parser()
    for action in parser._subparsers._group_actions:
        return sorted(action.choices)
    raise AssertionError("no subparsers found")


def test_subcommand_list_is_current():
    names = _subcommands()
    # The serving subcommands of this PR must be wired in.
    assert "serve" in names and "submit" in names
    # And every _cmd_* handler must be reachable from some subparser.
    handlers = {n for n in dir(cli) if n.startswith("_cmd_")}
    parser = cli.build_parser()
    wired = set()
    for action in parser._subparsers._group_actions:
        for sub in action.choices.values():
            fn = sub.get_defaults("fn") if hasattr(sub, "get_defaults") else None
            fn = fn or sub._defaults.get("fn")
            wired.add(fn.__name__)
    assert handlers == wired


@pytest.mark.parametrize("name", _subcommands())
def test_every_subcommand_help(capsys, name):
    with pytest.raises(SystemExit) as exc:
        cli.main([name, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert name in out or "usage" in out.lower()


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main(["--version"])
    assert exc.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_no_command_is_an_error(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main([])
    assert exc.value.code != 0


@pytest.mark.parametrize("name", _subcommands())
def test_lazy_imports_resolve(name):
    """Import every module named in a handler's function-level imports.

    The `_cmd_*` bodies defer imports for startup speed, which means a
    module rename only surfaces when that subcommand runs.  Walking the
    AST and importing each target keeps them honest without executing
    the commands.
    """
    parser = cli.build_parser()
    for action in parser._subparsers._group_actions:
        handler = action.choices[name]._defaults["fn"]
    tree = ast.parse(inspect.getsource(handler).lstrip())
    modules = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            modules.add(node.module)
    assert modules or name in ("list",), f"handler for {name} has no imports?"
    for module in modules:
        importlib.import_module(module)


def test_console_script_aliases():
    """Both console scripts point at repro.cli:main."""
    text = (Path(__file__).resolve().parents[1] / "pyproject.toml").read_text()
    scripts = text.split("[project.scripts]", 1)[1].split("[", 1)[0]
    assert 'repro-sched = "repro.cli:main"' in scripts
    assert 'repro = "repro.cli:main"' in scripts


def test_python_dash_m_entry():
    """`python -m repro` routes to the same main()."""
    import repro.__main__ as entry

    assert entry.main is cli.main
