"""Compiled flat-array scheduling core for the metaheuristic search loop.

The GA/SA schedulers (:mod:`repro.schedulers.meta`) evaluate thousands of
candidate assignments, and each evaluation builds a full schedule: walk
the rank order, compute the data-ready time on the assigned processor,
insertion-search the processor's timeline, place the task.  The object
path does that through :class:`~repro.schedule.schedule.Schedule`,
frozen-dataclass placements and dict-based cost lookups — correct, but
allocation-heavy, and it caps search quality because the metaheuristics
are budgeted in *evaluations per second*.

This module lowers an :class:`~repro.instance.Instance` once into flat
arrays (:class:`CompiledInstance`, cached on ``Instance.kernel``):

* the decode order (decreasing mean upward rank, topological tie-break)
  as integer task indices,
* a predecessor CSR (``pred_ptr``/``pred_idx``/``pred_const``) whose
  per-edge entry is the pair-independent communication constant of the
  uniform/zero link models,
* the dense ETC matrix in canonical (task, machine-proc) order.

:meth:`CompiledInstance.decode_fast` then builds a whole schedule in
preallocated scratch buffers — plain floats and per-processor
start/end lists, no ``Schedule``/``Placement``/``Slot`` objects — and
:meth:`CompiledInstance.decode_batch` evaluates an entire GA population
per call.  The slot search is the *same* helper the object path's
:meth:`~repro.schedule.timeline.Timeline.find_slot` delegates to
(:func:`~repro.schedule.timeline.scan_slots`), and every arithmetic
operation replays the object path's float sequence exactly, so decoded
makespans are bit-identical to
:func:`repro.schedulers.meta.decoder.decode_assignment` (asserted over
the 56-instance differential corpus by
``tests/core/test_compiled_decode.py``).

Machines with per-link communication models have no pair-independent
edge constant; :func:`compile_instance` returns ``None`` there and
callers fall back to the object path.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import SchedulingError
from repro.obs import get_tracer
from repro.schedule.timeline import EPS as _TL_EPS
from repro.schedule.timeline import scan_slots

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instance import Instance
    from repro.kernels import InstanceKernel
    from repro.schedule.schedule import Schedule
    from repro.types import ProcId, TaskId

__all__ = [
    "CompiledInstance",
    "CompiledSchedule",
    "compile_instance",
    "executor_enabled",
    "note_fallback",
    "reset_schedule_counters",
    "schedule_counters",
    "use_executor",
]

_INF = float("inf")
_EPS = 1e-12  # placement tie tolerance (PlacementEngine/eft_placement)
_TOL = 1e-9  # refinement acceptance / child-deadline tolerance

# ---------------------------------------------------------------------------
# executor switch + counters
# ---------------------------------------------------------------------------
# The compiled schedule executors are plain-int counted (not tracer
# counted): the schedulers only route through the executor when tracing
# is *off* — traced runs keep the object path so the golden span shapes
# (sched.run/rank/place/insert) stay intact — so tracer counters would
# never fire.  The service surfaces these on ``/metrics``.
_EXECUTOR_ENABLED = True
_COUNTS = {
    "list_schedules": 0,
    "dls_schedules": 0,
    "improved_passes": 0,
    "batch_calls": 0,
    "online_schedules": 0,
    "fallbacks": 0,
}


def executor_enabled() -> bool:
    """True when schedulers may route through the compiled executor."""
    return _EXECUTOR_ENABLED


@contextmanager
def use_executor(enabled: bool) -> Iterator[None]:
    """Temporarily force the compiled schedule executor on or off.

    Used by the differential tests and ``benchmarks/bench_coldpath.py``
    to time the object path while the kernel layer stays on.
    """
    global _EXECUTOR_ENABLED
    previous = _EXECUTOR_ENABLED
    _EXECUTOR_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _EXECUTOR_ENABLED = previous


def schedule_counters() -> dict[str, int]:
    """Snapshot of the compiled-executor counters (process-wide)."""
    return dict(_COUNTS)


def reset_schedule_counters() -> None:
    """Zero the compiled-executor counters (tests/benchmarks)."""
    for k in _COUNTS:
        _COUNTS[k] = 0


def note_fallback() -> None:
    """Record one object-path fallback (per-link comm model etc.)."""
    _COUNTS["fallbacks"] += 1


class CompiledSchedule:
    """Flat result of one compiled schedule build.

    Parallel lists indexed by canonical task position; ``dups`` holds
    committed duplicate placements as ``(task_idx, proc_idx, start,
    duration)`` tuples.  ``duration`` entries are the *exact* duration
    argument the object path would pass to ``Schedule.add`` — replaying
    them through :meth:`CompiledInstance.materialize` reproduces the
    object path's recorded floats bit for bit.
    """

    __slots__ = ("makespan", "start", "darg", "proc", "dups")

    def __init__(
        self,
        makespan: float,
        start: list[float],
        darg: list[float],
        proc: list[int],
        dups: list[tuple[int, int, float, float]],
    ) -> None:
        self.makespan = makespan
        self.start = start
        self.darg = darg
        self.proc = proc
        self.dups = dups


class CompiledInstance:
    """Flat-array lowering of one instance plus a reusable decoder.

    All arrays are fixed at construction; the decode scratch buffers are
    reused across calls, so — like :class:`~repro.kernels.InstanceKernel`
    — a ``CompiledInstance`` must only be used from one thread at a time
    (scheduling is single-threaded per instance everywhere in the
    library).
    """

    def __init__(self, kernel: "InstanceKernel") -> None:
        if kernel.out_const is None:
            raise SchedulingError(
                "cannot compile an instance with a per-link communication model"
            )
        self.tasks: list["TaskId"] = kernel.tasks
        self.procs: list["ProcId"] = kernel.procs
        self.n = n = len(self.tasks)
        self.q = len(self.procs)
        ti = kernel.ti
        self._ti = ti
        self._pi = kernel.pi

        # Decode order: decreasing mean upward rank, exactly the order
        # rank_order() hands the metaheuristics (cached on the kernel).
        self.order = np.array(
            [ti[t] for t in kernel.rank_order("mean")], dtype=np.intp
        )
        self.order.flags.writeable = False
        self._order_list: list[int] = self.order.tolist()

        # Predecessor CSR over canonical task indices.  ``pred_const[e]``
        # is the uniform/zero-model edge constant — the exact float the
        # object path's ready_time adds for a cross-processor transfer.
        consts = kernel.out_const
        ptr = [0]
        idx: list[int] = []
        const: list[float] = []
        for t in self.tasks:
            for parent in kernel.pred[t]:
                idx.append(ti[parent])
                const.append(consts[parent][t])
            ptr.append(len(idx))
        self.pred_ptr = np.array(ptr, dtype=np.intp)
        self.pred_idx = np.array(idx, dtype=np.intp)
        self.pred_const = np.array(const, dtype=float)
        for arr in (self.pred_ptr, self.pred_idx, self.pred_const):
            arr.flags.writeable = False

        # Python-level mirrors for the hot loop: per-task (parent index,
        # edge constant) pairs, and the ETC matrix as nested lists.
        self._preds: list[list[tuple[int, float]]] = [
            list(zip(idx[ptr[i] : ptr[i + 1]], const[ptr[i] : ptr[i + 1]]))
            for i in range(n)
        ]
        self.etc = kernel.etc_arr  # shared read-only view
        self._etc_rows: list[list[float]] = self.etc.tolist()

        # Successor mirrors (the list executors and the improved pass
        # walk children for lookahead / deadline checks / ready sets):
        # per-task (child index, edge constant) pairs in successor-list
        # order, plus the same constants as per-task dicts for O(1)
        # (task, child) lookups.
        self._succs: list[list[tuple[int, float]]] = [
            [(ti[s], consts[t][s]) for s in kernel.succ[t]] for t in self.tasks
        ]
        self._succ_const: list[dict[int, float]] = [
            {ti[s]: consts[t][s] for s in kernel.succ[t]} for t in self.tasks
        ]
        # Topological position and display string per canonical index —
        # the exact tie-breakers the object path uses.
        self._pos: list[int] = [kernel.pos[t] for t in self.tasks]
        self._str: list[str] = [str(t) for t in self.tasks]

        # Decode scratch (reused; every read is preceded by a same-decode
        # write because the decode order is topological).
        self._end_of: list[float] = [0.0] * n
        self._start_of: list[float] = [0.0] * n
        self._proc_of: list[int] = [-1] * n
        self._proc_starts: list[list[float]] = [[] for _ in range(self.q)]
        self._proc_ends: list[list[float]] = [[] for _ in range(self.q)]

    # ------------------------------------------------------------------
    # genome plumbing
    # ------------------------------------------------------------------
    def genome_of(self, assignment: Mapping["TaskId", "ProcId"]) -> np.ndarray:
        """Lower a ``{task: proc}`` mapping to a decode-order genome."""
        pi = self._pi
        tasks = self.tasks
        try:
            return np.array(
                [pi[assignment[tasks[t]]] for t in self._order_list], dtype=np.int64
            )
        except KeyError as exc:
            raise SchedulingError(f"assignment is missing {exc.args[0]!r}") from None

    def assignment_of(self, genome: Sequence[int]) -> dict["TaskId", "ProcId"]:
        """Raise a decode-order genome back to a ``{task: proc}`` mapping."""
        tasks, procs = self.tasks, self.procs
        return {tasks[t]: procs[int(g)] for t, g in zip(self._order_list, genome)}

    def _as_genome_list(self, assignment) -> list[int]:
        if isinstance(assignment, Mapping):
            genome = self.genome_of(assignment).tolist()
        else:
            genome = [int(g) for g in assignment]
            if len(genome) != self.n:
                raise SchedulingError(
                    f"genome length {len(genome)} != {self.n} tasks"
                )
        q = self.q
        for g in genome:
            if not 0 <= g < q:
                raise SchedulingError(f"processor index {g} out of range [0, {q})")
        return genome

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _decode(self, genome: Sequence[int]) -> float:
        """Makespan of one decode-order genome (no validation, no copies).

        Replays ``decode_assignment`` float-for-float: per task, the
        ready time is the max over parents of ``end`` (same processor)
        or ``end + const`` (cross processor); the start comes from the
        shared insertion scan; the busy interval is inserted in
        start-sorted order with `bisect_left` ties — exactly like
        ``Timeline.add``.
        """
        preds = self._preds
        etc_rows = self._etc_rows
        end_of = self._end_of
        start_of = self._start_of
        proc_of = self._proc_of
        proc_starts = self._proc_starts
        proc_ends = self._proc_ends
        for lst in proc_starts:
            del lst[:]
        for lst in proc_ends:
            del lst[:]
        makespan = 0.0
        for k, t in enumerate(self._order_list):
            p = genome[k]
            duration = etc_rows[t][p]
            ready = 0.0
            for u, const in preds[t]:
                cand = end_of[u]
                if proc_of[u] != p:
                    cand += const
                if cand > ready:
                    ready = cand
            starts = proc_starts[p]
            ends = proc_ends[p]
            start = scan_slots(starts, ends, ready, duration)
            # The object path records ``start + ((start + duration) -
            # start)`` (Placement end minus start, re-added by
            # Schedule.add) — replay that double rounding so recorded
            # ends are bit-identical.
            end = start + duration
            end = start + (end - start)
            i = bisect_left(starts, start)
            starts.insert(i, start)
            ends.insert(i, end)
            start_of[t] = start
            end_of[t] = end
            proc_of[t] = p
            if end > makespan:
                makespan = end
        return makespan

    def decode_fast(
        self, assignment: Mapping["TaskId", "ProcId"] | Sequence[int]
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Decode one assignment into ``(makespan, starts, procs)``.

        ``assignment`` is either a ``{task: proc}`` mapping or a
        decode-order genome of processor indices.  ``starts``/``procs``
        are indexed by canonical task position (``self.tasks``); end
        times follow as ``starts + etc[task, proc]``.
        """
        genome = self._as_genome_list(assignment)
        makespan = self._decode(genome)
        starts = np.array(self._start_of, dtype=float)
        procs = np.array(self._proc_of, dtype=np.intp)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("compiled.decodes")
        return makespan, starts, procs

    def decode_span(self, genome: Sequence[int]) -> float:
        """Makespan of one decode-order genome (the SA inner loop)."""
        return self._decode(genome)

    def decode_batch(self, population: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
        """Makespans of a whole population, one row per genome.

        This is the GA fitness evaluation: one call per generation
        instead of one object-path schedule per chromosome.
        """
        rows = np.asarray(population)
        if rows.ndim != 2 or rows.shape[1] != self.n:
            raise SchedulingError(
                f"population must have shape (m, {self.n}), got {rows.shape}"
            )
        decode = self._decode
        tracer = get_tracer()
        if not tracer.enabled:
            return np.array([decode(genome) for genome in rows.tolist()], dtype=float)
        with tracer.span("compiled.decode_batch", genomes=len(rows), tasks=self.n):
            out = np.array([decode(genome) for genome in rows.tolist()], dtype=float)
        tracer.count("compiled.decodes", len(rows))
        return out

    # ------------------------------------------------------------------
    # compiled list-scheduling executor
    # ------------------------------------------------------------------
    def order_indices(self, order: Sequence["TaskId"]) -> list[int]:
        """Lower a task-id priority order to canonical indices."""
        ti = self._ti
        try:
            return [ti[t] for t in order]
        except KeyError as exc:
            raise SchedulingError(f"unknown task {exc.args[0]!r} in order") from None

    def schedule_list(
        self,
        order: Sequence[int],
        *,
        insertion: bool = True,
        policy: str = "eft",
        pinned: Sequence[int] | None = None,
    ) -> CompiledSchedule:
        """One static-priority list pass over canonical task indices.

        Replays the object path per task: batched data-ready times (max
        over parents of recorded ``end`` / ``end + const``), the shared
        ``scan_slots`` gap scan (or ``max(ready, end_time)`` without
        insertion), EFT (``end < best - 1e-12``) or EST (``start < best -
        1e-12``) processor ties, and ``Schedule.add``'s double rounding
        of the recorded end.  ``pinned[t] >= 0`` forces task ``t`` onto
        that processor index (CPOP's critical path) with no comparison,
        exactly like ``placement_on``.
        """
        if policy not in ("eft", "est"):
            raise SchedulingError(f"unknown placement policy {policy!r}")
        q = self.q
        preds = self._preds
        etc_rows = self._etc_rows
        n = self.n
        start_of = [0.0] * n
        end_of = [0.0] * n
        darg_of = [0.0] * n
        proc_of = [-1] * n
        tl_starts: list[list[float]] = [[] for _ in range(q)]
        tl_ends: list[list[float]] = [[] for _ in range(q)]
        tl_max = [0.0] * q
        # Gap-bound fast path: ``tl_gap[j]`` is an upper bound on the
        # widest idle gap of timeline ``j`` (between consecutive
        # nonzero-width slots, including the 0 -> first-slot gap) and
        # ``tl_nz[j]`` the end of its last nonzero-width slot.  When
        # ``duration - EPS > tl_gap[j]`` no gap check inside
        # ``scan_slots`` can succeed, so its result is exactly the
        # fallback ``max(ready, tl_nz[j])`` — the O(1) answer skips the
        # scan without changing a single float.
        tl_gap = [0.0] * q
        tl_nz = [0.0] * q
        eft = policy == "eft"
        makespan = 0.0
        qr = range(q)
        for t in order:
            row = etc_rows[t]
            pin = -1 if pinned is None else pinned[t]
            if pin >= 0:
                # Single-processor placement (no tie comparison).
                ready = 0.0
                for u, const in preds[t]:
                    cand = end_of[u]
                    if proc_of[u] != pin:
                        cand += const
                    if cand > ready:
                        ready = cand
                duration = row[pin]
                if not insertion:
                    m = tl_max[pin]
                    start = ready if ready > m else m
                elif duration - _TL_EPS > tl_gap[pin]:
                    e = tl_nz[pin]
                    start = ready if ready > e else e
                else:
                    start = scan_slots(tl_starts[pin], tl_ends[pin], ready, duration)
                best_j, best_start, best_end = pin, start, start + duration
            else:
                # Per-processor ready times: same fold as the batched
                # kernel (running max over parents, exact min/max).
                ready_vec = [0.0] * q
                for u, const in preds[t]:
                    eu = end_of[u]
                    pu = proc_of[u]
                    ec = eu + const
                    for j in qr:
                        a = eu if j == pu else ec
                        if a > ready_vec[j]:
                            ready_vec[j] = a
                best_j = -1
                best_start = 0.0
                best_end = 0.0
                for j in qr:
                    duration = row[j]
                    ready = ready_vec[j]
                    if best_j >= 0:
                        # Dominance prune: start >= ready, and float
                        # addition is monotone, so end >= ready +
                        # duration — a processor that already cannot
                        # beat the incumbent skips the slot search.
                        if eft:
                            if ready + duration >= best_end - _EPS:
                                continue
                        elif ready >= best_start - _EPS:
                            continue
                    if not insertion:
                        m = tl_max[j]
                        start = ready if ready > m else m
                    elif duration - _TL_EPS > tl_gap[j]:
                        e = tl_nz[j]
                        start = ready if ready > e else e
                    else:
                        start = scan_slots(tl_starts[j], tl_ends[j], ready, duration)
                    end = start + duration
                    if best_j < 0 or (
                        end < best_end - _EPS if eft else start < best_start - _EPS
                    ):
                        best_j = j
                        best_start = start
                        best_end = end
            # Schedule.add replay: duration argument is ``end - start``,
            # the recorded end is ``start + (end - start)``.
            darg = best_end - best_start
            rend = best_start + darg
            start_of[t] = best_start
            end_of[t] = rend
            darg_of[t] = darg
            proc_of[t] = best_j
            starts = tl_starts[best_j]
            i = bisect_left(starts, best_start)
            starts.insert(i, best_start)
            tl_ends[best_j].insert(i, rend)
            if rend - best_start > _TL_EPS:
                # Only nonzero-width slots participate in gap scans.  A
                # slot appended past the last nonzero end opens a new gap
                # (a mid-gap insert only shrinks existing gaps, so the
                # bound stays valid without an update).
                nz = tl_nz[best_j]
                if best_start > nz and best_start - nz > tl_gap[best_j]:
                    tl_gap[best_j] = best_start - nz
                if rend > nz:
                    tl_nz[best_j] = rend
            if rend > tl_max[best_j]:
                tl_max[best_j] = rend
            if rend > makespan:
                makespan = rend
        _COUNTS["list_schedules"] += 1
        return CompiledSchedule(makespan, start_of, darg_of, proc_of, [])

    def schedule_batch(
        self,
        orders: Sequence[Sequence[int]],
        *,
        insertion: bool = True,
        policy: str = "eft",
    ) -> list[CompiledSchedule]:
        """Run several priority orders over one lowering in one call.

        The cold-path analogue of :meth:`decode_batch`: the service's
        batching engine and the benchmarks amortise lowering + dispatch
        over every order of a coalesced batch.
        """
        out = [
            self.schedule_list(order, insertion=insertion, policy=policy)
            for order in orders
        ]
        _COUNTS["batch_calls"] += 1
        return out

    def schedule_onto(
        self,
        order: Sequence[int],
        busy_starts: Sequence[Sequence[float]],
        busy_ends: Sequence[Sequence[float]],
        *,
        release: float = 0.0,
        insertion: bool = True,
        policy: str = "eft",
        etc_scale: Sequence[float] | None = None,
    ) -> CompiledSchedule:
        """One list pass against *pre-occupied* processor timelines.

        The online multi-tenant simulator (:mod:`repro.sim.online`)
        schedules each arriving job onto a cluster whose processors
        already carry residual load: ``busy_starts``/``busy_ends`` seed
        each processor's timeline with the cluster's current busy
        intervals (sorted by start, non-overlapping), and every task's
        data-ready time is floored at ``release`` (the job's arrival
        time), so no placement can begin in the past.  ``etc_scale``
        optionally multiplies task ``t``'s durations by ``etc_scale[t]``
        — the runtime-ETC-noise hook.  With empty seeds, ``release=0``
        and no scale this replays :meth:`schedule_list` float for float.

        The lowering itself (CSR, ETC rows, rank order) is untouched —
        only the timeline seeds vary between arrivals, which is what
        makes the cached-lowering path cheap: one lowering per template,
        one dirty-suffix seed per arrival.
        """
        if policy not in ("eft", "est"):
            raise SchedulingError(f"unknown placement policy {policy!r}")
        q = self.q
        if len(busy_starts) != q or len(busy_ends) != q:
            raise SchedulingError(
                f"busy lists cover {len(busy_starts)} processors, machine has {q}"
            )
        preds = self._preds
        etc_rows = self._etc_rows
        n = self.n
        start_of = [0.0] * n
        end_of = [0.0] * n
        darg_of = [0.0] * n
        proc_of = [-1] * n
        tl_starts: list[list[float]] = [list(s) for s in busy_starts]
        tl_ends: list[list[float]] = [list(e) for e in busy_ends]
        tl_max = [0.0] * q
        tl_gap = [0.0] * q
        tl_nz = [0.0] * q
        # Rebuild the gap-bound invariants from the seeds, exactly like
        # _FlatState.tl_remove's one-sweep recompute.
        for j in range(q):
            gap = 0.0
            prev = 0.0
            m = 0.0
            for s_, e_ in zip(tl_starts[j], tl_ends[j]):
                if e_ > m:
                    m = e_
                if e_ - s_ > _TL_EPS:
                    g = s_ - prev
                    if g > gap:
                        gap = g
                    prev = e_
            tl_max[j] = m
            tl_gap[j] = gap
            tl_nz[j] = prev
        eft = policy == "eft"
        makespan = 0.0
        qr = range(q)
        for t in order:
            row = etc_rows[t]
            scale = 1.0 if etc_scale is None else etc_scale[t]
            ready_vec = [release] * q
            for u, const in preds[t]:
                eu = end_of[u]
                pu = proc_of[u]
                ec = eu + const
                for j in qr:
                    a = eu if j == pu else ec
                    if a > ready_vec[j]:
                        ready_vec[j] = a
            best_j = -1
            best_start = 0.0
            best_end = 0.0
            for j in qr:
                duration = row[j] if etc_scale is None else row[j] * scale
                ready = ready_vec[j]
                if best_j >= 0:
                    if eft:
                        if ready + duration >= best_end - _EPS:
                            continue
                    elif ready >= best_start - _EPS:
                        continue
                if not insertion:
                    m = tl_max[j]
                    start = ready if ready > m else m
                elif duration - _TL_EPS > tl_gap[j]:
                    e = tl_nz[j]
                    start = ready if ready > e else e
                else:
                    start = scan_slots(tl_starts[j], tl_ends[j], ready, duration)
                end = start + duration
                if best_j < 0 or (
                    end < best_end - _EPS if eft else start < best_start - _EPS
                ):
                    best_j = j
                    best_start = start
                    best_end = end
            darg = best_end - best_start
            rend = best_start + darg
            start_of[t] = best_start
            end_of[t] = rend
            darg_of[t] = darg
            proc_of[t] = best_j
            starts = tl_starts[best_j]
            i = bisect_left(starts, best_start)
            starts.insert(i, best_start)
            tl_ends[best_j].insert(i, rend)
            if rend - best_start > _TL_EPS:
                nz = tl_nz[best_j]
                if best_start > nz and best_start - nz > tl_gap[best_j]:
                    tl_gap[best_j] = best_start - nz
                if rend > nz:
                    tl_nz[best_j] = rend
            if rend > tl_max[best_j]:
                tl_max[best_j] = rend
            if rend > makespan:
                makespan = rend
        _COUNTS["online_schedules"] += 1
        return CompiledSchedule(makespan, start_of, darg_of, proc_of, [])

    def schedule_dls(
        self, sl: Sequence[float], wstar: Sequence[float]
    ) -> CompiledSchedule:
        """Compiled Dynamic Level Scheduling loop.

        Replays ``DLS.schedule``: per step the (ready task, processor)
        pair minimising ``(-dl, pos, j)`` wins, where ``dl = sl - start +
        (wstar - etc)``; placement appends at ``max(ready, end_time)``
        and records ``start + duration`` (single rounding — DLS passes
        the raw duration to ``Schedule.add``).  Per-task ready vectors
        are cached once all parents are placed, like the object path.
        """
        n = self.n
        q = self.q
        preds = self._preds
        succs = self._succs
        etc_rows = self._etc_rows
        pos = self._pos
        indeg = [len(preds[t]) for t in range(n)]
        ready_set = {t for t in range(n) if indeg[t] == 0}
        start_of = [0.0] * n
        end_of = [0.0] * n
        darg_of = [0.0] * n
        proc_of = [-1] * n
        tl_max = [0.0] * q
        ready_cache: dict[int, list[float]] = {}
        makespan = 0.0
        qr = range(q)
        while ready_set:
            best_key: tuple[float, int, int] | None = None
            best_task = -1
            best_j = -1
            best_start = 0.0
            for t in ready_set:
                vec = ready_cache.get(t)
                if vec is None:
                    vec = [0.0] * q
                    for u, const in preds[t]:
                        eu = end_of[u]
                        pu = proc_of[u]
                        ec = eu + const
                        for j in qr:
                            a = eu if j == pu else ec
                            if a > vec[j]:
                                vec[j] = a
                    ready_cache[t] = vec
                slt = sl[t]
                wst = wstar[t]
                row = etc_rows[t]
                pt = pos[t]
                for j in qr:
                    dr = vec[j]
                    m = tl_max[j]
                    start = dr if dr > m else m
                    delta = wst - row[j]
                    dl = slt - start + delta
                    key = (-dl, pt, j)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_task = t
                        best_j = j
                        best_start = start
            assert best_task >= 0
            t = best_task
            duration = etc_rows[t][best_j]
            rend = best_start + duration
            start_of[t] = best_start
            end_of[t] = rend
            darg_of[t] = duration
            proc_of[t] = best_j
            if rend > tl_max[best_j]:
                tl_max[best_j] = rend
            if rend > makespan:
                makespan = rend
            ready_set.discard(t)
            ready_cache.pop(t, None)
            for c, _const in succs[t]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready_set.add(c)
        _COUNTS["dls_schedules"] += 1
        return CompiledSchedule(makespan, start_of, darg_of, proc_of, [])

    def materialize(
        self, result: CompiledSchedule, machine, name: str
    ) -> "Schedule":
        """Raise a flat result back into a real :class:`Schedule`.

        Every placement goes through ``Schedule.add`` with the exact
        duration argument the object path would have passed, so the
        recorded ``ScheduledTask`` floats (including the double-rounded
        ends) are bit-identical.
        """
        from repro.schedule.schedule import Schedule

        schedule = Schedule(machine, name=name)
        tasks = self.tasks
        procs = self.procs
        start = result.start
        darg = result.darg
        proc = result.proc
        add = schedule.add
        for t in range(self.n):
            add(tasks[t], procs[proc[t]], start[t], darg[t], check=False)
        for dt, dj, ds, dd in result.dups:
            add(tasks[dt], procs[dj], ds, dd, duplicate=True, check=False)
        return schedule

    # ------------------------------------------------------------------
    # compiled improved-scheduler pass
    # ------------------------------------------------------------------
    def schedule_improved(
        self,
        order: Sequence[int],
        ranks: Sequence[float],
        *,
        lookahead: bool,
        duplication: bool,
        insertion: bool,
        refinement: bool,
        refinement_rounds: int,
        max_duplications_per_task: int = 3,
    ) -> CompiledSchedule:
        """One full improved-scheduler pass (engine + refinement).

        Replays ``PlacementEngine.place`` per task — critical-child
        lookahead, tentative duplicate planning with rollback, the
        strict ``(score, end, j)`` tuple key — and the refinement sweep
        (latest start first, child-deadline checks, ``1e-9`` acceptance)
        over flat state, reproducing the object pass float for float.
        """
        st = _FlatState(self.n, self.q)
        self._improved_place_pass(
            st,
            order,
            ranks,
            lookahead=lookahead,
            duplication=duplication,
            insertion=insertion,
            max_dups=max_duplications_per_task,
        )
        if refinement:
            self._refine(st, refinement_rounds)
        makespan = 0.0
        dups: list[tuple[int, int, float, float]] = []
        for t in range(self.n):
            e = st.pend[t]
            if e > makespan:
                makespan = e
            for dj, ds, de, dd in st.dups[t]:
                dups.append((t, dj, ds, dd))
                if de > makespan:
                    makespan = de
        _COUNTS["improved_passes"] += 1
        return CompiledSchedule(makespan, st.pstart, st.pdarg, st.pproc, dups)

    def _improved_place_pass(
        self,
        st: "_FlatState",
        order: Sequence[int],
        ranks: Sequence[float],
        *,
        lookahead: bool,
        duplication: bool,
        insertion: bool,
        max_dups: int,
    ) -> None:
        q = self.q
        qr = range(q)
        etc_rows = self._etc_rows
        succs = self._succs
        pos = self._pos
        placed = st.placed
        for t in order:
            row = etc_rows[t]
            child = -1
            if lookahead:
                child_key: tuple[float, int] | None = None
                for s, _const in succs[t]:
                    if placed[s]:
                        continue
                    k = (ranks[s], -pos[s])
                    if child_key is None or k > child_key:
                        child_key = k
                        child = s
            ready_vec = self._ready_vec(st, t)
            la_base = self._lookahead_base(st, t, child) if child >= 0 else None
            best_key: tuple[float, float, int] | None = None
            best_j = -1
            best_start = 0.0
            best_end = 0.0
            best_plans: list[tuple[int, int, float, float]] = []
            for j in qr:
                duration = row[j]
                start = st.find_slot(j, ready_vec[j], duration, insertion)
                plain_end = start + duration
                plans: list[tuple[int, int, float, float]] = []
                p_start = start
                p_end = plain_end
                if duplication:
                    plans = self._plan_duplicates(st, t, j, insertion, max_dups)
                    if plans:
                        ready2 = self._ready_on(st, t, j)
                        s2 = st.find_slot(j, ready2, duration, insertion)
                        e2 = s2 + duration
                        if e2 < plain_end - _EPS:
                            p_start = s2
                            p_end = e2
                        else:
                            self._rollback(st, plans)
                            plans = []
                if child >= 0:
                    # Tentative duplicates may themselves be parents of
                    # the lookahead child; the shared base is only valid
                    # for probes that applied no plans.
                    base = self._lookahead_base(st, t, child) if plans else la_base
                    score = self._lookahead(st, base, t, child, j, p_end)
                else:
                    score = p_end
                key = (score, p_end, j)
                if best_key is None or key < best_key:
                    best_key = key
                    best_j = j
                    best_start = p_start
                    best_end = p_end
                    best_plans = plans
                if plans:
                    self._rollback(st, plans)
            # Commit: winning duplicates re-applied in plan order, then
            # the primary (Schedule.add double rounding).
            for dt, dj, ds, dd in best_plans:
                st.dups[dt].append((dj, ds, ds + dd, dd))
                st.tl_add(dj, dt, ds, ds + dd)
            darg = best_end - best_start
            rend = best_start + darg
            st.pstart[t] = best_start
            st.pend[t] = rend
            st.pdarg[t] = darg
            st.pproc[t] = best_j
            placed[t] = True
            st.tl_add(best_j, t, best_start, rend)

    def _ready_vec(self, st: "_FlatState", t: int) -> list[float]:
        """Batched ready times (InstanceKernel.ready_times replay)."""
        q = self.q
        ready = [0.0] * q
        pend = st.pend
        pproc = st.pproc
        dups = st.dups
        for u, const in self._preds[t]:
            eu = pend[u]
            pu = pproc[u]
            ec = eu + const
            dlist = dups[u]
            if not dlist:
                for j in range(q):
                    a = eu if j == pu else ec
                    if a > ready[j]:
                        ready[j] = a
            else:
                for j in range(q):
                    a = eu if j == pu else ec
                    for dj, _ds, de, _dd in dlist:
                        c = de if dj == j else de + const
                        if c < a:
                            a = c
                    if a > ready[j]:
                        ready[j] = a
        return ready

    def _ready_on(self, st: "_FlatState", t: int, j: int) -> float:
        """Scalar ready time on one processor (ready_time replay)."""
        ready = 0.0
        pend = st.pend
        pproc = st.pproc
        dups = st.dups
        for u, const in self._preds[t]:
            eu = pend[u]
            arrival = eu if pproc[u] == j else eu + const
            for dj, _ds, de, _dd in dups[u]:
                cand = de if dj == j else de + const
                if cand < arrival:
                    arrival = cand
            if arrival > ready:
                ready = arrival
        return ready

    def _plan_duplicates(
        self, st: "_FlatState", t: int, j: int, insertion: bool, max_dups: int
    ) -> list[tuple[int, int, float, float]]:
        """PlacementEngine._plan_duplicates replay (tentatively applied)."""
        applied: list[tuple[int, int, float, float]] = []
        preds = self._preds[t]
        pos = self._pos
        etc_rows = self._etc_rows
        pend = st.pend
        pproc = st.pproc
        dups = st.dups
        for _ in range(max_dups):
            if not preds:
                break
            # Dominant parent: max arrival, ties to the earlier parent in
            # predecessor-list order via the strict-> fold (== max()).
            dom = -1
            dom_arr = 0.0
            dom_key: tuple[float, int] | None = None
            for u, const in preds:
                eu = pend[u]
                arrival = eu if pproc[u] == j else eu + const
                for dj, _ds, de, _dd in dups[u]:
                    cand = de if dj == j else de + const
                    if cand < arrival:
                        arrival = cand
                k = (arrival, -pos[u])
                if dom_key is None or k > dom_key:
                    dom_key = k
                    dom = u
                    dom_arr = arrival
            if dom_arr <= _EPS:
                break
            if pproc[dom] == j or any(dj == j for dj, _s, _e, _d in dups[dom]):
                break  # already local
            dup_ready = self._ready_on(st, dom, j)
            dd = etc_rows[dom][j]
            if dup_ready + dd >= dom_arr - _EPS:
                break  # ds >= dup_ready, so the acceptance test below
                # could never pass; skip the slot search.
            ds = st.find_slot(j, dup_ready, dd, insertion)
            if ds + dd >= dom_arr - _EPS:
                break
            de = ds + dd
            dups[dom].append((j, ds, de, dd))
            st.tl_add(j, dom, ds, de)
            applied.append((dom, j, ds, dd))
        return applied

    @staticmethod
    def _rollback(st: "_FlatState", plans: list[tuple[int, int, float, float]]) -> None:
        for dt, dj, _ds, _dd in reversed(plans):
            lst = st.dups[dt]
            for i, (cp, cs, _ce, _cd) in enumerate(lst):
                if cp == dj:
                    del lst[i]
                    st.tl_remove(dj, dt, cs)
                    break

    def _lookahead_base(self, st: "_FlatState", t: int, child: int) -> list[float]:
        """Per-processor arrival fold of ``child``'s *other* placed parents.

        This part of ``InstanceKernel.lookahead_score`` does not depend
        on where ``t`` is probed, so the placement pass computes it once
        per task and shares it across all processor probes.  All values
        are >= 0, so folding from 0.0 and taking the max against the
        probe-dependent terms later reproduces the original single fold
        exactly (max is order-independent).
        """
        q = self.q
        base = [0.0] * q
        placed = st.placed
        pend = st.pend
        pproc = st.pproc
        dups = st.dups
        for u, const in self._preds[child]:
            if u == t or not placed[u]:
                continue
            eu = pend[u]
            pu = pproc[u]
            ec = eu + const
            dlist = dups[u]
            for j in range(q):
                a = eu if j == pu else ec
                for dj, _ds, de, _dd in dlist:
                    c = de if dj == j else de + const
                    if c < a:
                        a = c
                if a > base[j]:
                    base[j] = a
        return base

    def _lookahead(
        self,
        st: "_FlatState",
        base: list[float],
        t: int,
        child: int,
        j_placed: int,
        placed_end: float,
    ) -> float:
        """InstanceKernel.lookahead_score replay over flat state."""
        q = self.q
        const_tc = self._succ_const[t][child]
        base_tc = placed_end + const_tc
        row = self._etc_rows[child]
        tl_max = st.tl_max
        best = _INF
        for j in range(q):
            r = placed_end if j == j_placed else base_tc
            b = base[j]
            if b > r:
                r = b
            avail = tl_max[j]
            if j == j_placed and placed_end > avail:
                avail = placed_end
            if avail > r:
                r = avail
            finish = r + row[j]
            if finish < best:
                best = finish
        return best

    def _refine(self, st: "_FlatState", max_rounds: int) -> None:
        """refine_schedule replay: latest start first, 1e-9 acceptance."""
        n = self.n
        q = self.q
        etc_rows = self._etc_rows
        strs = self._str
        pstart = st.pstart
        pend = st.pend
        pdarg = st.pdarg
        pproc = st.pproc
        dups = st.dups
        for _ in range(max_rounds):
            changed = False
            order = sorted(range(n), key=lambda t: (-pstart[t], strs[t]))
            for t in order:
                if dups[t]:
                    continue  # duplicated tasks are pinned
                old_start = pstart[t]
                old_end = pend[t]
                old_j = pproc[t]
                st.placed[t] = False
                st.tl_remove(old_j, t, old_start)
                ready_vec = self._ready_vec(st, t)
                best_j = -1
                best_start = 0.0
                best_end = 0.0
                for j in range(q):
                    duration = etc_rows[t][j]
                    # end >= ready + duration (monotone float add): a
                    # candidate that cannot beat the incumbent is
                    # skipped before the slot search.
                    if best_j >= 0 and ready_vec[j] + duration >= best_end - _EPS:
                        continue
                    start = st.find_slot(j, ready_vec[j], duration, True)
                    end = start + duration
                    if not self._children_deadline_ok(st, t, j, end):
                        continue
                    if best_j < 0 or end < best_end - _EPS:
                        best_j = j
                        best_start = start
                        best_end = end
                if best_j >= 0 and best_end < old_end - _TOL:
                    darg = best_end - best_start
                    rend = best_start + darg
                    pstart[t] = best_start
                    pend[t] = rend
                    pdarg[t] = darg
                    pproc[t] = best_j
                    st.tl_add(best_j, t, best_start, rend)
                    changed = True
                else:
                    # Restore replays Schedule.add too: the recorded end
                    # after re-adding can drift an ulp from the old one.
                    darg = old_end - old_start
                    rend = old_start + darg
                    pend[t] = rend
                    pdarg[t] = darg
                    st.tl_add(old_j, t, old_start, rend)
                st.placed[t] = True
            if not changed:
                break

    def _children_deadline_ok(
        self, st: "_FlatState", t: int, j_new: int, new_end: float
    ) -> bool:
        """_children_deadline_ok replay (no surviving duplicates of t)."""
        placed = st.placed
        pstart = st.pstart
        pproc = st.pproc
        dups = st.dups
        for c, const in self._succs[t]:
            if not placed[c]:
                continue
            arrival = new_end if j_new == pproc[c] else new_end + const
            if arrival > pstart[c] + _TOL:
                return False
            for dj, ds, _de, _dd in dups[c]:
                arrival = new_end if j_new == dj else new_end + const
                if arrival > ds + _TOL:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledInstance(tasks={self.n}, procs={self.q}, "
            f"edges={len(self.pred_idx)})"
        )


class _FlatState:
    """Mutable flat mirror of Schedule + per-processor Timelines.

    Used by the compiled improved pass, which (unlike the static list
    executors) removes and re-adds placements: timelines carry task ids
    so removal can replay ``Timeline.remove``'s first-match semantics,
    and ``tl_max`` tracks each processor's ``end_time`` including the
    exact ``max()`` recompute on removal.
    """

    __slots__ = (
        "tl_starts",
        "tl_ends",
        "tl_tasks",
        "tl_max",
        "tl_gap",
        "tl_nz",
        "pstart",
        "pend",
        "pdarg",
        "pproc",
        "placed",
        "dups",
    )

    def __init__(self, n: int, q: int) -> None:
        self.tl_starts: list[list[float]] = [[] for _ in range(q)]
        self.tl_ends: list[list[float]] = [[] for _ in range(q)]
        self.tl_tasks: list[list[int]] = [[] for _ in range(q)]
        self.tl_max = [0.0] * q
        #: upper bound on the widest idle gap per processor (see
        #: ``schedule_list``'s gap-bound fast path); kept exact again on
        #: every removal's recompute.
        self.tl_gap = [0.0] * q
        #: end of the last nonzero-width slot per processor — the exact
        #: ``scan_slots`` fallback value.
        self.tl_nz = [0.0] * q
        self.pstart = [0.0] * n
        self.pend = [0.0] * n
        self.pdarg = [0.0] * n
        self.pproc = [-1] * n
        self.placed = [False] * n
        #: per-task committed/tentative duplicates: (proc, start, end, duration)
        self.dups: list[list[tuple[int, float, float, float]]] = [[] for _ in range(n)]

    def tl_add(self, j: int, t: int, start: float, end: float) -> None:
        starts = self.tl_starts[j]
        i = bisect_left(starts, start)
        starts.insert(i, start)
        self.tl_ends[j].insert(i, end)
        self.tl_tasks[j].insert(i, t)
        if end > self.tl_max[j]:
            self.tl_max[j] = end
        if end - start > _TL_EPS:
            nz = self.tl_nz[j]
            if start > nz and start - nz > self.tl_gap[j]:
                self.tl_gap[j] = start - nz
            if end > nz:
                self.tl_nz[j] = end

    def tl_remove(self, j: int, t: int, start: float) -> None:
        starts = self.tl_starts[j]
        tasks = self.tl_tasks[j]
        ends = self.tl_ends[j]
        for i in range(len(starts)):
            if tasks[i] == t and abs(starts[i] - start) <= 1e-9:
                del starts[i]
                del ends[i]
                del tasks[i]
                break
        # Removal merges gaps; rebuild end_time, the gap bound, and the
        # last nonzero end exactly in one sweep.
        gap = 0.0
        prev = 0.0
        m = 0.0
        for s_, e_ in zip(starts, ends):
            if e_ > m:
                m = e_
            if e_ - s_ > _TL_EPS:
                g = s_ - prev
                if g > gap:
                    gap = g
                prev = e_
        self.tl_max[j] = m
        self.tl_gap[j] = gap
        self.tl_nz[j] = prev

    def find_slot(self, j: int, ready: float, duration: float, insertion: bool) -> float:
        if not insertion:
            m = self.tl_max[j]
            return ready if ready > m else m
        if duration - _TL_EPS > self.tl_gap[j]:
            # No gap can fit: scan_slots' fallback, without the scan.
            e = self.tl_nz[j]
            return ready if ready > e else e
        return scan_slots(self.tl_starts[j], self.tl_ends[j], ready, duration)


def compile_instance(instance: "Instance") -> CompiledInstance | None:
    """The cached compiled form of ``instance``, or ``None``.

    Delegates to ``instance.kernel.compiled()`` — the lowering happens
    once per instance and is shared by every subsequent caller (the
    metaheuristics, the service workers, the benchmarks).  ``None`` when
    the machine's link model has no per-pair constant; callers fall back
    to the object decode path.
    """
    return instance.kernel.compiled()
