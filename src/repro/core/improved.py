"""The headline improved scheduler (the paper's contribution).

One full list-scheduling pass is run per configured rank variant, each
pass using the lookahead/duplication placement engine, followed by the
refinement post-pass; the best resulting schedule wins.  With
:meth:`ImprovedConfig.baseline_heft` the algorithm reduces exactly to
HEFT, which the test suite asserts — the improvements are strict
supersets, not a different algorithm.
"""

from __future__ import annotations

from repro.core.config import ImprovedConfig
from repro.core.placement import PlacementEngine
from repro.core.refinement import refine_schedule
from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.obs import get_tracer
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, compiled_for
from repro.schedulers.ranking import RankAggregation, upward_ranks
from repro.types import TaskId


class ImprovedScheduler(Scheduler):
    """Improved static list scheduling for heterogeneous and homogeneous
    systems (reconstruction of the ICPP-2007 contribution).

    Parameters
    ----------
    config:
        Feature switches; defaults to everything enabled.
    """

    def __init__(self, config: ImprovedConfig | None = None) -> None:
        self.config = config or ImprovedConfig()
        self.name = "IMP" if config is None else self.config.label()
        self._engine = PlacementEngine(
            lookahead=self.config.lookahead,
            duplication=self.config.duplication,
            insertion=self.config.insertion,
        )
        self._plain_engine = PlacementEngine(
            lookahead=False, duplication=False, insertion=self.config.insertion
        )

    def _one_pass(
        self, instance: Instance, agg: RankAggregation, engine: PlacementEngine
    ) -> Schedule:
        tracer = get_tracer()
        with tracer.span("sched.rank", alg=self.name, agg=agg):
            ranks = upward_ranks(instance, agg)
            if kernels_enabled():
                pos = instance.kernel.pos
            else:
                pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
            order: list[TaskId] = sorted(
                instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t])
            )
        schedule = Schedule(instance.machine, name=f"{self.name}({agg}):{instance.name}")
        with tracer.span("sched.place", alg=self.name, agg=agg):
            if tracer.enabled:
                for task in order:
                    with tracer.span("sched.insert", task=str(task)):
                        engine.place(schedule, instance, task, ranks)
            else:
                for task in order:
                    engine.place(schedule, instance, task, ranks)
        if self.config.refinement:
            with tracer.span("imp.refine", agg=agg):
                refine_schedule(
                    schedule, instance, max_rounds=self.config.refinement_rounds
                )
        return schedule

    def _schedule_compiled(self, instance: Instance, ci, variants) -> Schedule:
        """All passes through the compiled executor; materialize the winner.

        Replays the object loop's pass sequence (per aggregation: the
        primary engine, then — when lookahead/duplication are on — the
        plain-EFT engine) and its ``1e-12`` best-makespan rule, but only
        the winning pass is raised back into a real :class:`Schedule`.
        """
        cfg = self.config
        specs = [(cfg.lookahead, cfg.duplication)]
        if cfg.lookahead or cfg.duplication:
            specs.append((False, False))
        pos = instance.kernel.pos
        best = None
        best_name = ""
        for agg in variants:
            ranks = upward_ranks(instance, agg)
            order = ci.order_indices(
                sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))
            )
            rank_vec = [ranks[t] for t in ci.tasks]
            for la, dup in specs:
                candidate = ci.schedule_improved(
                    order,
                    rank_vec,
                    lookahead=la,
                    duplication=dup,
                    insertion=cfg.insertion,
                    refinement=cfg.refinement,
                    refinement_rounds=cfg.refinement_rounds,
                )
                if best is None or candidate.makespan < best.makespan - 1e-12:
                    best = candidate
                    best_name = f"{self.name}({agg}):{instance.name}"
        assert best is not None
        return ci.materialize(best, instance.machine, best_name)

    def schedule(self, instance: Instance) -> Schedule:
        variants = self.config.rank_variants
        if instance.is_homogeneous() and len(variants) > 1:
            # All aggregations coincide on a homogeneous ETC matrix; one
            # pass suffices (this is the "and homogeneous systems" path).
            variants = variants[:1]
        ci = compiled_for(instance)
        if ci is not None:
            return self._schedule_compiled(instance, ci, variants)
        engines = [self._engine]
        if self.config.lookahead or self.config.duplication:
            # Always also evaluate the plain-EFT pass: the improvements
            # are then a strict superset of HEFT's search, giving the
            # never-worse-than-HEFT guarantee the tests assert.
            engines.append(self._plain_engine)
        tracer = get_tracer()
        best: Schedule | None = None
        with tracer.span("sched.run", alg=self.name, tasks=instance.num_tasks) as run:
            for agg in variants:
                for engine in engines:
                    kind = "plain" if engine is self._plain_engine else "primary"
                    with tracer.span("imp.pass", agg=agg, engine=kind):
                        candidate = self._one_pass(instance, agg, engine)
                    if len(candidate) != instance.num_tasks:
                        raise SchedulingError(
                            f"{self.name} pass {agg} scheduled "
                            f"{len(candidate)}/{instance.num_tasks} tasks"
                        )
                    if tracer.enabled:
                        tracer.count("imp.passes")
                    if best is None or candidate.makespan < best.makespan - 1e-12:
                        best = candidate
            assert best is not None
            if tracer.enabled:
                run.set(makespan=best.makespan)
        return best
