"""Hot-path performance regression harness.

Times the E1-style replication sweep four ways — legacy scalar kernels
(serial), vectorized kernels (serial), and the parallel runner at 2 and
4 workers — verifies all four produce *identical* per-replication
results, microbenchmarks the rank and EFT kernels against their scalar
references, and writes everything to ``BENCH_hotpath.json`` at the repo
root.

Run directly to regenerate the JSON:

    PYTHONPATH=src python benchmarks/bench_regression.py

The pytest wrapper re-runs the sweep comparison with a soft threshold so
a silent performance regression (or a broken equivalence) fails CI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench import workloads as W
from repro.bench.runner import run_sweep
from repro.kernels import use_kernels
from repro.schedulers.base import eft_placement
from repro.schedulers.ranking import upward_ranks, upward_ranks_scalar
from repro.schedulers.registry import get_scheduler
from repro.schedule.schedule import Schedule

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_hotpath.json"

# E1-style sweep: the paper's compared set over random DAG sizes.  Sized
# so process-pool startup (~0.1 s) amortizes on small machines while the
# whole harness stays under a couple of minutes.
SWEEP = dict(
    scheduler_names=W.COMPARED,
    x_name="num_tasks",
    x_values=[40, 80, 120],
    instance_factory=W.SweepFactory(kind="random", param="num_tasks"),
    reps=6,
    metric="slr",
    seed=101,
    check=False,
)


def _time_sweep(workers: int, kernels: bool) -> tuple[float, object]:
    with use_kernels(kernels):
        t0 = time.perf_counter()
        res = run_sweep(workers=workers, **SWEEP)
        elapsed = time.perf_counter() - t0
    return elapsed, res


def _bench_ranks(trials: int = 20) -> dict[str, float]:
    inst = W.random_instance(np.random.default_rng(5), num_tasks=120, num_procs=8)
    t0 = time.perf_counter()
    for _ in range(trials):
        upward_ranks_scalar(inst)
    scalar = (time.perf_counter() - t0) / trials
    inst.kernel.upward("mean")  # warm the level structure once
    t0 = time.perf_counter()
    for _ in range(trials):
        # fresh instance-equivalent call path minus the one-time build
        dict(inst.kernel.upward("mean"))
    vectorized = (time.perf_counter() - t0) / trials

    # Cold path: one first call per FRESH instance, both legs, so the
    # comparison is first-call vs first-call (the vectorized leg pays
    # the kernel's adjacency memo, the scalar leg pays the uncached
    # per-edge lookups).  Instances are pre-generated OUTSIDE the timed
    # region — the old harness generated them inside the loop, so the
    # "cold" number mostly measured workload generation.
    def fresh() -> list:
        return [
            W.random_instance(np.random.default_rng(5), num_tasks=120, num_procs=8)
            for _ in range(trials)
        ]

    cold_insts = fresh()
    t0 = time.perf_counter()
    for cold in cold_insts:
        upward_ranks_scalar(cold)
    scalar_cold = (time.perf_counter() - t0) / trials
    cold_insts = fresh()
    with use_kernels(True):
        t0 = time.perf_counter()
        for cold in cold_insts:
            upward_ranks(cold)
        end_to_end = (time.perf_counter() - t0) / trials
    return {
        "scalar_s": scalar,
        "scalar_cold_s": scalar_cold,
        "vectorized_cached_s": vectorized,
        "vectorized_cold_s": end_to_end,
        "speedup_cached": scalar / vectorized if vectorized > 0 else float("inf"),
        "speedup_cold": scalar_cold / end_to_end if end_to_end > 0 else float("inf"),
    }


def _bench_eft(trials: int = 5) -> dict[str, float]:
    inst = W.random_instance(np.random.default_rng(9), num_tasks=120, num_procs=8)
    heft = get_scheduler("HEFT")
    order = heft.priority_order(inst)

    def run(kernels: bool) -> float:
        with use_kernels(kernels):
            t0 = time.perf_counter()
            for _ in range(trials):
                schedule = Schedule(inst.machine)
                for task in order:
                    p = eft_placement(schedule, inst, task)
                    schedule.add(task, p.proc, p.start, p.end - p.start)
            return (time.perf_counter() - t0) / trials

    scalar = run(False)
    batched = run(True)
    return {
        "scalar_s": scalar,
        "batched_s": batched,
        "speedup": scalar / batched if batched > 0 else float("inf"),
    }


def run_regression() -> dict:
    legacy_s, legacy = _time_sweep(workers=1, kernels=False)
    fast_s, fast = _time_sweep(workers=1, kernels=True)
    par2_s, par2 = _time_sweep(workers=2, kernels=True)
    par4_s, par4 = _time_sweep(workers=4, kernels=True)

    identical = all(r.raw == legacy.raw and r.series == legacy.series for r in (fast, par2, par4))

    return {
        "sweep": {
            "config": {k: str(v) if k == "instance_factory" else v for k, v in SWEEP.items()},
            "legacy_serial_s": legacy_s,
            "optimized_serial_s": fast_s,
            "parallel2_s": par2_s,
            "parallel4_s": par4_s,
            "speedup_serial": legacy_s / fast_s,
            "speedup_parallel4_vs_legacy": legacy_s / par4_s,
            "results_identical_across_modes": identical,
        },
        "ranks": _bench_ranks(),
        "eft": _bench_eft(),
    }


def test_hotpath_regression():
    """Equivalence is a hard gate; speed a soft one (CI boxes vary)."""
    report = run_regression()
    sweep = report["sweep"]
    assert sweep["results_identical_across_modes"], "parallel/vectorized results diverged"
    best = min(sweep["optimized_serial_s"], sweep["parallel4_s"])
    assert sweep["legacy_serial_s"] / best >= 1.5, (
        f"hot path slower than expected: {sweep}"
    )
    assert report["ranks"]["speedup_cached"] > 1.0
    # First-call (cold) ranks must not regress below the scalar path:
    # small instances take the scalar recurrence over memoized adjacency
    # instead of paying the level build.
    assert report["ranks"]["speedup_cold"] > 1.0
    assert report["eft"]["speedup"] > 1.0


def main() -> None:
    report = run_regression()
    OUT.write_text(json.dumps(report, indent=2) + "\n")
    sweep = report["sweep"]
    print(f"legacy serial     : {sweep['legacy_serial_s']:.3f}s")
    print(f"optimized serial  : {sweep['optimized_serial_s']:.3f}s "
          f"({sweep['speedup_serial']:.2f}x)")
    print(f"parallel x2       : {sweep['parallel2_s']:.3f}s")
    print(f"parallel x4       : {sweep['parallel4_s']:.3f}s "
          f"({sweep['speedup_parallel4_vs_legacy']:.2f}x vs legacy)")
    print(f"identical results : {sweep['results_identical_across_modes']}")
    print(f"rank kernel       : {report['ranks']['speedup_cached']:.1f}x")
    print(f"eft batching      : {report['eft']['speedup']:.2f}x")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
