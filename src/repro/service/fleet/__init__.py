"""Horizontal scale-out for the scheduling service.

One :class:`FleetRouter` front door consistent-hashes every request's
instance fingerprint across N backend ``repro serve`` daemons
(:class:`~repro.service.fleet.ring.HashRing`), so each fingerprint has
exactly one cache owner and a warm hit is warm fleet-wide.  A
:class:`FleetManager` spawns and supervises the daemons — per-shard
persistent cache segments, health-check quarantine, budgeted respawn —
while the router retries transport failures on the key's next ring
owner, which is exactly where the key re-homes when the dead shard
leaves the ring.

Programmatic quickstart::

    manager = FleetManager(shards=4, cache_dir="/var/cache/repro")
    await manager.start()
    client = ServiceClient.at(manager.endpoint)   # unchanged client
    ...
    await manager.stop()

CLI: ``repro fleet --shards 4 --cache-dir /var/cache/repro``.
"""

from repro.service.fleet.manager import FleetManager, FleetSpawnError, ShardProcess
from repro.service.fleet.ring import HashRing
from repro.service.fleet.router import FleetRouter, FleetStats, Shard

__all__ = [
    "FleetManager",
    "FleetRouter",
    "FleetSpawnError",
    "FleetStats",
    "HashRing",
    "Shard",
    "ShardProcess",
]
