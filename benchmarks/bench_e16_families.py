"""E16 (extension) — constructive vs clustering vs search families.

Expected shape: constructive heuristics (HEFT/IMP) dominate the
quality-per-millisecond frontier; bounded-processor clustering (DSC/LC)
is fast but loses quality once clusters fold onto few processors; the
metaheuristics (SA/GA) match or slightly beat HEFT at 1-2 orders of
magnitude more scheduling time (they are seeded with HEFT, so they can
never lose to it).
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e16, e16_data
from repro.schedulers.registry import get_scheduler


def test_e16_shape(quick):
    data = e16_data(quick)
    print("\n" + e16(quick))
    # Search never loses to HEFT (seeded + elitist).
    assert data["SA"][0] <= data["HEFT"][0] + 1e-9
    assert data["GA"][0] <= data["HEFT"][0] + 1e-9
    # But pays far more scheduling time.
    assert data["SA"][1] > 10 * data["HEFT"][1]
    assert data["GA"][1] > 10 * data["HEFT"][1]
    # The contribution beats both clustering schedulers on quality.
    assert data["IMP"][0] < data["DSC"][0]
    assert data["IMP"][0] < data["LC"][0]


def test_e16_benchmark_dsc(benchmark):
    rng = np.random.default_rng(216)
    inst = W.random_instance(rng, num_tasks=60, num_procs=6)
    result = benchmark(get_scheduler("DSC").schedule, inst)
    assert result.makespan > 0


def test_e16_benchmark_sa(benchmark):
    rng = np.random.default_rng(216)
    inst = W.random_instance(rng, num_tasks=60, num_procs=6)
    result = benchmark.pedantic(
        get_scheduler("SA").schedule, args=(inst,), rounds=3, iterations=1
    )
    assert result.makespan > 0


def test_e16_benchmark_ga(benchmark):
    rng = np.random.default_rng(216)
    inst = W.random_instance(rng, num_tasks=60, num_procs=6)
    result = benchmark.pedantic(
        get_scheduler("GA").schedule, args=(inst,), rounds=3, iterations=1
    )
    assert result.makespan > 0
