"""Tests for the runtime-noise models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.noise import MultiplicativeNoise, NoNoise, PerProcessorDrift


class TestNoNoise:
    def test_identity(self):
        n = NoNoise()
        assert n.duration("t", 0, 7.5) == 7.5
        assert n.comm_factor() == 1.0


class TestMultiplicativeNoise:
    def test_zero_cv_identity(self):
        n = MultiplicativeNoise(0.0, seed=1)
        assert n.duration("t", 0, 5.0) == 5.0

    def test_consistent_within_run(self):
        n = MultiplicativeNoise(0.4, seed=2)
        a = n.duration("t", 0, 5.0)
        b = n.duration("t", 0, 5.0)
        assert a == b

    def test_distinct_pairs_distinct_factors(self):
        n = MultiplicativeNoise(0.4, seed=3)
        assert n.duration("t", 0, 5.0) != n.duration("t", 1, 5.0)

    def test_deterministic_per_seed(self):
        a = MultiplicativeNoise(0.4, seed=4).duration("t", 0, 5.0)
        b = MultiplicativeNoise(0.4, seed=4).duration("t", 0, 5.0)
        assert a == b

    def test_mean_preserving(self):
        n = MultiplicativeNoise(0.3, seed=5)
        samples = [n.duration(i, 0, 1.0) for i in range(4000)]
        assert float(np.mean(samples)) == pytest.approx(1.0, abs=0.03)

    def test_cv_roughly_matches(self):
        n = MultiplicativeNoise(0.5, seed=6)
        samples = np.array([n.duration(i, 0, 1.0) for i in range(6000)])
        assert samples.std() / samples.mean() == pytest.approx(0.5, abs=0.08)

    def test_positive_always(self):
        n = MultiplicativeNoise(1.0, seed=7)
        assert all(n.duration(i, 0, 1.0) > 0 for i in range(100))

    def test_negative_cv_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiplicativeNoise(-0.1)

    def test_comm_factor_default_one(self):
        assert MultiplicativeNoise(0.3, seed=8).comm_factor() == 1.0

    def test_comm_cv(self):
        n = MultiplicativeNoise(0.3, seed=9, comm_cv=0.5)
        assert n.comm_factor() > 0
        assert n.comm_factor() == n.comm_factor()  # stable within run

    def test_negative_comm_cv_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiplicativeNoise(0.3, comm_cv=-1.0)


class TestPerProcessorDrift:
    def test_per_proc_constant(self):
        n = PerProcessorDrift(0.3, seed=1)
        assert n.duration("a", 0, 10.0) / 10.0 == n.duration("b", 0, 4.0) / 4.0

    def test_within_bounds(self):
        n = PerProcessorDrift(0.3, seed=2)
        for p in range(20):
            f = n.duration("t", p, 1.0)
            assert 0.7 - 1e-9 <= f <= 1.3 + 1e-9

    def test_zero_drift_identity(self):
        n = PerProcessorDrift(0.0, seed=3)
        assert n.duration("t", 0, 6.0) == 6.0

    def test_invalid_drift(self):
        with pytest.raises(ConfigurationError):
            PerProcessorDrift(1.0)
        with pytest.raises(ConfigurationError):
            PerProcessorDrift(-0.1)
