"""Task-graph model: tasks, weighted DAGs, analysis and file I/O."""

from repro.dag.task import Task
from repro.dag.graph import TaskDAG
from repro.dag.analysis import (
    bottom_levels,
    critical_path,
    critical_path_length,
    graph_levels,
    parallelism_profile,
    static_levels,
    top_levels,
)

__all__ = [
    "Task",
    "TaskDAG",
    "bottom_levels",
    "critical_path",
    "critical_path_length",
    "graph_levels",
    "parallelism_profile",
    "static_levels",
    "top_levels",
]
