"""Metaheuristic schedulers (search-based comparison points).

Static-scheduling papers of the era regularly contrast constructive
heuristics against search: far more scheduling time for somewhat better
makespans.  Two classic searchers over the *assignment* space are
provided, both decoding candidate assignments through the same
rank-ordered insertion placement used everywhere else:

* :class:`SimulatedAnnealingScheduler`
* :class:`GeneticScheduler`
"""

from repro.schedulers.meta.decoder import decode_assignment
from repro.schedulers.meta.annealing import SimulatedAnnealingScheduler
from repro.schedulers.meta.genetic import GeneticScheduler

__all__ = [
    "decode_assignment",
    "SimulatedAnnealingScheduler",
    "GeneticScheduler",
]
