"""Property tests: the compiled executor is indistinguishable from the
object path on arbitrary instances, and schedules are stable across
interpreter restarts (hash randomization must not leak into results).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiled import use_executor
from repro.core import ImprovedConfig, ImprovedScheduler
from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.kernels import use_kernels
from repro.schedule.validation import violations
from repro.schedulers.registry import get_scheduler
from repro.service.protocol import schedule_payload

instance_params = st.tuples(
    st.integers(min_value=1, max_value=30),      # tasks
    st.integers(min_value=1, max_value=6),       # procs
    st.floats(min_value=0.0, max_value=8.0),     # ccr
    st.floats(min_value=0.0, max_value=1.5),     # heterogeneity
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build(params):
    n, q, ccr, beta, seed = params
    dag = random_dag(n, ccr=ccr, seed=seed)
    return make_instance(dag, num_procs=q, heterogeneity=beta, seed=seed)


def _payload(schedule, instance, alg) -> str:
    return json.dumps(schedule_payload(schedule, instance, alg), sort_keys=True)


@given(instance_params, st.sampled_from(["HEFT", "CPOP", "HCPT", "PETS",
                                         "DLS", "HLFET", "MCP", "IMP"]))
@settings(max_examples=80, deadline=None)
def test_compiled_equals_object_path(params, name):
    instance = build(params)
    scheduler = get_scheduler(name)
    fast = scheduler.schedule(instance)
    with use_executor(False):
        ref = scheduler.schedule(instance)
    assert violations(fast, instance) == []
    assert _payload(fast, instance, name) == _payload(ref, instance, name)


@given(
    instance_params,
    st.booleans(),  # lookahead
    st.booleans(),  # duplication
    st.booleans(),  # insertion
    st.booleans(),  # refinement
)
@settings(max_examples=40, deadline=None)
def test_improved_config_space_compiled_equals_object(params, la, dup, ins, ref_):
    """Every corner of the IMP feature space stays bit-identical,
    including the duplication passes the compiled executor replays
    through tentative plan/undo."""
    instance = build(params)
    cfg = ImprovedConfig(lookahead=la, duplication=dup,
                         insertion=ins, refinement=ref_)
    fast = ImprovedScheduler(cfg).schedule(instance)
    with use_executor(False):
        ref = ImprovedScheduler(cfg).schedule(instance)
    assert violations(fast, instance) == []
    assert _payload(fast, instance, "IMP") == _payload(ref, instance, "IMP")


@given(instance_params)
@settings(max_examples=30, deadline=None)
def test_tds_unaffected_by_executor_switch(params):
    """TDS never routes through the compiled executor (duplication-tree
    policy, not a list scheduler); the switch must be a no-op for it and
    the kernels-off path must agree."""
    instance = build(params)
    a = get_scheduler("TDS").schedule(instance)
    with use_executor(False):
        b = get_scheduler("TDS").schedule(instance)
    with use_kernels(False):
        c = get_scheduler("TDS").schedule(instance)
    assert _payload(a, instance, "TDS") == _payload(b, instance, "TDS")
    assert _payload(a, instance, "TDS") == _payload(c, instance, "TDS")


_RESTART_SNIPPET = """
import json, sys
from repro.bench import workloads as W
from repro.utils.rng import as_generator
from repro.schedulers.registry import get_scheduler
from repro.service.protocol import schedule_payload

out = []
for seed in (11, 12):
    inst = W.random_instance(as_generator(seed), num_tasks=40, num_procs=4)
    for alg in ("HEFT", "IMP"):
        s = get_scheduler(alg).schedule(inst)
        out.append(schedule_payload(s, inst, alg))
sys.stdout.write(json.dumps(out, sort_keys=True))
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _RESTART_SNIPPET],
        capture_output=True, text=True, env=env, check=True,
    )
    return proc.stdout


def test_schedules_stable_across_hash_randomization():
    """Fresh interpreters with different PYTHONHASHSEED values must
    produce byte-identical payloads — dict/set iteration order never
    reaches a scheduling decision on either decode path."""
    assert _run_with_hashseed("1") == _run_with_hashseed("31337")
