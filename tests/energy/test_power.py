"""Tests for the power model and schedule energy accounting."""

import pytest

from repro.energy.power import PowerModel, schedule_energy
from repro.exceptions import ConfigurationError
from repro.instance import homogeneous_instance
from repro.schedule.schedule import Schedule
from repro.schedulers.heft import HEFT


class TestPowerModel:
    def test_busy_power_cubic(self):
        m = PowerModel(static=0.0, dynamic=1.0)
        assert m.busy_power(1.0) == pytest.approx(1.0)
        assert m.busy_power(0.5) == pytest.approx(0.125)

    def test_busy_energy_quadratic_in_f(self):
        # energy = dynamic * f^2 * d (+ static * d/f)
        m = PowerModel(static=0.0, dynamic=2.0)
        assert m.busy_energy(10.0, 1.0) == pytest.approx(20.0)
        assert m.busy_energy(10.0, 0.5) == pytest.approx(5.0)

    def test_static_inflates_at_low_f(self):
        # With only static power, slowing down wastes energy.
        m = PowerModel(static=1.0, dynamic=0.0)
        assert m.busy_energy(10.0, 0.5) > m.busy_energy(10.0, 1.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PowerModel(static=-1.0)
        with pytest.raises(ConfigurationError):
            PowerModel().busy_power(0.0)
        with pytest.raises(ConfigurationError):
            PowerModel().busy_power(1.5)
        with pytest.raises(ConfigurationError):
            PowerModel().busy_energy(-1.0, 1.0)


class TestScheduleEnergy:
    @pytest.fixture
    def schedule_and_instance(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("b", 0, 2.0, 4.0)
        s.add("c", 1, 3.0, 3.0)
        s.add("d", 0, 8.0, 2.0)
        return s, inst

    def test_nominal_energy(self, schedule_and_instance):
        s, _ = schedule_and_instance
        m = PowerModel(static=0.5, dynamic=1.0)
        # dynamic: total busy 11; static: 0.5 * makespan 10 * 2 procs.
        assert schedule_energy(s, m) == pytest.approx(11.0 + 10.0)

    def test_scaling_reduces_dynamic(self, schedule_and_instance):
        s, _ = schedule_and_instance
        m = PowerModel(static=0.0, dynamic=1.0)
        nominal = schedule_energy(s, m)
        scaled = schedule_energy(s, m, {"b": 0.5})
        # b contributes 4 nominal -> 4 * 0.25 = 1 scaled.
        assert scaled == pytest.approx(nominal - 4.0 + 1.0)

    def test_bad_frequency_rejected(self, schedule_and_instance):
        s, _ = schedule_and_instance
        with pytest.raises(ConfigurationError):
            schedule_energy(s, PowerModel(), {"b": 0.0})

    def test_duplicates_run_nominal(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("a", 1, 0.0, 2.0, duplicate=True)
        s.add("b", 0, 2.0, 4.0)
        s.add("c", 1, 2.0, 3.0)
        s.add("d", 0, 8.0, 2.0)
        m = PowerModel(static=0.0, dynamic=1.0)
        # Requesting a slowdown for "a" must not affect its duplicate.
        base = schedule_energy(s, m)
        slowed = schedule_energy(s, m, {"a": 0.5})
        assert base - slowed == pytest.approx(2.0 - 2.0 * 0.25)

    def test_empty_schedule(self):
        from repro.machine.cluster import Machine

        s = Schedule(Machine.homogeneous(2))
        assert schedule_energy(s, PowerModel()) == 0.0

    def test_heft_schedule_energy_positive(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        assert schedule_energy(s, PowerModel()) > 0
