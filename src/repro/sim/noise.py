"""Runtime-variation models for the execution simulator.

The ETC matrix a static scheduler plans against is an *estimate*;
reality deviates.  A :class:`NoiseModel` maps each copy's nominal
(planned) duration to an actual one.  All models are seeded and
deterministic per (task, proc) pair within one run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import ProcId, TaskId
from repro.utils.rng import SeedLike, as_generator


class NoiseModel(ABC):
    """Maps planned durations to simulated ones."""

    @abstractmethod
    def duration(self, task: TaskId, proc: ProcId, nominal: float) -> float:
        """Actual duration of one execution of ``task`` on ``proc``."""

    def comm_factor(self) -> float:
        """Multiplier applied to every communication time (default 1)."""
        return 1.0


class NoNoise(NoiseModel):
    """Identity model: simulation reproduces the plan exactly."""

    def duration(self, task: TaskId, proc: ProcId, nominal: float) -> float:
        return nominal


class MultiplicativeNoise(NoiseModel):
    """Lognormal multiplicative noise with coefficient of variation ``cv``.

    ``duration = nominal * X`` with ``E[X] = 1`` and ``sd[X] = cv`` —
    the standard model for execution-time estimation error.  Each
    (task, proc) pair draws one factor per model instance, so repeated
    queries are consistent within a run.
    """

    def __init__(self, cv: float, seed: SeedLike = None, comm_cv: float | None = None) -> None:
        if cv < 0:
            raise ConfigurationError(f"cv must be >= 0, got {cv}")
        self.cv = float(cv)
        self._rng = as_generator(seed)
        self._cache: dict[tuple[TaskId, ProcId], float] = {}
        if comm_cv is not None and comm_cv < 0:
            raise ConfigurationError(f"comm_cv must be >= 0, got {comm_cv}")
        self._comm_factor = 1.0
        if comm_cv:
            sigma2 = np.log(1.0 + comm_cv * comm_cv)
            self._comm_factor = float(
                self._rng.lognormal(mean=-sigma2 / 2.0, sigma=np.sqrt(sigma2))
            )

    def _factor(self, key: tuple[TaskId, ProcId]) -> float:
        if key not in self._cache:
            if self.cv == 0:
                self._cache[key] = 1.0
            else:
                sigma2 = np.log(1.0 + self.cv * self.cv)
                self._cache[key] = float(
                    self._rng.lognormal(mean=-sigma2 / 2.0, sigma=np.sqrt(sigma2))
                )
        return self._cache[key]

    def duration(self, task: TaskId, proc: ProcId, nominal: float) -> float:
        return nominal * self._factor((task, proc))

    def comm_factor(self) -> float:
        return self._comm_factor


class PerProcessorDrift(NoiseModel):
    """Each processor is uniformly slower/faster than estimated.

    Models systematic estimation bias (e.g. thermal throttling or
    background load on specific machines): processor ``p`` multiplies
    every duration by a factor drawn once from ``U[1-drift, 1+drift]``.
    """

    def __init__(self, drift: float, seed: SeedLike = None) -> None:
        if not (0.0 <= drift < 1.0):
            raise ConfigurationError(f"drift must be in [0, 1), got {drift}")
        self.drift = float(drift)
        self._rng = as_generator(seed)
        self._factors: dict[ProcId, float] = {}

    def duration(self, task: TaskId, proc: ProcId, nominal: float) -> float:
        if proc not in self._factors:
            self._factors[proc] = float(
                self._rng.uniform(1.0 - self.drift, 1.0 + self.drift)
            )
        return nominal * self._factors[proc]
