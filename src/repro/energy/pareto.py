"""Makespan/energy Pareto analysis over the sweep runner.

The energy-aware objective of the multi-objective SoC scheduling line of
work: instead of crowning one scheduler, sweep every candidate over the
same instances and keep the *non-dominated* set — the schedulers for
which no other candidate is at least as good on both makespan and energy
and strictly better on one.

Both objectives come from :func:`repro.bench.runner.run_sweep` with the
same master seed, so the two sweeps score the *identical* instance
sequence (paired comparison).  Determinism is inherited wholesale: the
front is a pure function of ``(scheduler_names, x_values, factory,
reps, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.utils.tables import format_table


@dataclass(frozen=True)
class ParetoPoint:
    """One scheduler's paired objective means."""

    scheduler: str
    makespan: float
    energy: float
    dominated: bool

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak dominance with at least one strict improvement
        (both objectives minimised)."""
        return (
            self.makespan <= other.makespan
            and self.energy <= other.energy
            and (self.makespan < other.makespan or self.energy < other.energy)
        )


@dataclass(frozen=True)
class ParetoResult:
    """All scored points plus the non-dominated subset."""

    points: list[ParetoPoint]
    energy_metric: str

    def front(self) -> list[ParetoPoint]:
        """Non-dominated points, sorted by makespan (ties by name)."""
        return sorted(
            (p for p in self.points if not p.dominated),
            key=lambda p: (p.makespan, p.scheduler),
        )

    def table(self, title: str | None = None) -> str:
        rows = [
            [p.scheduler, f"{p.makespan:.4f}", f"{p.energy:.4f}",
             "" if p.dominated else "*"]
            for p in sorted(self.points, key=lambda p: (p.makespan, p.scheduler))
        ]
        return format_table(
            ["scheduler", "makespan", self.energy_metric, "front"],
            rows, title=title,
        )


def pareto_flags(points: Sequence[tuple[float, float]]) -> list[bool]:
    """``True`` per point iff it is dominated (both axes minimised).

    Duplicate points do not dominate each other — all copies of a
    non-dominated value stay on the front.
    """
    flags = []
    for i, (a, b) in enumerate(points):
        flags.append(any(
            c <= a and d <= b and (c < a or d < b)
            for j, (c, d) in enumerate(points) if j != i
        ))
    return flags


def makespan_energy_front(
    scheduler_names: Sequence[str],
    x_name: str,
    x_values: Sequence,
    instance_factory: Callable[[object, np.random.Generator], Instance],
    reps: int = 3,
    seed: int = 0,
    energy_metric: str = "energy",
    check: bool = True,
    workers: int = 1,
) -> ParetoResult:
    """Score every scheduler on paired makespan/energy sweeps.

    ``energy_metric`` selects ``"energy"`` (nominal frequency) or
    ``"energy_dvfs"`` (after makespan-preserving slack reclamation) —
    the latter rewards schedules that leave slack where it can actually
    be reclaimed.  Each scheduler's point is the mean of its per-x
    series, i.e. one aggregate position in objective space.
    """
    from repro.bench.runner import run_sweep

    if energy_metric not in ("energy", "energy_dvfs"):
        raise ConfigurationError(
            f"energy_metric must be 'energy' or 'energy_dvfs', got {energy_metric!r}"
        )
    spans = run_sweep(
        scheduler_names, x_name, x_values, instance_factory,
        reps=reps, metric="makespan", seed=seed, check=check, workers=workers,
    )
    energies = run_sweep(
        scheduler_names, x_name, x_values, instance_factory,
        reps=reps, metric=energy_metric, seed=seed, check=False, workers=workers,
    )
    names = list(scheduler_names)
    pairs = [
        (spans.mean_over_x(name), energies.mean_over_x(name)) for name in names
    ]
    dominated = pareto_flags(pairs)
    points = [
        ParetoPoint(scheduler=name, makespan=pair[0], energy=pair[1],
                    dominated=flag)
        for name, pair, flag in zip(names, pairs, dominated)
    ]
    return ParetoResult(points=points, energy_metric=energy_metric)
