"""Cross-cutting metamorphic invariants of the whole stack."""

import pytest

from repro.dag.analysis import map_costs
from repro.dag.generators import random_dag, scale_ccr
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.metrics import efficiency, slr, speedup
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT
from repro.core import ImprovedScheduler


class TestScalingInvariance:
    """Makespan scales linearly with uniform cost scaling (homogeneous
    machine, where ETC == nominal costs)."""

    @pytest.mark.parametrize("factor", [2.0, 10.0])
    def test_uniform_scaling(self, factor):
        dag = random_dag(40, seed=1)
        scaled = map_costs(dag, lambda t, c: factor * c)
        for u, v in dag.edges():
            scaled.set_data(u, v, factor * dag.data(u, v))
        base = HEFT().schedule(homogeneous_instance(dag, num_procs=4))
        big = HEFT().schedule(homogeneous_instance(scaled, num_procs=4))
        assert big.makespan == pytest.approx(factor * base.makespan)

    def test_slr_scale_invariant(self):
        dag = random_dag(40, seed=2)
        scaled = map_costs(dag, lambda t, c: 3.0 * c)
        for u, v in dag.edges():
            scaled.set_data(u, v, 3.0 * dag.data(u, v))
        i1 = homogeneous_instance(dag, num_procs=4)
        i2 = homogeneous_instance(scaled, num_procs=4)
        assert slr(HEFT().schedule(i1), i1) == pytest.approx(
            slr(HEFT().schedule(i2), i2)
        )


class TestResourceMonotonicity:
    def test_more_processors_never_hurt_much(self):
        # Heuristics are not monotone in general, but the corridor must
        # hold: q=8 average is no worse than 1.1x the q=2 average.
        import numpy as np

        ratios = []
        for seed in range(6):
            dag = random_dag(60, seed=seed)
            small = homogeneous_instance(dag, num_procs=2)
            large = homogeneous_instance(dag, num_procs=8)
            ratios.append(
                HEFT().schedule(large).makespan / HEFT().schedule(small).makespan
            )
        assert float(np.mean(ratios)) <= 1.1

    def test_speedup_and_efficiency_consistent(self):
        dag = random_dag(50, seed=3)
        inst = make_instance(dag, num_procs=5, seed=3)
        s = HEFT().schedule(inst)
        assert efficiency(s, inst) == pytest.approx(speedup(s, inst) / 5)


class TestCommunicationMonotonicity:
    def test_zero_ccr_schedules_fastest(self):
        # Removing all communication can only help list schedulers.
        dag = random_dag(50, ccr=2.0, seed=4)
        free = scale_ccr(dag, 0.0)
        inst_comm = homogeneous_instance(dag, num_procs=4)
        inst_free = homogeneous_instance(free, num_procs=4)
        assert (
            HEFT().schedule(inst_free).makespan
            <= HEFT().schedule(inst_comm).makespan + 1e-9
        )

    def test_slr_grows_with_ccr(self):
        import numpy as np

        means = []
        for ccr in (0.1, 5.0):
            slrs = []
            for seed in range(5):
                dag = random_dag(60, ccr=ccr, seed=seed)
                inst = make_instance(dag, num_procs=4, seed=seed)
                slrs.append(slr(HEFT().schedule(inst), inst))
            means.append(float(np.mean(slrs)))
        assert means[1] > means[0]


class TestBoundsEverywhere:
    @pytest.mark.parametrize("alg", [HEFT, ImprovedScheduler])
    def test_makespan_at_least_cp_bound(self, alg):
        for seed in range(4):
            dag = random_dag(40, seed=seed)
            inst = make_instance(dag, num_procs=4, heterogeneity=0.8, seed=seed)
            s = alg().schedule(inst)
            validate(s, inst)
            assert s.makespan >= inst.cp_min_length - 1e-9

    def test_makespan_beats_serial_on_average(self):
        # HEFT has no per-instance serial-time guarantee (high-CCR
        # counterexamples exist), but at CCR=1 on 4 processors it must
        # beat serial execution on average by a wide margin.
        import numpy as np

        ratios = []
        for seed in range(6):
            dag = random_dag(40, seed=seed)
            inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
            s = HEFT().schedule(inst)
            ratios.append(s.makespan / inst.sequential_time)
        assert float(np.mean(ratios)) < 0.8
