"""Rescheduling policies for online arrivals, behind a name registry.

When a job arrives, the simulator asks the active policy what to
(re)place: always the arrival itself, optionally some of the *pending*
jobs — jobs already placed whose first task has not started yet, so
pulling them back rewrites no history.  The policy returns job ids in
placement order; everything it does not mention keeps its current
placement.  Jobs with work already running are never candidates.

Three built-ins mirror the families the online-scheduling literature
compares:

* ``queue`` — strict FIFO: place the arrival against whatever the
  cluster looks like, touch nothing else.
* ``replace`` — re-place pending work: pull every pending job and
  re-insert it together with the arrival in shortest-baseline-first
  order (SJF over the jobs that haven't started anyway).
* ``preempt`` — bounded preemption: the arrival may displace up to
  ``max_preempt`` pending jobs with a larger baseline than its own;
  victims are re-placed after it in their original arrival order.

The registry mirrors :mod:`repro.schedulers.registry`: names map to
zero-argument factories so each simulation gets a fresh policy object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PendingJob:
    """Read-only view of one job a policy may reason about."""

    job_id: str
    template: str
    arrival: float
    #: makespan of the template on an empty cluster (the job's ideal)
    baseline: float
    #: earliest planned task start of the current placement
    start: float
    #: arrival index (ties and "original order" break on this)
    order: int


class ReschedulePolicy(ABC):
    """Decides what to (re)place when a job arrives."""

    #: Registry name, set on registration.
    name: str = "policy"

    @abstractmethod
    def plan(self, arrival: PendingJob, pending: list[PendingJob]) -> list[str]:
        """Job ids to place, in order.  Must contain ``arrival.job_id``;
        may contain any subset of ``pending``'s ids (those get pulled
        back and re-placed); must not repeat ids."""


class QueuePolicy(ReschedulePolicy):
    """FIFO: the arrival queues behind everything already placed."""

    name = "queue"

    def plan(self, arrival: PendingJob, pending: list[PendingJob]) -> list[str]:
        return [arrival.job_id]


class ReplacePendingPolicy(ReschedulePolicy):
    """Re-place all pending work, shortest baseline first (SJF)."""

    name = "replace"

    def plan(self, arrival: PendingJob, pending: list[PendingJob]) -> list[str]:
        everyone = [*pending, arrival]
        everyone.sort(key=lambda p: (p.baseline, p.order))
        return [p.job_id for p in everyone]


class BoundedPreemptPolicy(ReschedulePolicy):
    """The arrival preempts up to ``max_preempt`` larger pending jobs."""

    name = "preempt"

    def __init__(self, max_preempt: int = 4) -> None:
        if max_preempt < 0:
            raise ConfigurationError(f"max_preempt must be >= 0, got {max_preempt}")
        self.max_preempt = int(max_preempt)

    def plan(self, arrival: PendingJob, pending: list[PendingJob]) -> list[str]:
        victims = [p for p in pending if p.baseline > arrival.baseline]
        victims.sort(key=lambda p: (-p.baseline, p.order))
        victims = victims[: self.max_preempt]
        victims.sort(key=lambda p: p.order)
        return [arrival.job_id, *[p.job_id for p in victims]]


_REGISTRY: dict[str, Callable[[], ReschedulePolicy]] = {}


def register_policy(name: str, factory: Callable[[], ReschedulePolicy]) -> None:
    """Register a rescheduling-policy factory under a unique name."""
    if name in _REGISTRY:
        raise ConfigurationError(f"policy {name!r} already registered")
    _REGISTRY[name] = factory


def get_policy(name: str) -> ReschedulePolicy:
    """Instantiate the policy registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown policy {name!r}; known: {known}") from None
    policy = factory()
    policy.name = name
    return policy


def all_policy_names() -> list[str]:
    """All registered names, sorted."""
    return sorted(_REGISTRY)


register_policy("queue", QueuePolicy)
register_policy("replace", ReplacePendingPolicy)
register_policy("preempt", BoundedPreemptPolicy)
register_policy("preempt-1", lambda: BoundedPreemptPolicy(max_preempt=1))
