"""Layer-by-layer random DAGs (Tobita & Kasahara STG style).

Unlike :func:`~repro.dag.generators.random_dag.random_dag`, edges only
connect *adjacent* layers, which matches the STG benchmark suite's
"layered" family and yields more regular parallelism profiles.
"""

from __future__ import annotations

from repro.dag.generators.costs import scale_ccr
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def layered_dag(
    num_layers: int,
    width: int,
    edge_probability: float = 0.4,
    ccr: float = 1.0,
    avg_cost: float = 10.0,
    seed: SeedLike = None,
    name: str | None = None,
) -> TaskDAG:
    """Generate a layered DAG of ``num_layers`` layers x ``width`` tasks.

    Each task is connected to every task of the next layer independently
    with ``edge_probability``; tasks left parentless get one mandatory
    parent so only layer 0 contains entry tasks.
    """
    if num_layers < 1:
        raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if not (0.0 <= edge_probability <= 1.0):
        raise ConfigurationError(f"edge_probability must be in [0, 1], got {edge_probability}")
    if avg_cost <= 0:
        raise ConfigurationError(f"avg_cost must be > 0, got {avg_cost}")

    rng = as_generator(seed)
    dag = TaskDAG(name or f"layered-{num_layers}x{width}")
    ids = [[li * width + wi for wi in range(width)] for li in range(num_layers)]
    for layer in ids:
        for tid in layer:
            dag.add_task(Task(id=tid, cost=float(rng.uniform(1e-6, 2.0 * avg_cost))))

    for li in range(1, num_layers):
        for child in ids[li]:
            parents = [p for p in ids[li - 1] if rng.random() < edge_probability]
            if not parents:
                parents = [int(rng.choice(ids[li - 1]))]
            for p in parents:
                dag.add_edge(p, child, data=float(rng.uniform(0.0, 2.0 * avg_cost)))

    if dag.num_edges == 0:
        return dag
    return scale_ccr(dag, ccr)
