"""TDS-style task-duplication baseline (after Darbha & Agrawal, 1998).

The classic duplication school: every exit task anchors a *linear
cluster* obtained by walking favourite predecessors (the parent whose
data arrival constrains the earliest start) back to an entry task; each
cluster runs on one processor, duplicating the whole chain there so the
chain communicates only through local memory.

The published TDS assumes unbounded homogeneous processors; this
implementation adapts it to bounded heterogeneous machines the standard
way: clusters are ordered by decreasing length and folded onto the ``q``
processors round-robin (tasks deduplicated per processor), then placed
in global topological order with duplication-aware ready times.  It is a
*baseline* — the point of experiment E15 is to show the contribution's
selective duplication beats whole-chain duplication under bounded
resources.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, ready_time
from repro.types import ProcId, TaskId


class TDS(Scheduler):
    """Linear-clustering duplication scheduler."""

    name = "TDS"

    def _favourite_predecessor(self, instance: Instance, ect: dict[TaskId, float], task: TaskId) -> TaskId | None:
        """Parent whose (average-cost) data arrival is latest."""
        dag = instance.dag
        parents = dag.predecessors(task)
        if not parents:
            return None
        pos = {t: i for i, t in enumerate(dag.topological_order())}
        return min(
            parents,
            key=lambda p: (-(ect[p] + instance.avg_comm_time(p, task)), pos[p]),
        )

    def _clusters(self, instance: Instance) -> list[list[TaskId]]:
        """One favourite-predecessor chain per exit task, longest first."""
        dag = instance.dag
        # Average-cost earliest completion times.
        ect: dict[TaskId, float] = {}
        for t in dag.topological_order():
            arrival = 0.0
            for p in dag.predecessors(t):
                arrival = max(arrival, ect[p] + instance.avg_comm_time(p, t))
            ect[t] = arrival + instance.avg_exec_time(t)

        clusters: list[list[TaskId]] = []
        for exit_task in dag.exit_tasks():
            chain: list[TaskId] = []
            cur: TaskId | None = exit_task
            while cur is not None:
                chain.append(cur)
                cur = self._favourite_predecessor(instance, ect, cur)
            chain.reverse()  # entry .. exit
            clusters.append(chain)
        clusters.sort(key=lambda c: (-sum(instance.avg_exec_time(t) for t in c), str(c[-1])))
        return clusters

    def schedule(self, instance: Instance) -> Schedule:
        dag = instance.dag
        procs = instance.machine.proc_ids()
        clusters = self._clusters(instance)

        # Fold clusters onto processors round-robin, deduplicating tasks
        # that several clusters pin to the same processor.
        tasks_on: dict[ProcId, set[TaskId]] = {p: set() for p in procs}
        for i, chain in enumerate(clusters):
            proc = procs[i % len(procs)]
            tasks_on[proc].update(chain)

        # Any task on no cluster (side branches) goes to the processor
        # that runs it fastest.
        covered = set().union(*tasks_on.values()) if tasks_on else set()
        for t in dag.tasks():
            if t not in covered:
                tasks_on[instance.etc.best_proc(t)].add(t)

        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        for task in dag.topological_order():
            # Deterministic copy order; the first placement is primary.
            owners = [p for p in procs if task in tasks_on[p]]
            for k, proc in enumerate(owners):
                ready = ready_time(schedule, instance, task, proc)
                duration = instance.exec_time(task, proc)
                start = schedule.timeline(proc).find_slot(ready, duration)
                schedule.add(task, proc, start, duration, duplicate=k > 0)
        return schedule
