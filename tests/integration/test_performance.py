"""Performance guard rails.

Not micro-benchmarks (those live in benchmarks/) — these are generous
ceilings that catch accidental complexity regressions (an O(n) slipping
into an inner loop) while staying robust on slow CI machines.
"""

import time

import pytest

from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.schedule.timeline import Timeline
from repro.schedulers.heft import HEFT
from repro.core import ImprovedScheduler


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


class TestSchedulerScaling:
    def test_heft_800_tasks_fast(self):
        dag = random_dag(800, seed=1)
        inst = make_instance(dag, num_procs=8, seed=1)
        elapsed = _timed(lambda: HEFT().schedule(inst))
        assert elapsed < 10.0  # measured ~0.05s; x200 headroom

    def test_imp_300_tasks_reasonable(self):
        dag = random_dag(300, seed=2)
        inst = make_instance(dag, num_procs=8, seed=2)
        elapsed = _timed(lambda: ImprovedScheduler().schedule(inst))
        assert elapsed < 60.0  # measured ~0.5s; wide headroom

    def test_heft_near_linear_in_tasks(self):
        # Doubling n should not blow time up by more than ~8x (allowing
        # the e ~ n*out_degree growth plus noise); a quadratic
        # regression would show ~4x+ consistently and trip this at the
        # larger sizes.
        times = []
        for n in (200, 400, 800):
            dag = random_dag(n, seed=3)
            inst = make_instance(dag, num_procs=8, seed=3)
            HEFT().schedule(inst)  # warm caches
            times.append(_timed(lambda: HEFT().schedule(inst)))
        assert times[2] / max(times[0], 1e-9) < 30.0


class TestTimelineScaling:
    def test_many_appends_fast(self):
        tl = Timeline()

        def run():
            for i in range(5000):
                start = tl.find_slot(0.0, 1.0)
                tl.add(start, 1.0, i)

        assert _timed(run) < 5.0

    def test_gap_search_not_quadratic_from_ready(self):
        # With a late ready time, find_slot must bisect to the region,
        # not scan all slots.
        tl = Timeline()
        for i in range(20000):
            tl.add(float(2 * i), 1.0, i)

        def run():
            for _ in range(2000):
                tl.find_slot(39_000.0, 0.5)

        assert _timed(run) < 2.0
