"""Tests for the experiment registry (smoke-runs the quick protocol of a
representative subset; the benchmarks/ tree runs all of them)."""

import pytest

from repro.bench.registry import (
    all_experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.exceptions import ExperimentError


class TestRegistryStructure:
    def test_experiment_ids(self):
        ids = all_experiment_ids()
        # E1..E15 are the paper's artifacts; E16..E18 are extensions
        # documented in DESIGN.md §4b.
        assert ids == [f"E{i}" for i in range(1, 19)]

    def test_lookup(self):
        exp = get_experiment("E9")
        assert exp.artifact == "table"
        assert "airwise" in exp.title or "pairwise" in exp.title.lower()

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_artifacts_classified(self):
        kinds = {get_experiment(e).artifact for e in all_experiment_ids()}
        assert kinds == {"figure", "table"}


class TestWorkloadAxes:
    def test_quick_axes_are_subprotocol(self):
        from repro.bench import workloads as W

        assert set(W.sizes(True)) <= set(W.sizes(False))
        assert set(W.ccrs(True)) <= set(W.ccrs(False))
        assert set(W.proc_counts(True)) <= set(W.proc_counts(False))
        assert W.reps(True) < W.reps(False)

    def test_compared_lineups(self):
        from repro.bench import workloads as W

        assert "IMP" in W.COMPARED and "HEFT" in W.COMPARED
        assert set(W.COMPARED) <= set(W.COMPARED_WIDE)
        assert "MCP" in W.COMPARED_HOMOGENEOUS


class TestQuickRuns:
    """Tiny smoke runs; the statistical assertions live in benchmarks/."""

    def test_e13_optimality_report(self):
        report = run_experiment("E13", quick=True)
        assert "optimality" in report.lower()
        assert "IMP" in report and "HEFT" in report

    def test_e12_ablation_report(self):
        report = run_experiment("E12", quick=True)
        assert "none (=HEFT)" in report
        assert "+0.00%" in report  # the baseline row gains nothing
