"""Sweep-runner observability: traced == untraced, worker traces merge."""

from __future__ import annotations

import os

from repro.bench import workloads as W
from repro.bench.runner import run_sweep
from repro.obs import Tracer, set_tracer, span_tree, validate_trace

FACTORY = W.SweepFactory(kind="random", param="num_tasks")
SCHEDULERS = ("HEFT", "CPOP")


def _sweep(workers: int, tracer=None):
    return run_sweep(
        SCHEDULERS,
        "num_tasks",
        [10, 14],
        FACTORY,
        reps=2,
        metric="slr",
        seed=5,
        check=True,
        workers=workers,
        tracer=tracer,
    )


def test_traced_sweep_is_bit_identical_to_untraced():
    plain = _sweep(workers=1)
    traced = _sweep(workers=1, tracer=Tracer())
    assert traced.series == plain.series  # exact float equality
    assert traced.raw == plain.raw


def test_serial_sweep_merges_replication_spans():
    tracer = Tracer()
    _sweep(workers=1, tracer=tracer)
    assert validate_trace(tracer) == []
    tree = span_tree(tracer)
    (run_span,) = [s for s in tree[None] if s["name"] == "sweep.run"]
    reps = [s for s in tree[run_span["id"]] if s["name"] == "sweep.replication"]
    assert len(reps) == 4  # 2 x-points * 2 reps, all under one sweep.run
    sched = [s for s in tracer.spans() if s["name"] == "sweep.sched"]
    assert len(sched) == 4 * len(SCHEDULERS)
    assert {s["attrs"]["alg"] for s in sched} == set(SCHEDULERS)
    assert {s["name"] for s in tracer.spans()} >= {"sweep.validate", "sched.run"}
    assert tracer.counters()["sweep.replications"] == 4


def test_parallel_sweep_trace_matches_serial_shape():
    serial_tracer, parallel_tracer = Tracer(), Tracer()
    serial = _sweep(workers=1, tracer=serial_tracer)
    parallel = _sweep(workers=2, tracer=parallel_tracer)
    assert parallel.series == serial.series  # tracing changes nothing
    for tracer in (serial_tracer, parallel_tracer):
        assert validate_trace(tracer) == []
    names_serial = sorted(s["name"] for s in serial_tracer.spans())
    names_parallel = sorted(s["name"] for s in parallel_tracer.spans())
    assert names_parallel == names_serial  # identical merged structure
    # Worker spans keep their origin pid: the parallel trace shows more
    # than one process — unless the cpu-count cap collapsed the request
    # to the serial path (single-core box), where one pid is correct.
    if (os.cpu_count() or 1) > 1:
        assert len({s["pid"] for s in parallel_tracer.spans()}) > 1
    else:
        assert len({s["pid"] for s in parallel_tracer.spans()}) == 1
    assert len({s["pid"] for s in serial_tracer.spans()}) == 1


def test_module_default_tracer_enables_sweep_tracing():
    tracer = Tracer()
    set_tracer(tracer)
    try:
        _sweep(workers=1)
    finally:
        set_tracer(None)
    assert any(s["name"] == "sweep.run" for s in tracer.spans())
