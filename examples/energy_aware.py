#!/usr/bin/env python3
"""Energy-aware scheduling: reclaim schedule slack with DVFS and check
the plan's robustness with Monte-Carlo simulation.

The two-step recipe this example demonstrates:
1. schedule for makespan (the improved scheduler),
2. hand the finished plan to the DVFS post-pass, which slows every
   slack-owning task to the lowest frequency that provably cannot move
   the makespan — then quantify what the slowdown does to robustness.

Run:  python examples/energy_aware.py
"""

from repro import make_instance, validate
from repro.dag.generators import montage_dag
from repro.energy import PowerModel, reclaim_slack
from repro.schedule.analysis import task_slacks, utilisation
from repro.schedulers import get_scheduler
from repro.sim.montecarlo import makespan_distribution

PROCESSORS = 5
MODEL = PowerModel(static=0.15, dynamic=1.0)

dag = montage_dag(10, seed=21)
instance = make_instance(dag, num_procs=PROCESSORS, heterogeneity=0.5, seed=21)

print(f"workload: {dag.name} ({dag.num_tasks} tasks) on {PROCESSORS} processors\n")
print(f"{'scheduler':<12}{'makespan':>10}{'energy':>10}{'saved':>8}"
      f"{'slowed':>8}{'p95/plan':>10}")
for name in ("IMP", "HEFT", "CPOP"):
    schedule = get_scheduler(name).schedule(instance)
    validate(schedule, instance)
    dvfs = reclaim_slack(schedule, instance, MODEL)
    dist = makespan_distribution(schedule, instance, cv=0.2, samples=60, seed=5)
    print(f"{name:<12}{schedule.makespan:>10.2f}{dvfs.energy_nominal:>10.1f}"
          f"{100 * dvfs.savings_fraction:>7.1f}%"
          f"{dvfs.slowed_tasks:>8d}"
          f"{dist.p95 / schedule.makespan:>10.3f}")

# Where does the reclaimable slack live?
schedule = get_scheduler("IMP").schedule(instance)
slack = task_slacks(schedule, instance)
util = utilisation(schedule)
top = sorted(slack.items(), key=lambda kv: -kv[1])[:5]
print("\nbiggest slack owners (IMP):")
for task, s in top:
    print(f"  {str(task):<22} slack {s:8.2f}")
print("\nutilisation: " + ", ".join(f"P{p}={u:.0%}" for p, u in util.items()))

dvfs = reclaim_slack(schedule, instance, MODEL, levels=(0.5, 0.6, 0.7, 0.8, 0.9, 1.0))
below_nominal = {t: f for t, f in dvfs.frequencies.items() if f < 1.0}
print(f"\nwith a finer frequency ladder IMP slows {len(below_nominal)} tasks "
      f"and saves {100 * dvfs.savings_fraction:.1f}% energy — "
      "the makespan is untouched by construction.")
