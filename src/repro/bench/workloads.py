"""Canonical workload factories shared by the experiment registry, the
benchmark modules and the CLI.

Every experiment's instances come from here so the numbers printed by
``python -m repro experiment E2`` and by ``pytest benchmarks/`` are the
same protocol.  The default parameter ranges follow the TPDS-2002
evaluation (the genre's shared protocol); ``quick=True`` shrinks sizes
and repetition counts for CI-speed runs without changing the protocol's
shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.generators import (
    fft_dag,
    gaussian_elimination_dag,
    laplace_dag,
    random_dag,
    scale_ccr,
)
from repro.instance import Instance, homogeneous_instance, make_instance

#: Scheduler line-up of the comparison figures (contribution first).
COMPARED = ("IMP", "LA-HEFT", "DUP-HEFT", "HEFT", "CPOP", "HCPT", "PETS", "DLS")

#: Extended line-up for the pairwise table (adds the older baselines).
COMPARED_WIDE = COMPARED + ("ETF", "MCP", "HLFET")

#: Homogeneous-system line-up (E11): the contribution against the
#: homogeneous classics.
COMPARED_HOMOGENEOUS = ("IMP", "HEFT", "MCP", "ETF", "DLS", "HLFET")


@dataclass(frozen=True)
class Defaults:
    """Default workload parameters of the protocol."""

    num_procs: int = 8
    heterogeneity: float = 0.5
    ccr: float = 1.0
    shape: float = 1.0
    out_degree: int = 4
    avg_cost: float = 10.0


DEFAULTS = Defaults()


def _seed_from(rng: np.random.Generator) -> int:
    return int(rng.integers(0, 2**62))


def random_instance(
    rng: np.random.Generator,
    num_tasks: int = 100,
    num_procs: int = DEFAULTS.num_procs,
    ccr: float = DEFAULTS.ccr,
    shape: float = DEFAULTS.shape,
    heterogeneity: float = DEFAULTS.heterogeneity,
) -> Instance:
    """One random-DAG instance under the standard protocol."""
    dag = random_dag(
        num_tasks,
        shape=shape,
        out_degree=DEFAULTS.out_degree,
        ccr=ccr,
        avg_cost=DEFAULTS.avg_cost,
        seed=_seed_from(rng),
    )
    return make_instance(
        dag,
        num_procs=num_procs,
        heterogeneity=heterogeneity,
        seed=_seed_from(rng),
    )


def gaussian_instance(
    rng: np.random.Generator,
    matrix_size: int = 10,
    num_procs: int = DEFAULTS.num_procs,
    ccr: float = DEFAULTS.ccr,
    heterogeneity: float = DEFAULTS.heterogeneity,
) -> Instance:
    """Gaussian-elimination instance; CCR is imposed by exact rescale."""
    dag = scale_ccr(gaussian_elimination_dag(matrix_size), ccr)
    return make_instance(dag, num_procs=num_procs, heterogeneity=heterogeneity, seed=_seed_from(rng))


def fft_instance(
    rng: np.random.Generator,
    points: int = 32,
    num_procs: int = DEFAULTS.num_procs,
    ccr: float = DEFAULTS.ccr,
    heterogeneity: float = DEFAULTS.heterogeneity,
) -> Instance:
    """FFT instance; CCR imposed by exact rescale."""
    dag = scale_ccr(fft_dag(points), ccr)
    return make_instance(dag, num_procs=num_procs, heterogeneity=heterogeneity, seed=_seed_from(rng))


def laplace_instance(
    rng: np.random.Generator,
    grid_size: int = 8,
    num_procs: int = DEFAULTS.num_procs,
    ccr: float = DEFAULTS.ccr,
    heterogeneity: float = DEFAULTS.heterogeneity,
) -> Instance:
    """Laplace wavefront instance; CCR imposed by exact rescale."""
    dag = scale_ccr(laplace_dag(grid_size), ccr)
    return make_instance(dag, num_procs=num_procs, heterogeneity=heterogeneity, seed=_seed_from(rng))


def homogeneous_random_instance(
    rng: np.random.Generator,
    num_tasks: int = 100,
    num_procs: int = DEFAULTS.num_procs,
    ccr: float = DEFAULTS.ccr,
) -> Instance:
    """Random DAG on an identical-processor machine (E11)."""
    dag = random_dag(
        num_tasks,
        shape=DEFAULTS.shape,
        out_degree=DEFAULTS.out_degree,
        ccr=ccr,
        avg_cost=DEFAULTS.avg_cost,
        seed=_seed_from(rng),
    )
    return homogeneous_instance(dag, num_procs=num_procs)


#: Workload kinds a :class:`SweepFactory` can reference by name.
FACTORY_KINDS = {
    "random": random_instance,
    "gaussian": gaussian_instance,
    "fft": fft_instance,
    "laplace": laplace_instance,
    "homogeneous": homogeneous_random_instance,
}


@dataclass(frozen=True)
class SweepFactory:
    """Picklable ``instance_factory`` for :func:`repro.bench.runner.run_sweep`.

    The registry's sweeps used inline lambdas, which the parallel runner
    cannot ship to worker processes.  This frozen dataclass captures the
    same closure declaratively: ``kind`` names a workload factory,
    ``param`` is the keyword the sweep's x-value binds to, and ``fixed``
    holds the remaining keyword arguments.

    >>> factory = SweepFactory("random", "num_tasks", (("ccr", 5.0),))
    >>> factory(40, rng)  # == random_instance(rng, num_tasks=40, ccr=5.0)
    """

    kind: str = "random"
    param: str = "num_tasks"
    fixed: tuple[tuple[str, object], ...] = ()

    def __call__(self, x: object, rng: np.random.Generator) -> Instance:
        kwargs = dict(self.fixed)
        kwargs[self.param] = x
        return FACTORY_KINDS[self.kind](rng, **kwargs)


# ----------------------------------------------------------------------
# Sweep axes (full protocol vs quick CI-sized protocol)
# ----------------------------------------------------------------------
def sizes(quick: bool) -> list[int]:
    return [40, 80] if quick else [20, 40, 60, 80, 100, 200, 300, 400, 500]


def ccrs(quick: bool) -> list[float]:
    return [0.1, 1.0, 5.0] if quick else [0.1, 0.5, 1.0, 2.0, 5.0, 10.0]


def proc_counts(quick: bool) -> list[int]:
    return [2, 8] if quick else [2, 4, 8, 16, 32]


def heterogeneities(quick: bool) -> list[float]:
    return [0.1, 1.0] if quick else [0.1, 0.25, 0.5, 0.75, 1.0, 1.5]


def shapes(quick: bool) -> list[float]:
    return [0.5, 2.0] if quick else [0.5, 1.0, 2.0]


def matrix_sizes(quick: bool) -> list[int]:
    return [5, 9] if quick else [5, 7, 9, 11, 14, 17, 20]


def fft_points(quick: bool) -> list[int]:
    return [8, 16] if quick else [8, 16, 32, 64, 128]


def grid_sizes(quick: bool) -> list[int]:
    return [4, 7] if quick else [4, 6, 8, 10, 12, 14, 16]


def reps(quick: bool) -> int:
    return 3 if quick else 25
