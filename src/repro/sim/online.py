"""Online multi-tenant scheduling: streaming jobs on a shared cluster.

The static experiments schedule one DAG on an empty machine.  This
module simulates the *online* regime instead: jobs — instances drawn
from a small template catalogue — arrive over time
(:mod:`repro.sim.arrivals`) on one shared cluster whose processors
already carry residual load (:mod:`repro.sim.cluster`).  Each arrival is
placed by a static list scheduler from the registry, running against the
pre-occupied timelines through the compiled core
(:meth:`~repro.compiled.CompiledInstance.schedule_onto`).

Two design points carry the performance story:

* **Cached lowering** (``relower="cached"``): the flat-array lowering of
  a template (CSR predecessors, ETC rows, rank order) never changes
  between arrivals — only the cluster's **dirty suffix** (busy intervals
  not yet compacted by :meth:`ClusterState.advance`) does.  So the
  simulator lowers each template once and re-seeds timelines per
  arrival.  ``relower="full"`` re-lowers from a fresh
  :class:`~repro.instance.Instance` copy on every placement — the
  baseline the benchmark compares against.  Both paths produce
  bit-identical schedules; only the work differs.
* **Rescheduling policies** (:mod:`repro.sim.policies`): on each
  arrival, a pluggable policy may pull *pending* jobs (nothing started
  yet) back off the timelines and re-place them together with the
  arrival.  Stale start/finish events are invalidated by per-job epoch
  counters rather than removed from the heap.

Determinism contract: with the same templates, arrival stream, seed and
knobs, :meth:`OnlineResult.to_json` is byte-identical across processes
and ``PYTHONHASHSEED`` values, and independent of the iteration order of
the template mapping.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.obs import get_tracer
from repro.schedule.timeline import scan_slots
from repro.schedulers.base import ListScheduler
from repro.schedulers.registry import get_scheduler
from repro.service.metrics import percentile
from repro.sim.arrivals import Arrival, ArrivalProcess
from repro.sim.cluster import ClusterState
from repro.sim.engine import EventQueue, SimulationError
from repro.sim.policies import PendingJob, get_policy
from repro.utils.rng import SeedLike, spawn_children

_EPS = 1e-12


@dataclass(frozen=True)
class OnlineJobRecord:
    """Final accounting of one completed job."""

    job_id: str
    template: str
    arrival: float
    start: float
    finish: float
    #: times this job was pulled back and re-placed after first placement
    replans: int

    @property
    def response(self) -> float:
        """Arrival-to-finish span (sojourn time)."""
        return self.finish - self.arrival


class _TemplateState:
    """Everything placement needs about one template, lowered once."""

    def __init__(self, name: str, instance: Instance, alg: ListScheduler) -> None:
        self.name = name
        self.instance = instance
        self.order_ids = alg.priority_order(instance)
        if (
            set(self.order_ids) != set(instance.dag.tasks())
            or len(self.order_ids) != instance.num_tasks
        ):
            raise ConfigurationError(
                f"{alg.name}: priority order covers {len(self.order_ids)} tasks, "
                f"template {name!r} has {instance.num_tasks}"
            )
        self.ci = instance.kernel.compiled() if instance.kernel.out_const is not None else None
        self.order_idx = (
            self.ci.order_indices(self.order_ids) if self.ci is not None else []
        )
        #: canonical index per task id (noise factors are indexed by this)
        self.ti = instance.kernel.ti


class _Job:
    """Mutable in-flight job state."""

    __slots__ = (
        "job_id", "template", "arrival", "order", "baseline",
        "epoch", "start", "finish", "replans",
    )

    def __init__(self, job_id: str, template: str, arrival: float, order: int,
                 baseline: float) -> None:
        self.job_id = job_id
        self.template = template
        self.arrival = arrival
        self.order = order
        self.baseline = baseline
        self.epoch = 0
        self.start = 0.0
        self.finish = 0.0
        self.replans = -1  # first placement bumps to 0


class OnlineResult:
    """Outcome of one online simulation run."""

    def __init__(
        self,
        *,
        alg: str,
        policy: str,
        relower: str,
        noise_cv: float,
        seed_label: str,
        machine: str,
        jobs: list[OnlineJobRecord],
        baselines: dict[str, float],
        makespan: float,
        utilization: float,
        replans: int,
        compacted: int,
        peak_live_intervals: int,
        compiled: bool,
    ) -> None:
        self.alg = alg
        self.policy = policy
        self.relower = relower
        self.noise_cv = noise_cv
        self.seed_label = seed_label
        self.machine = machine
        self.jobs = jobs
        self.baselines = baselines
        self.makespan = makespan
        self.utilization = utilization
        self.replans = replans
        self.compacted = compacted
        self.peak_live_intervals = peak_live_intervals
        self.compiled = compiled

    def slowdowns(self) -> list[float]:
        """Per-job slowdown: response over the template's empty-cluster
        makespan (>= 1 in the noise-free queue regime)."""
        out = []
        for rec in self.jobs:
            base = self.baselines[rec.template]
            out.append(rec.response / base if base > 0.0 else math.inf)
        return out

    def metrics_dict(self) -> dict[str, float]:
        """Aggregate metrics (plain floats, stable key order via JSON)."""
        responses = [rec.response for rec in self.jobs]
        slow = self.slowdowns()
        n = len(self.jobs)
        return {
            "jobs": float(n),
            "makespan": self.makespan,
            "response_mean": sum(responses) / n if n else 0.0,
            "response_p50": percentile(responses, 50),
            "response_p95": percentile(responses, 95),
            "response_p99": percentile(responses, 99),
            "slowdown_mean": sum(slow) / n if n else 0.0,
            "slowdown_p99": percentile(slow, 99),
            "slowdown_max": max(slow, default=0.0),
            "throughput": n / self.makespan if self.makespan > 0.0 else 0.0,
            "utilization": self.utilization,
            "replans": float(self.replans),
            "compacted_intervals": float(self.compacted),
            "peak_live_intervals": float(self.peak_live_intervals),
        }

    def payload_json(self) -> str:
        """Canonical JSON of the *outcome* only — baselines, metrics and
        per-job records, no configuration labels.  This is the artifact
        the equivalence checks compare: cached vs full re-lowering and
        compiled vs object path must produce it byte for byte."""
        doc = {
            "baselines": dict(sorted(self.baselines.items())),
            "metrics": self.metrics_dict(),
            "jobs": [
                {
                    "id": rec.job_id,
                    "template": rec.template,
                    "arrival": rec.arrival,
                    "start": rec.start,
                    "finish": rec.finish,
                    "replans": rec.replans,
                }
                for rec in self.jobs
            ],
        }
        return json.dumps(doc, sort_keys=True)

    def to_json(self) -> str:
        """Canonical JSON of the whole run (sorted keys, repr floats) —
        the byte-identical determinism artifact the restart tests compare."""
        doc = {
            "meta": {
                "alg": self.alg,
                "policy": self.policy,
                "relower": self.relower,
                "noise_cv": self.noise_cv,
                "seed": self.seed_label,
                "machine": self.machine,
                "compiled": self.compiled,
            },
            "payload": json.loads(self.payload_json()),
        }
        return json.dumps(doc, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m = self.metrics_dict()
        return (
            f"OnlineResult(alg={self.alg}, policy={self.policy}, "
            f"jobs={len(self.jobs)}, makespan={self.makespan:.3f}, "
            f"slowdown_mean={m['slowdown_mean']:.3f})"
        )


class OnlineScheduler:
    """Event-driven online simulator over one shared cluster.

    Drive it with :func:`simulate_online`; the class is exposed so tests
    can poke at intermediate state (pending sets, cluster occupancy).
    """

    def __init__(
        self,
        templates: Mapping[str, Instance],
        *,
        alg: str = "HEFT",
        policy: str = "queue",
        relower: str = "cached",
        noise_cv: float = 0.0,
        seed: SeedLike = 0,
        use_compiled: bool = True,
    ) -> None:
        if not templates:
            raise ConfigurationError("no templates")
        if relower not in ("cached", "full"):
            raise ConfigurationError(f"relower must be 'cached' or 'full', got {relower!r}")
        if not (noise_cv >= 0.0):
            raise ConfigurationError(f"noise_cv must be >= 0, got {noise_cv!r}")
        self.alg = get_scheduler(alg)
        if not isinstance(self.alg, ListScheduler) or self.alg.compiled_policy not in (
            "eft",
            "est",
        ):
            raise ConfigurationError(
                f"online scheduling needs a list scheduler with an eft/est "
                f"placement phase; {alg!r} does not qualify"
            )
        self.policy = get_policy(policy)
        self.relower = relower
        self.noise_cv = float(noise_cv)
        self.seed = seed
        self.use_compiled = use_compiled
        # Sorted-name insertion: template iteration order never matters.
        self.templates: dict[str, Instance] = {
            name: templates[name] for name in sorted(templates)
        }
        machines = {id(inst.machine) for inst in self.templates.values()}
        if len(machines) != 1:
            raise ConfigurationError(
                "all templates must share one Machine object (the cluster)"
            )
        self.machine = next(iter(self.templates.values())).machine
        self.cluster = ClusterState(self.machine)
        self._states: dict[str, _TemplateState] = {}
        # Baselines always come from the cached states so "cached" and
        # "full" report identical numbers.
        self.baselines: dict[str, float] = {}
        for name in self.templates:
            state = self._cached_state(name)
            self.baselines[name] = self._empty_makespan(state)
        #: per-job noise streams, spawned in run() once the job count is known
        self._noise_rngs: list | None = None
        self._noise_cache: dict[str, list[float]] = {}
        self.queue = EventQueue()
        self.pending: dict[str, _Job] = {}
        self.running: dict[str, _Job] = {}
        self.done: list[OnlineJobRecord] = []
        self.replans = 0
        self.compacted = 0
        self.peak_live = 0

    # ------------------------------------------------------------------
    # template lowering
    # ------------------------------------------------------------------
    def _cached_state(self, name: str) -> _TemplateState:
        state = self._states.get(name)
        if state is None:
            state = _TemplateState(name, self.templates[name], self.alg)
            self._states[name] = state
        return state

    def _state_for(self, name: str) -> _TemplateState:
        """Per-placement lowering: cached reuse, or a full re-lower from
        a fresh Instance copy (fresh kernel, fresh compiled arrays,
        recomputed priority order) when ``relower='full'``."""
        if self.relower == "cached":
            return self._cached_state(name)
        inst = self.templates[name]
        fresh = Instance(
            dag=inst.dag, machine=inst.machine, etc=inst.etc,
            name=inst.name, deadline=inst.deadline,
        )
        return _TemplateState(name, fresh, self.alg)

    def _empty_makespan(self, state: _TemplateState) -> float:
        if state.ci is not None and self.use_compiled:
            return state.ci.schedule_onto(
                state.order_idx,
                [[] for _ in range(state.ci.q)],
                [[] for _ in range(state.ci.q)],
                insertion=self.alg.insertion,
                policy=self.alg.compiled_policy,
            ).makespan
        _intervals, _start, finish = self._place_object(
            state, [[] for _ in range(self.cluster.num_procs)],
            [[] for _ in range(self.cluster.num_procs)], 0.0, None,
        )
        return finish

    # ------------------------------------------------------------------
    # noise
    # ------------------------------------------------------------------
    def _noise_for(self, job: _Job, state: _TemplateState) -> list[float] | None:
        """Per-job multiplicative duration factors, indexed by canonical
        task position.  Mean-one lognormal with sd ``noise_cv``, drawn
        from the job's own seed stream and cached so a re-placement
        replays the same factors (matching
        :class:`~repro.sim.noise.MultiplicativeNoise`'s moments)."""
        if self._noise_rngs is None:
            return None
        factors = self._noise_cache.get(job.job_id)
        if factors is None:
            sigma2 = math.log(1.0 + self.noise_cv * self.noise_cv)
            rng = self._noise_rngs[job.order]
            draws = rng.lognormal(
                mean=-sigma2 / 2.0, sigma=math.sqrt(sigma2),
                size=state.instance.num_tasks,
            )
            factors = [float(x) for x in draws]
            self._noise_cache[job.job_id] = factors
        return factors

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _place_object(
        self,
        state: _TemplateState,
        busy_starts: Sequence[Sequence[float]],
        busy_ends: Sequence[Sequence[float]],
        release: float,
        factors: list[float] | None,
    ) -> tuple[list[tuple[int, float, float]], float, float]:
        """Object-path mirror of ``CompiledInstance.schedule_onto``.

        Reads costs through the instance API, so it also covers machines
        with per-link communication models (where the compiled lowering
        is unavailable).  On uniform-link machines it replays the
        compiled path float for float — the differential tests pin that.
        """
        inst = state.instance
        procs = inst.machine.proc_ids()
        q = len(procs)
        tl_starts = [list(s) for s in busy_starts]
        tl_ends = [list(e) for e in busy_ends]
        tl_max = [max(e, default=0.0) for e in tl_ends]
        insertion = self.alg.insertion
        eft = self.alg.compiled_policy == "eft"
        end_of: dict = {}
        proc_of: dict = {}
        ti = state.ti
        intervals: list[tuple[int, float, float]] = []
        first = math.inf
        last = 0.0
        for task in state.order_ids:
            scale = 1.0 if factors is None else factors[ti[task]]
            ready_vec = [release] * q
            for parent in inst.predecessors_of(task):
                eu = end_of[parent]
                pu = proc_of[parent]
                for j in range(q):
                    a = eu if j == pu else eu + inst.comm_time(
                        parent, task, procs[pu], procs[j]
                    )
                    if a > ready_vec[j]:
                        ready_vec[j] = a
            best_j = -1
            best_start = 0.0
            best_end = 0.0
            for j in range(q):
                duration = inst.exec_time(task, procs[j])
                if factors is not None:
                    duration = duration * scale
                ready = ready_vec[j]
                if best_j >= 0:
                    if eft:
                        if ready + duration >= best_end - _EPS:
                            continue
                    elif ready >= best_start - _EPS:
                        continue
                if insertion:
                    start = scan_slots(tl_starts[j], tl_ends[j], ready, duration)
                else:
                    m = tl_max[j]
                    start = ready if ready > m else m
                end = start + duration
                if best_j < 0 or (
                    end < best_end - _EPS if eft else start < best_start - _EPS
                ):
                    best_j = j
                    best_start = start
                    best_end = end
            darg = best_end - best_start
            rend = best_start + darg
            end_of[task] = rend
            proc_of[task] = best_j
            intervals.append((best_j, best_start, rend))
            starts = tl_starts[best_j]
            i = bisect_left(starts, best_start)
            starts.insert(i, best_start)
            tl_ends[best_j].insert(i, rend)
            if rend > tl_max[best_j]:
                tl_max[best_j] = rend
            if best_start < first:
                first = best_start
            if rend > last:
                last = rend
        return intervals, (0.0 if math.isinf(first) else first), last

    def _place(self, job: _Job, release: float) -> None:
        """Schedule one job against the current dirty suffix and commit."""
        state = self._state_for(job.template)
        factors = self._noise_for(job, state)
        starts_seed, ends_seed = self.cluster.seeded_timelines()
        if state.ci is not None and self.use_compiled:
            result = state.ci.schedule_onto(
                state.order_idx,
                starts_seed,
                ends_seed,
                release=release,
                insertion=self.alg.insertion,
                policy=self.alg.compiled_policy,
                etc_scale=factors,
            )
            intervals = []
            first = math.inf
            for t in range(state.ci.n):
                s = result.start[t]
                e = s + result.darg[t]
                intervals.append((result.proc[t], s, e))
                if s < first:
                    first = s
            start = 0.0 if math.isinf(first) else first
            finish = result.makespan
        else:
            intervals, start, finish = self._place_object(
                state, starts_seed, ends_seed, release, factors
            )
        self.cluster.occupy(job.job_id, intervals)
        job.start = start
        job.finish = finish
        job.replans += 1
        job.epoch += 1
        self.pending[job.job_id] = job
        self.queue.push(start, "job_start", (job.job_id, job.epoch))
        self.queue.push(finish, "job_finish", (job.job_id, job.epoch))

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, arrival: Arrival, order: int) -> None:
        now = self.queue.now
        self.compacted += self.cluster.advance(now)
        live = self.cluster.live_intervals()
        if live > self.peak_live:
            self.peak_live = live
        job = _Job(
            arrival.job_id, arrival.template, arrival.time, order,
            self.baselines[arrival.template],
        )
        view = PendingJob(
            job_id=job.job_id, template=job.template, arrival=job.arrival,
            baseline=job.baseline, start=now, order=job.order,
        )
        pending_views = [
            PendingJob(
                job_id=p.job_id, template=p.template, arrival=p.arrival,
                baseline=p.baseline, start=p.start, order=p.order,
            )
            for p in sorted(self.pending.values(), key=lambda p: p.order)
        ]
        plan = self.policy.plan(view, pending_views)
        allowed = {p.job_id for p in pending_views} | {job.job_id}
        if len(set(plan)) != len(plan) or not set(plan) <= allowed or job.job_id not in plan:
            raise SimulationError(
                f"policy {self.policy.name!r} returned invalid plan {plan!r}"
            )
        pulled: dict[str, _Job] = {}
        for job_id in plan:
            if job_id == job.job_id:
                continue
            p = self.pending.pop(job_id)
            self.cluster.release(job_id)
            p.epoch += 1  # old start/finish events become stale
            pulled[job_id] = p
            self.replans += 1
        for job_id in plan:
            self._place(pulled.get(job_id, job), now)

    def _on_job_start(self, job_id: str, epoch: int) -> None:
        job = self.pending.get(job_id)
        if job is None or job.epoch != epoch:
            return  # stale event from before a re-placement
        del self.pending[job_id]
        self.running[job_id] = job

    def _on_job_finish(self, job_id: str, epoch: int) -> None:
        job = self.running.get(job_id)
        if job is None or job.epoch != epoch:
            return
        del self.running[job_id]
        self.done.append(
            OnlineJobRecord(
                job_id=job.job_id, template=job.template, arrival=job.arrival,
                start=job.start, finish=job.finish, replans=job.replans,
            )
        )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self, arrivals: Sequence[Arrival]) -> OnlineResult:
        tracer = get_tracer()
        order_of = {a.job_id: i for i, a in enumerate(arrivals)}
        if self.noise_cv > 0.0 and arrivals:
            self._noise_rngs = spawn_children(self.seed, len(arrivals))
        with tracer.span(
            "online.simulate", alg=self.alg.name, policy=self.policy.name,
            jobs=len(arrivals),
        ):
            for a in arrivals:
                self.queue.push(a.time, "arrival", a)

            def handle(ev) -> None:
                if ev.kind == "arrival":
                    tracer.count("online.arrivals")
                    self._on_arrival(ev.payload, order_of[ev.payload.job_id])
                elif ev.kind == "job_start":
                    self._on_job_start(*ev.payload)
                elif ev.kind == "job_finish":
                    self._on_job_finish(*ev.payload)
                else:  # pragma: no cover - no other kinds are pushed
                    raise SimulationError(f"unknown event kind {ev.kind!r}")

            self.queue.drain(handle)
        if self.pending or self.running:
            raise SimulationError(
                f"simulation drained with {len(self.pending)} pending and "
                f"{len(self.running)} running jobs"
            )
        self.done.sort(key=lambda rec: rec.job_id)
        makespan = max((rec.finish for rec in self.done), default=0.0)
        tracer.gauge("online.makespan", makespan)
        tracer.count("online.replans", self.replans)
        seed_label = str(self.seed)
        return OnlineResult(
            alg=self.alg.name,
            policy=self.policy.name,
            relower=self.relower,
            noise_cv=self.noise_cv,
            seed_label=seed_label,
            machine=self.machine.name,
            jobs=self.done,
            baselines=self.baselines,
            makespan=makespan,
            utilization=self.cluster.utilization(makespan if makespan > 0 else None),
            replans=self.replans,
            compacted=self.compacted,
            peak_live_intervals=self.peak_live,
            compiled=all(
                s.ci is not None for s in (self._cached_state(n) for n in self.templates)
            )
            and self.use_compiled,
        )


def simulate_online(
    templates: Mapping[str, Instance],
    arrivals: ArrivalProcess | Sequence[Arrival],
    *,
    alg: str = "HEFT",
    policy: str = "queue",
    relower: str = "cached",
    noise_cv: float = 0.0,
    seed: SeedLike = 0,
    use_compiled: bool = True,
) -> OnlineResult:
    """Simulate a stream of job arrivals on one shared cluster.

    Parameters
    ----------
    templates:
        Named instance catalogue; all instances must share one
        :class:`~repro.machine.cluster.Machine` object.  Iteration order
        is irrelevant (names are sorted internally).
    arrivals:
        An :class:`~repro.sim.arrivals.ArrivalProcess` (realized against
        the sorted template names) or an already-realized arrival list.
    alg:
        Registry name of a list scheduler with an eft/est placement
        phase (HEFT, HCPT, PETS, HLFET, MCP, ...).
    policy:
        Rescheduling policy name (:func:`~repro.sim.policies.get_policy`).
    relower:
        ``"cached"`` (lower each template once) or ``"full"`` (re-lower
        per placement) — identical results, different cost.
    noise_cv:
        Coefficient of variation of mean-one lognormal runtime noise
        applied to task durations (0 disables; factors are per job and
        replayed identically on re-placement).
    seed:
        Noise seed root (unused when ``noise_cv == 0``).
    use_compiled:
        Force the object-path mirror when ``False`` (differential tests).
    """
    sim = OnlineScheduler(
        templates,
        alg=alg,
        policy=policy,
        relower=relower,
        noise_cv=noise_cv,
        seed=seed,
        use_compiled=use_compiled,
    )
    if isinstance(arrivals, ArrivalProcess):
        stream = arrivals.realize(sorted(templates))
    else:
        stream = list(arrivals)
    return sim.run(stream)


def build_templates(
    *,
    num_templates: int = 3,
    num_tasks: int = 20,
    num_procs: int = 8,
    heterogeneity: float = 0.5,
    seed: int = 0,
) -> dict[str, Instance]:
    """A seeded template catalogue on one shared machine.

    The CLI, the benchmark and the tests all build their workloads
    through this, so "the 1k-job trace" means the same jobs everywhere.
    Template ``t<i>`` gets its own DAG and ETC draw; sizes fan out
    around ``num_tasks`` so the mix isn't uniform.
    """
    from repro.dag.generators import random_dag
    from repro.machine.cluster import Machine
    from repro.machine.etc import generate_etc

    if num_templates < 1:
        raise ConfigurationError(f"num_templates must be >= 1, got {num_templates}")
    machine = Machine.homogeneous(num_procs, name=f"cluster-q{num_procs}")
    templates: dict[str, Instance] = {}
    for i in range(num_templates):
        tasks = max(2, num_tasks + (i - num_templates // 2) * max(1, num_tasks // 4))
        dag = random_dag(tasks, ccr=1.0, seed=seed * 1009 + i)
        etc = generate_etc(
            dag, machine, heterogeneity=heterogeneity,
            consistency="inconsistent", seed=seed * 1013 + i,
        )
        name = f"t{i}"
        templates[name] = Instance(dag=dag, machine=machine, etc=etc, name=name)
    return templates
