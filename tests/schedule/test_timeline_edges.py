"""Edge cases for ``Timeline.find_slot``.

These pin down behaviors the schedulers rely on but that are easy to
break when touching the slot search: zero-duration tasks, gaps that
straddle the ready time, zero-width slots in the interval list, and the
``insertion=False`` append-only policy.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ScheduleError
from repro.schedule.timeline import Timeline


def _timeline(*intervals: tuple[float, float]) -> Timeline:
    tl = Timeline()
    for i, (start, end) in enumerate(intervals):
        tl.add(start, end - start, task=f"t{i}")
    return tl


class TestZeroDuration:
    def test_empty_timeline_returns_ready(self):
        assert Timeline().find_slot(3.5, 0.0) == 3.5

    def test_fits_inside_any_gap(self):
        tl = _timeline((0.0, 2.0), (5.0, 9.0))
        assert tl.find_slot(3.0, 0.0) == 3.0

    def test_fits_flush_against_slot_boundary(self):
        tl = _timeline((0.0, 2.0), (2.0, 4.0))
        # No gap exists, but a zero-duration task needs none.
        assert tl.find_slot(0.0, 0.0) == 0.0

    def test_after_all_slots(self):
        tl = _timeline((0.0, 2.0))
        assert tl.find_slot(10.0, 0.0) == 10.0


class TestGapStraddlingReady:
    def test_gap_opens_before_ready(self):
        # Gap [2, 5) straddles ready=3: the task starts at ready, not at
        # the gap's opening and not after the next slot.
        tl = _timeline((0.0, 2.0), (5.0, 9.0))
        assert tl.find_slot(3.0, 1.0) == 3.0

    def test_straddling_gap_too_small_after_ready(self):
        # Gap [2, 5) has only 1.0 left after ready=4; a 2.0 task must
        # wait for the end.
        tl = _timeline((0.0, 2.0), (5.0, 9.0))
        assert tl.find_slot(4.0, 2.0) == 9.0

    def test_ready_inside_busy_slot(self):
        tl = _timeline((0.0, 4.0), (6.0, 7.0))
        assert tl.find_slot(2.0, 1.5) == 4.0

    def test_gap_exactly_duration(self):
        tl = _timeline((0.0, 2.0), (5.0, 9.0))
        assert tl.find_slot(0.0, 3.0) == 2.0

    def test_ready_beyond_all_slots(self):
        tl = _timeline((0.0, 2.0), (5.0, 9.0))
        assert tl.find_slot(20.0, 4.0) == 20.0


class TestZeroWidthSlots:
    def test_zero_width_slot_does_not_block_gap(self):
        # A zero-width slot at 3 occupies no time; the gap [2, 5) is
        # still usable end to end.
        tl = _timeline((0.0, 2.0), (3.0, 3.0), (5.0, 9.0))
        assert tl.find_slot(0.0, 3.0) == 2.0

    def test_zero_width_slot_before_ready_ignored_as_prev(self):
        # The previous *non-empty* slot determines the gap's opening even
        # when zero-width slots sit in between.
        tl = _timeline((0.0, 2.0), (2.5, 2.5), (6.0, 8.0))
        assert tl.find_slot(3.0, 2.0) == 3.0

    def test_only_zero_width_slots(self):
        tl = _timeline((1.0, 1.0), (2.0, 2.0))
        assert tl.find_slot(0.0, 5.0) == 0.0

    def test_end_time_with_zero_width_tail(self):
        tl = _timeline((0.0, 4.0), (6.0, 6.0))
        # end_time tracks the latest *end*, even of a zero-width slot.
        assert tl.end_time == 6.0


class TestNoInsertion:
    def test_appends_after_end_even_with_gaps(self):
        tl = _timeline((0.0, 2.0), (5.0, 9.0))
        # The [2, 5) gap would fit the task, but insertion=False appends.
        assert tl.find_slot(0.0, 1.0, insertion=False) == 9.0

    def test_ready_after_end(self):
        tl = _timeline((0.0, 2.0))
        assert tl.find_slot(7.0, 1.0, insertion=False) == 7.0

    def test_empty_timeline(self):
        assert Timeline().find_slot(4.0, 1.0, insertion=False) == 4.0


class TestValidation:
    def test_negative_duration_raises(self):
        with pytest.raises(ScheduleError):
            Timeline().find_slot(0.0, -1.0)

    def test_negative_ready_raises(self):
        with pytest.raises(ScheduleError):
            Timeline().find_slot(-0.5, 1.0)

    def test_result_is_feasible_to_add(self):
        tl = _timeline((0.0, 2.0), (5.0, 9.0), (9.0, 12.0))
        for ready, duration in [(0.0, 2.5), (1.0, 3.0), (3.0, 1.0), (4.5, 0.5), (0.0, 0.0)]:
            start = tl.find_slot(ready, duration)
            assert start >= ready
            tl.add(start, duration, task=f"probe-{ready}-{duration}")
            tl = _timeline((0.0, 2.0), (5.0, 9.0), (9.0, 12.0))
