"""Tests for the user-facing comparison API."""

import pytest

from repro.bench.compare import compare_schedulers
from repro.dag.generators import random_dag
from repro.dag.suites import application_suite
from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, eft_placement


@pytest.fixture(scope="module")
def small_dags():
    return [random_dag(25, seed=s) for s in range(3)]


class TestCompareSchedulers:
    def test_basic(self, small_dags):
        res = compare_schedulers(["HEFT", "CPOP"], small_dags, num_procs=3,
                                 etc_draws=2, seed=1)
        assert res.scheduler_names == ["HEFT", "CPOP"]
        assert len(res.instance_names) == 6
        assert len(res.makespans["HEFT"]) == 6
        assert ("HEFT", "CPOP") in res.pairwise

    def test_report_and_winner(self, small_dags):
        res = compare_schedulers(["IMP", "HEFT"], small_dags, num_procs=3,
                                 etc_draws=1, seed=2)
        assert res.winner() == "IMP"
        report = res.report()
        assert "IMP" in report and "mean SLR" in report

    def test_accepts_mapping(self):
        suite = {k: v for k, v in list(application_suite().items())[:2]}
        res = compare_schedulers(["HEFT"], suite, etc_draws=1, seed=3)
        assert len(res.instance_names) == 2

    def test_custom_scheduler_object(self, small_dags):
        class MyScheduler(Scheduler):
            name = "mine"

            def schedule(self, instance: Instance) -> Schedule:
                s = Schedule(instance.machine, name="mine")
                order = instance.dag.topological_order()
                for t in order:
                    p = eft_placement(s, instance, t)
                    s.add(t, p.proc, p.start, p.end - p.start)
                return s

        res = compare_schedulers([MyScheduler(), "HEFT"], small_dags,
                                 num_procs=3, etc_draws=1, seed=4)
        assert "mine" in res.scheduler_names
        assert res.mean_slr("mine") >= 1.0

    def test_invalid_custom_scheduler_caught(self, small_dags):
        class Broken(Scheduler):
            name = "broken"

            def schedule(self, instance: Instance) -> Schedule:
                return Schedule(instance.machine)  # schedules nothing

        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            compare_schedulers([Broken()], small_dags[:1], etc_draws=1)

    def test_duplicate_names_rejected(self, small_dags):
        with pytest.raises(ConfigurationError):
            compare_schedulers(["HEFT", "HEFT"], small_dags)

    def test_empty_dags_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_schedulers(["HEFT"], [])

    def test_bad_draws_rejected(self, small_dags):
        with pytest.raises(ConfigurationError):
            compare_schedulers(["HEFT"], small_dags, etc_draws=0)

    def test_deterministic(self, small_dags):
        a = compare_schedulers(["HEFT"], small_dags, etc_draws=2, seed=5)
        b = compare_schedulers(["HEFT"], small_dags, etc_draws=2, seed=5)
        assert a.makespans == b.makespans
