"""Tests for repro.machine.cluster.Machine."""

import pytest

from repro.exceptions import MachineError, UnknownProcessorError
from repro.machine.cluster import Machine
from repro.machine.comm import UniformCommunication
from repro.machine.processor import Processor


class TestConstruction:
    def test_homogeneous(self):
        m = Machine.homogeneous(4, latency=1.0, bandwidth=2.0)
        assert m.num_procs == 4
        assert m.proc_ids() == [0, 1, 2, 3]
        assert m.is_homogeneous_speeds()

    def test_from_speeds(self):
        m = Machine.from_speeds([1.0, 2.0, 4.0])
        assert m.speed(2) == 4.0
        assert not m.is_homogeneous_speeds()

    def test_empty_rejected(self):
        with pytest.raises(MachineError):
            Machine([])
        with pytest.raises(MachineError):
            Machine.from_speeds([])
        with pytest.raises(MachineError):
            Machine.homogeneous(0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(MachineError):
            Machine([Processor(0), Processor(0)])

    def test_default_comm_is_zero(self):
        m = Machine([Processor(0), Processor(1)])
        assert m.comm_time(100.0, 0, 1) == 0.0


class TestQueries:
    @pytest.fixture
    def machine(self) -> Machine:
        return Machine(
            [Processor(0, speed=1.0), Processor(1, speed=2.0)],
            UniformCommunication(latency=1.0, bandwidth=2.0),
        )

    def test_contains(self, machine):
        assert 0 in machine and 9 not in machine

    def test_processor_lookup(self, machine):
        assert machine.processor(1).speed == 2.0
        with pytest.raises(UnknownProcessorError):
            machine.processor(9)

    def test_comm_time(self, machine):
        assert machine.comm_time(4.0, 0, 1) == pytest.approx(3.0)
        assert machine.comm_time(4.0, 1, 1) == 0.0

    def test_comm_unknown_proc(self, machine):
        with pytest.raises(UnknownProcessorError):
            machine.comm_time(1.0, 0, 9)
        with pytest.raises(UnknownProcessorError):
            machine.comm_time(1.0, 9, 0)

    def test_avg_comm(self, machine):
        assert machine.avg_comm_time(4.0) == pytest.approx(3.0)

    def test_proc_ids_copy(self, machine):
        ids = machine.proc_ids()
        ids.append(99)
        assert machine.proc_ids() == [0, 1]
