"""Tests for the shared list-scheduling machinery."""

import pytest

from repro.exceptions import SchedulingError
from repro.instance import homogeneous_instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import (
    ListScheduler,
    eft_placement,
    est_placement,
    placement_on,
    ready_time,
    topological_by_priority,
)


@pytest.fixture
def instance(diamond_dag):
    return homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)


class TestReadyTime:
    def test_entry_task_zero(self, instance):
        s = Schedule(instance.machine)
        assert ready_time(s, instance, "a", 0) == 0.0

    def test_local_parent_no_comm(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        assert ready_time(s, instance, "b", 0) == 2.0

    def test_remote_parent_adds_comm(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        assert ready_time(s, instance, "b", 1) == pytest.approx(5.0)  # 2 + 3

    def test_max_over_parents(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("b", 0, 2.0, 4.0)
        s.add("c", 1, 3.0, 3.0)
        # d on P0: b local (6) vs c remote (6 + 2 = 8)
        assert ready_time(s, instance, "d", 0) == pytest.approx(8.0)

    def test_duplicate_copy_lowers_ready(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("a", 1, 0.0, 2.0, duplicate=True)
        assert ready_time(s, instance, "b", 1) == pytest.approx(2.0)

    def test_unscheduled_parent_raises(self, instance):
        s = Schedule(instance.machine)
        with pytest.raises(SchedulingError):
            ready_time(s, instance, "b", 0)


class TestPlacements:
    def test_placement_on_uses_slots(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        p = placement_on(s, instance, "b", 0)
        assert (p.start, p.end) == (2.0, 6.0)

    def test_eft_prefers_faster_finish(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        # b on P0 finishes at 6; on P1 at 5+4=9.
        assert eft_placement(s, instance, "b").proc == 0

    def test_eft_tie_breaks_by_proc_order(self, instance):
        s = Schedule(instance.machine)
        p = eft_placement(s, instance, "a")
        assert p.proc == 0

    def test_est_vs_eft_difference(self, topcuoglu_instance):
        # EST picks earliest start even if the proc is slow; EFT picks
        # earliest finish.  On task 1 (ETC 14,16,9) from empty schedules
        # both start at 0, so EFT must choose P2 (index 2).
        s = Schedule(topcuoglu_instance.machine)
        assert eft_placement(s, topcuoglu_instance, 1).proc == 2
        assert est_placement(s, topcuoglu_instance, 1).proc == 0

    def test_restricted_procs(self, instance):
        s = Schedule(instance.machine)
        p = eft_placement(s, instance, "a", procs=[1])
        assert p.proc == 1

    def test_empty_proc_list_rejected(self, instance):
        s = Schedule(instance.machine)
        with pytest.raises(SchedulingError):
            eft_placement(s, instance, "a", procs=[])


class TestTopologicalByPriority:
    def test_respects_priority_when_free(self, diamond_dag):
        order = topological_by_priority(diamond_dag, key=lambda t: {"a": 0, "b": 2, "c": 1, "d": 3}[t])
        assert order == ["a", "c", "b", "d"]

    def test_never_violates_precedence(self, diamond_dag):
        # Even with inverted priorities the order stays topological.
        order = topological_by_priority(diamond_dag, key=lambda t: {"a": 9, "b": 0, "c": 0, "d": 0}[t])
        assert order.index("a") < order.index("b")
        assert order.index("b") < order.index("d")


class TestListSchedulerTemplate:
    def test_incomplete_order_rejected(self, instance):
        class Bad(ListScheduler):
            name = "bad"

            def priority_order(self, inst):
                return ["a"]

        with pytest.raises(SchedulingError):
            Bad().schedule(instance)

    def test_non_topological_order_fails_loudly(self, instance):
        class Reversed(ListScheduler):
            name = "rev"

            def priority_order(self, inst):
                return list(reversed(inst.dag.topological_order()))

        with pytest.raises(SchedulingError):
            Reversed().schedule(instance)
