"""Gaussian-elimination task graph (the genre's standard application DAG).

For a matrix of size ``m`` the elimination proceeds in ``m-1`` steps; at
step ``k`` a *pivot* task ``("piv", k)`` prepares column ``k`` and
*update* tasks ``("upd", k, j)`` (``j = k+1 .. m-1``) apply it to the
remaining columns.  Dependencies:

* ``piv(k) -> upd(k, j)`` for every ``j`` (the pivot column is broadcast),
* ``upd(k, k+1) -> piv(k+1)`` (the next pivot needs its updated column),
* ``upd(k, j) -> upd(k+1, j)`` for ``j > k+1`` (columns flow down steps).

Task count is ``(m² + m - 2) / 2``, matching the published experiments.
Costs shrink with the active submatrix: the pivot at step ``k`` costs
``cost_scale * (m - k)`` and each update ``cost_scale * 2(m - k)``
(one multiply-subtract pass over a column); an edge carries the active
column of ``m - k - 1`` elements times ``data_scale``.
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError


def gaussian_elimination_dag(
    matrix_size: int,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    name: str | None = None,
) -> TaskDAG:
    """Build the Gaussian-elimination DAG for an ``m x m`` matrix."""
    m = matrix_size
    if m < 2:
        raise ConfigurationError(f"matrix_size must be >= 2, got {m}")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")

    dag = TaskDAG(name or f"gauss-m{m}")
    for k in range(m - 1):
        active = m - k
        dag.add_task(
            Task(id=("piv", k), cost=cost_scale * active, name=f"piv{k}",
                 attrs={"step": k, "kind": "pivot"})
        )
        for j in range(k + 1, m):
            dag.add_task(
                Task(id=("upd", k, j), cost=cost_scale * 2 * active,
                     name=f"upd{k},{j}", attrs={"step": k, "column": j, "kind": "update"})
            )

    for k in range(m - 1):
        column = max(1, m - k - 1)
        data = data_scale * column
        for j in range(k + 1, m):
            dag.add_edge(("piv", k), ("upd", k, j), data=data)
        if k + 1 < m - 1:
            dag.add_edge(("upd", k, k + 1), ("piv", k + 1), data=data)
            for j in range(k + 2, m):
                dag.add_edge(("upd", k, j), ("upd", k + 1, j), data=data)
    return dag
