"""Tests for the refinement post-pass."""

import pytest

from repro.core.refinement import refine_schedule
from repro.dag.generators import random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.schedule import Schedule
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT
from repro.schedulers.baselines import RoundRobinScheduler


class TestMonotonicity:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_increases_makespan(self, seed):
        dag = random_dag(60, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = HEFT().schedule(inst)
        before = s.makespan
        refine_schedule(s, inst, max_rounds=3)
        validate(s, inst)
        assert s.makespan <= before + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_improves_bad_schedules(self, seed):
        # Round-robin leaves big holes; refinement should close some.
        dag = random_dag(60, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = RoundRobinScheduler().schedule(inst)
        before = s.makespan
        moves = refine_schedule(s, inst, max_rounds=5)
        validate(s, inst)
        assert moves > 0
        assert s.makespan < before - 1e-9


class TestSemantics:
    def test_zero_rounds_noop(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        before = s.assignment()
        assert refine_schedule(s, topcuoglu_instance, max_rounds=0) == 0
        assert s.assignment() == before

    def test_fixed_point(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        refine_schedule(s, topcuoglu_instance, max_rounds=10)
        # A second call finds nothing new.
        assert refine_schedule(s, topcuoglu_instance, max_rounds=10) == 0

    def test_keeps_feasibility_with_duplicates(self):
        from repro.core.duplication import DuplicationScheduler
        from repro.dag.generators import out_tree_dag

        dag = out_tree_dag(2, 4, cost_scale=5.0, data_scale=40.0)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=1)
        s = DuplicationScheduler().schedule(inst)
        if s.num_duplicates() == 0:
            pytest.skip("no duplicates produced on this seed")
        before_dups = s.num_duplicates()
        refine_schedule(s, inst, max_rounds=2)
        validate(s, inst)
        assert s.num_duplicates() == before_dups  # duplicates pinned

    def test_single_task(self):
        from repro.dag.graph import TaskDAG
        from repro.dag.task import Task

        dag = TaskDAG()
        dag.add_task(Task("x", cost=3.0))
        inst = homogeneous_instance(dag, num_procs=2)
        s = HEFT().schedule(inst)
        assert refine_schedule(s, inst) == 0
