"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """A task graph is structurally invalid (cycle, missing node, ...)."""


class CycleError(GraphError):
    """The task graph contains a directed cycle."""


class UnknownTaskError(GraphError, KeyError):
    """A task id was referenced that is not present in the graph."""

    def __init__(self, task_id: object) -> None:
        super().__init__(f"unknown task: {task_id!r}")
        self.task_id = task_id


class DuplicateTaskError(GraphError):
    """A task id was added twice to the same graph."""

    def __init__(self, task_id: object) -> None:
        super().__init__(f"duplicate task: {task_id!r}")
        self.task_id = task_id


class MachineError(ReproError):
    """A machine/platform description is invalid."""


class UnknownProcessorError(MachineError, KeyError):
    """A processor id was referenced that is not part of the machine."""

    def __init__(self, proc_id: object) -> None:
        super().__init__(f"unknown processor: {proc_id!r}")
        self.proc_id = proc_id


class CostError(ReproError):
    """A cost annotation is missing or invalid (negative, NaN, ...)."""


class ScheduleError(ReproError):
    """A schedule is malformed or infeasible."""


class ValidationError(ScheduleError):
    """A schedule failed feasibility validation.

    Carries the list of human-readable violation strings so test suites
    and callers can assert on specific failures.
    """

    def __init__(self, violations: list[str]) -> None:
        preview = "; ".join(violations[:5])
        more = "" if len(violations) <= 5 else f" (+{len(violations) - 5} more)"
        super().__init__(f"invalid schedule: {preview}{more}")
        self.violations = list(violations)


class SchedulingError(ReproError):
    """A scheduler could not produce a schedule for the given instance."""


class ConfigurationError(ReproError):
    """Invalid configuration passed to a scheduler, generator or bench."""


class ParseError(ReproError):
    """A task-graph file (STG/JSON/DOT) could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""
