"""Differential acceptance: cache hits are bit-identical to cold runs.

For *every* registered scheduler on seeded instances, the served cold
response, the served cache-hit response and a direct in-process
computation must agree exactly — placements and makespan, no tolerance.
One engine with a real process pool serves all schedulers, so this also
proves the JSON round trip into the worker process loses nothing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench import workloads as W
from repro.service import EngineConfig, SchedulingEngine
from repro.service.protocol import schedule_payload
from repro.schedulers.registry import all_scheduler_names, get_scheduler
from repro.utils.rng import as_generator


def _instances():
    """Two tiny seeded instances — small enough for the B&B oracle."""
    return [
        W.random_instance(as_generator(11), num_tasks=8, num_procs=3),
        W.homogeneous_random_instance(as_generator(23), num_tasks=7, num_procs=2),
    ]


@pytest.fixture(scope="module")
def served():
    """Submit every (scheduler, instance) twice through one pooled engine."""
    instances = _instances()

    async def run():
        engine = SchedulingEngine(EngineConfig(workers=2, cache_size=256))
        await engine.start()
        try:
            out = {}
            for alg in all_scheduler_names():
                for idx, inst in enumerate(instances):
                    cold = await engine.submit(inst, alg)
                    warm = await engine.submit(inst, alg)
                    out[(alg, idx)] = (cold, warm)
            return out
        finally:
            await engine.stop()

    return asyncio.run(run())


@pytest.mark.parametrize("idx", [0, 1])
@pytest.mark.parametrize("alg", all_scheduler_names())
def test_hit_is_bit_identical_to_cold(served, alg, idx):
    cold, warm = served[(alg, idx)]
    assert cold["cache_hit"] is False
    assert warm["cache_hit"] is True
    assert warm["makespan"] == cold["makespan"]
    assert warm["placements"] == cold["placements"]
    assert warm["num_duplicates"] == cold["num_duplicates"]


@pytest.mark.parametrize("idx", [0, 1])
@pytest.mark.parametrize("alg", all_scheduler_names())
def test_served_matches_direct_computation(served, alg, idx):
    """The pool-worker result equals a local run of the same scheduler."""
    inst = _instances()[idx]
    local = schedule_payload(get_scheduler(alg).schedule(inst), inst, alg)
    cold, _ = served[(alg, idx)]
    assert cold["makespan"] == local["makespan"]
    assert cold["placements"] == local["placements"]
