"""Fleet scale-out benchmark: warm throughput 1 -> N shards.

What sharding buys on this workload is *aggregate cache capacity*: the
consistent-hash ring gives every fingerprint exactly one owner, so a
fleet of N shards holds N x cache_size schedules warm.  The protocol
fixes a working set **larger than one shard's cache** and replays it
round-robin through the router:

* at **1 shard** the LRU thrashes — cyclic replay of W > C keys evicts
  every entry before its reuse, so every request recomputes;
* at **4 shards** each shard owns ~W/4 keys, well under its cache, so
  after one priming pass every request is a warm hit on its owner.

That is the real serving economics of the fleet (and it holds on any
machine, including single-core CI runners, because the win comes from
cache capacity, not CPU parallelism).  Every configuration routes
through the router — the comparison isolates shard count, not proxy
overhead — and a separate check asserts routed responses are
bit-identical to a lone daemon's in both JSON and binary wire formats.

Writes ``BENCH_fleet.json`` at the repo root.  Run directly to
regenerate:

    PYTHONPATH=src python benchmarks/bench_fleet.py

The pytest wrapper re-runs a smaller protocol and enforces the PR's
acceptance floor: >= 2.5x warm throughput at 4 shards vs 1, all-warm at
4 shards, bit-identical routed responses in both wire formats.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import time
from pathlib import Path

from repro.bench import workloads as W
from repro.instance_io import instance_to_json
from repro.service import (
    EngineConfig,
    ScheduleServer,
    SchedulingEngine,
    ServiceClient,
)
from repro.service.fleet import FleetManager
from repro.service.metrics import percentile
from repro.service.protocol import compute_schedule_payload
from repro.utils.rng import as_generator

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_fleet.json"

#: Benchmark protocol.  The working set (96 instances) is 2.4x one
#: shard's cache (40 entries): a single shard thrashes, four shards
#: (~24 keys each) serve everything warm.  60-task DAGs make a
#: recompute cost a few ms — serving-representative, and large enough
#: that the warm/cold gap, not proxy overhead, dominates the measure.
PROTOCOL = dict(working_set=96, cache_size=40, num_tasks=60, num_procs=4,
                alg="HEFT", rounds=3, shard_counts=(1, 2, 4),
                identity_subset=8)

#: Response-envelope fields that vary per request; everything else in a
#: result payload must match bit-for-bit however it was routed.
ENVELOPE = ("cache_hit", "fingerprint", "server_ms", "trace_id")


def _instances(n: int, num_tasks: int, num_procs: int, seed_base: int = 5000):
    return [
        W.random_instance(as_generator(seed_base + i),
                          num_tasks=num_tasks, num_procs=num_procs)
        for i in range(n)
    ]


def _canonical(payload: dict) -> str:
    return json.dumps(
        {k: v for k, v in payload.items() if k not in ENVELOPE}, sort_keys=True
    )


def _summary(latencies: list[float]) -> dict:
    return {
        "mean_ms": statistics.fmean(latencies),
        "p50_ms": percentile(latencies, 50),
        "p95_ms": percentile(latencies, 95),
        "max_ms": max(latencies),
    }


async def _measure_shards(shards: int, instances, alg: str, cache_size: int,
                          rounds: int) -> dict:
    """Prime the fleet once, then replay the working set ``rounds``
    times; returns warm throughput and latency shape."""
    manager = FleetManager(shards=shards, workers=0, cache_size=cache_size,
                           health_interval=0.0)
    await manager.start()
    try:
        client = ServiceClient.at(manager.endpoint, request_timeout=300.0)
        for inst in instances:  # priming pass (unmeasured)
            await client.schedule(inst, alg=alg)
        latencies, hits = [], 0
        t0 = time.perf_counter()
        for _ in range(rounds):
            for inst in instances:
                t1 = time.perf_counter()
                result = await client.schedule(inst, alg=alg)
                latencies.append((time.perf_counter() - t1) * 1e3)
                hits += bool(result.cache_hit)
        elapsed = time.perf_counter() - t0
        await client.close()
        requests = rounds * len(instances)
        return {
            "shards": shards,
            "requests": requests,
            "throughput_rps": requests / elapsed,
            "hit_rate": hits / requests,
            "latency": _summary(latencies),
            "router": manager.router.stats.as_dict(),
        }
    finally:
        await manager.stop()


async def _identity_check(instances, alg: str) -> dict:
    """Routed responses must be bit-identical to a lone daemon's, in
    both wire formats (and to the locally computed reference)."""
    reference = [
        _canonical(compute_schedule_payload(instance_to_json(inst), alg))
        for inst in instances
    ]
    solo = ScheduleServer(SchedulingEngine(EngineConfig(workers=0)), port=0)
    await solo.start()
    manager = FleetManager(shards=3, workers=0, health_interval=0.0)
    await manager.start()
    verdict = {}
    try:
        for wire_format in ("json", "bin"):
            solo_client = ServiceClient(port=solo.port, wire=wire_format,
                                        request_timeout=300.0)
            fleet_client = ServiceClient.at(manager.endpoint, wire=wire_format,
                                            request_timeout=300.0)
            ok = True
            for inst, expect in zip(instances, reference):
                a = await solo_client.schedule(inst, alg=alg)
                b = await fleet_client.schedule(inst, alg=alg)
                ok = ok and _canonical(a.payload) == expect
                ok = ok and _canonical(b.payload) == expect
            verdict[wire_format] = ok
            await solo_client.close()
            await fleet_client.close()
    finally:
        await manager.stop()
        await solo.stop()
    return verdict


async def run_benchmark(working_set: int, cache_size: int, num_tasks: int,
                        num_procs: int, alg: str, rounds: int,
                        shard_counts: tuple, identity_subset: int) -> dict:
    instances = _instances(working_set, num_tasks, num_procs)
    scaling = {}
    for shards in shard_counts:
        scaling[str(shards)] = await _measure_shards(
            shards, instances, alg, cache_size, rounds
        )
    identity = await _identity_check(instances[:identity_subset], alg)
    base = scaling[str(shard_counts[0])]["throughput_rps"]
    top = scaling[str(shard_counts[-1])]["throughput_rps"]
    return {
        "config": {
            "working_set": working_set,
            "cache_size_per_shard": cache_size,
            "num_tasks": num_tasks,
            "num_procs": num_procs,
            "alg": alg,
            "rounds": rounds,
        },
        "scaling": scaling,
        "speedup_max_vs_1": top / max(base, 1e-9),
        "identity": identity,
    }


def generate() -> dict:
    doc = {
        "benchmark": "repro.service.fleet warm throughput scaling",
        "results": asyncio.run(run_benchmark(**PROTOCOL)),
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


# ----------------------------------------------------------------------
# pytest wrapper (CI gate, smaller protocol)
# ----------------------------------------------------------------------
def test_fleet_warm_throughput_floor():
    result = asyncio.run(run_benchmark(
        working_set=36, cache_size=15, num_tasks=60, num_procs=4,
        alg="HEFT", rounds=2, shard_counts=(1, 4), identity_subset=6,
    ))
    assert result["identity"] == {"json": True, "bin": True}, (
        "routed responses must be bit-identical to a lone daemon's "
        f"in both wire formats: {result['identity']}"
    )
    one = result["scaling"]["1"]
    four = result["scaling"]["4"]
    assert four["hit_rate"] > 0.95, (
        f"4 shards should serve the working set all-warm, "
        f"hit rate {four['hit_rate']:.2f}"
    )
    assert one["hit_rate"] < 0.5, (
        f"1 shard should thrash on a working set 2.4x its cache, "
        f"hit rate {one['hit_rate']:.2f} — protocol no longer measures "
        f"cache capacity"
    )
    speedup = result["speedup_max_vs_1"]
    assert speedup >= 2.5, (
        f"warm throughput at 4 shards only {speedup:.2f}x over 1 shard "
        f"(floor 2.5x): {four['throughput_rps']:.0f} vs "
        f"{one['throughput_rps']:.0f} req/s"
    )


if __name__ == "__main__":
    doc = generate()
    res = doc["results"]
    for shards, row in res["scaling"].items():
        lat = row["latency"]
        print(f"{shards} shard(s): {row['throughput_rps']:8.1f} req/s   "
              f"hit rate {row['hit_rate']:5.1%}   "
              f"p50 {lat['p50_ms']:7.3f} ms   p95 {lat['p95_ms']:7.3f} ms")
    print(f"speedup {list(res['scaling'])[-1]} vs 1 shard: "
          f"{res['speedup_max_vs_1']:.1f}x")
    print(f"identity (routed == solo): {res['identity']}")
    print(f"wrote {OUT}")
