"""Binary wire format + persistent warm cache benchmark.

Measures what the wire layer actually bought on the warm path, against
the same daemon:

* **JSON warm** — the pre-wire baseline: JSON request/response documents
  over one TCP connection per request (``Connection: close``);
* **binary warm** — the packed-array wire format over a kept-alive
  connection, the server re-serving memoised payload bytes;
* **restart warm** — the daemon stopped and rebooted on the same
  ``--cache-dir``, every request answered from the recovered segment
  without recompute.

It also cross-checks correctness: the schedule decoded from a binary
response must be bit-identical to the one decoded from the JSON
response for every instance.

Writes ``BENCH_wire.json`` at the repo root.  Run directly to
regenerate:

    PYTHONPATH=src python benchmarks/bench_wire.py

The pytest wrapper re-runs a smaller protocol and enforces the PR's
acceptance floor: binary warm p50 at least 10x below the JSON warm
baseline, bit-identical cross-wire schedules, and a restarted daemon
serving warm hits from the persisted segment.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import tempfile
import time
from pathlib import Path

from repro.bench import workloads as W
from repro.service import (
    EngineConfig,
    ScheduleServer,
    SchedulingEngine,
    ServiceClient,
)
from repro.service.metrics import percentile
from repro.utils.rng import as_generator

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_wire.json"

#: Benchmark protocol.  Serving-representative DAGs (200 tasks x 8
#: procs): JSON encode/decode cost grows linearly with placement count
#: while the binary path stays transport-bound, so this size shows the
#: wire format's steady-state gap.  (BENCH_service.json keeps the
#: original 80-task protocol for longitudinal comparison.)
PROTOCOL = dict(num_instances=24, num_tasks=200, num_procs=8, workers=2, alg="IMP")

#: Response-envelope fields that vary per request; everything else in a
#: result payload must match bit-for-bit across wire formats.
ENVELOPE = ("cache_hit", "fingerprint", "server_ms", "trace_id")


def _instances(n: int, num_tasks: int, num_procs: int, seed_base: int = 1000):
    return [
        W.random_instance(as_generator(seed_base + i), num_tasks=num_tasks, num_procs=num_procs)
        for i in range(n)
    ]


def _canonical(payload: dict) -> str:
    """A payload's placement content as one comparable string."""
    return json.dumps(
        {k: v for k, v in payload.items() if k not in ENVELOPE}, sort_keys=True
    )


async def _timed_serial(client: ServiceClient, instances, alg: str):
    """Per-request wall latencies (ms) and the result payloads."""
    latencies, payloads = [], []
    for inst in instances:
        t0 = time.perf_counter()
        result = await client.schedule(inst, alg=alg)
        latencies.append((time.perf_counter() - t0) * 1e3)
        payloads.append(result.payload)
    return latencies, payloads


def _summary(latencies: list[float]) -> dict:
    return {
        "mean_ms": statistics.fmean(latencies),
        "p50_ms": percentile(latencies, 50),
        "p95_ms": percentile(latencies, 95),
        "min_ms": min(latencies),
        "max_ms": max(latencies),
    }


async def _boot(workers: int, cache_dir: str, num_instances: int) -> ScheduleServer:
    engine = SchedulingEngine(
        EngineConfig(workers=workers, cache_size=4 * num_instances,
                     queue_depth=256, cache_dir=cache_dir)
    )
    server = ScheduleServer(engine, port=0)
    await server.start()
    return server


async def run_benchmark(num_instances: int, num_tasks: int, num_procs: int,
                        workers: int, alg: str, cache_dir: str | None = None) -> dict:
    """Full protocol: prime, measure both wire formats warm, restart."""
    instances = _instances(num_instances, num_tasks, num_procs)
    own_dir = tempfile.TemporaryDirectory() if cache_dir is None else None
    cache_dir = cache_dir or own_dir.name
    try:
        server = await _boot(workers, cache_dir, num_instances)
        bin_client = ServiceClient(port=server.port, request_timeout=300.0, wire="bin")
        json_client = ServiceClient(port=server.port, request_timeout=300.0, wire="json")
        try:
            cold, _ = await _timed_serial(bin_client, instances, alg)
            # Unmeasured JSON pass first: it registers each body in the
            # server's exact-body map, so the measured JSON pass below
            # is the *best case* for the baseline (no parsing, no
            # fingerprinting — pure JSON framing + per-request TCP).
            await _timed_serial(json_client, instances, alg)
            json_warm, json_payloads = await _timed_serial(json_client, instances, alg)
            bin_warm, bin_payloads = await _timed_serial(bin_client, instances, alg)
            identical = all(
                _canonical(a) == _canonical(b)
                for a, b in zip(json_payloads, bin_payloads)
            )
            stats = (await bin_client.stats()).as_dict()
        finally:
            await bin_client.close()
            await server.stop()

        # Cold restart on the same segment: the daemon must come back
        # warm — every request a cache hit, zero recompute.
        server = await _boot(workers=0, cache_dir=cache_dir,
                             num_instances=num_instances)
        restart_client = ServiceClient(port=server.port, request_timeout=300.0)
        try:
            recovery = dict(server.engine.recovery_report or {})
            restart_warm, restart_payloads = await _timed_serial(
                restart_client, instances, alg
            )
            restart_hits = sum(bool(p.get("cache_hit")) for p in restart_payloads)
            restart_identical = all(
                _canonical(a) == _canonical(b)
                for a, b in zip(json_payloads, restart_payloads)
            )
        finally:
            await restart_client.close()
            await server.stop()
    finally:
        if own_dir is not None:
            own_dir.cleanup()

    json_p50 = _summary(json_warm)["p50_ms"]
    bin_p50 = _summary(bin_warm)["p50_ms"]
    return {
        "config": {
            "num_instances": num_instances,
            "num_tasks": num_tasks,
            "num_procs": num_procs,
            "workers": workers,
            "alg": alg,
        },
        "cold": _summary(cold),
        "warm_json": _summary(json_warm),
        "warm_bin": _summary(bin_warm),
        "warm_speedup_p50": json_p50 / max(bin_p50, 1e-9),
        "cross_wire_identical": identical,
        "restart": {
            "recovery": recovery,
            "warm": _summary(restart_warm),
            "cache_hits": restart_hits,
            "requests": num_instances,
            "identical_to_prerestart": restart_identical,
        },
        "server_stats": stats,
    }


def generate() -> dict:
    doc = {
        "benchmark": "repro.service binary wire + persistent cache warm path",
        "results": asyncio.run(run_benchmark(**PROTOCOL)),
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


# ----------------------------------------------------------------------
# pytest wrapper (CI gate, smaller protocol)
# ----------------------------------------------------------------------
def test_binary_wire_warm_path_floor():
    result = asyncio.run(
        run_benchmark(num_instances=8, num_tasks=200, num_procs=8, workers=2, alg="IMP")
    )
    json_p50 = result["warm_json"]["p50_ms"]
    bin_p50 = result["warm_bin"]["p50_ms"]
    assert result["cross_wire_identical"], (
        "binary and JSON responses must decode to bit-identical schedules"
    )
    assert bin_p50 * 10 <= json_p50, (
        f"binary warm p50 {bin_p50:.3f}ms not >=10x below JSON warm p50 {json_p50:.3f}ms"
    )
    restart = result["restart"]
    assert restart["cache_hits"] == restart["requests"], (
        "restarted daemon must answer every request from the persisted cache"
    )
    assert restart["identical_to_prerestart"], (
        "recovered payloads must be bit-identical to pre-restart responses"
    )
    assert restart["recovery"]["recovered"] >= restart["requests"]


if __name__ == "__main__":
    doc = generate()
    res = doc["results"]
    print(f"cold        p50 {res['cold']['p50_ms']:8.3f} ms")
    print(f"warm json   p50 {res['warm_json']['p50_ms']:8.3f} ms   "
          f"p95 {res['warm_json']['p95_ms']:8.3f} ms")
    print(f"warm bin    p50 {res['warm_bin']['p50_ms']:8.3f} ms   "
          f"p95 {res['warm_bin']['p95_ms']:8.3f} ms")
    print(f"warm speedup (p50): {res['warm_speedup_p50']:.1f}x "
          f"(cross-wire identical: {res['cross_wire_identical']})")
    rst = res["restart"]
    print(f"restart     p50 {rst['warm']['p50_ms']:8.3f} ms   "
          f"hits {rst['cache_hits']}/{rst['requests']} "
          f"(recovered {rst['recovery'].get('recovered', 0)} records)")
    print(f"wrote {OUT}")
