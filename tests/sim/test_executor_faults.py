"""Unit tests for fail-stop fault injection in the schedule executor.

The semantics are exact (no tolerance window) so the resilient module's
analytic predictions can be compared bit-for-bit with simulation:

* finish <= kill time  -> the copy completes (results at the instant of
  failure survive);
* start >= kill time   -> the copy never runs, and neither does anything
  queued behind it (head-of-line);
* start < kill < end   -> aborted: occupied the processor, delivered
  nothing.
"""

from __future__ import annotations

import pytest

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.instance import homogeneous_instance
from repro.schedule.schedule import Schedule
from repro.sim.engine import SimulationError
from repro.sim.executor import execute


def _instance(edges=(), costs=(("a", 10.0), ("b", 5.0)), num_procs=2):
    dag = TaskDAG("faults")
    for tid, cost in costs:
        dag.add_task(Task(tid, cost=cost))
    for u, v in edges:
        dag.add_edge(u, v, data=0.0)
    return homogeneous_instance(dag, num_procs=num_procs)


def _sequential_schedule(inst, proc=0):
    """Every task on one processor, back to back, in cost-list order."""
    sched = Schedule(inst.machine, name="seq")
    t = 0.0
    for task in inst.dag.tasks():
        d = inst.exec_time(task, proc)
        sched.add(task, proc, t, d)
        t += d
    return sched


def test_fault_free_run_unchanged():
    inst = _instance()
    sched = _sequential_schedule(inst)
    res = execute(sched, inst)
    assert res.makespan == sched.makespan
    assert res.faults == {} and res.aborted == [] and res.unstarted == []
    assert res.all_tasks_completed(inst)


def test_kill_at_zero_runs_nothing():
    inst = _instance()
    sched = _sequential_schedule(inst)
    res = execute(sched, inst, faults={0: 0.0})
    assert res.copies == [] and res.aborted == []
    assert len(res.unstarted) == 2
    assert res.makespan == 0.0
    assert not res.all_tasks_completed(inst)


def test_finish_at_kill_instant_survives():
    # a runs [0, 10); killing at exactly 10.0 keeps a's result but b
    # (start 10 >= kill) never runs.
    inst = _instance()
    sched = _sequential_schedule(inst)
    res = execute(sched, inst, faults={0: 10.0})
    assert [c.task for c in res.copies] == ["a"]
    assert res.aborted == []
    assert [c.task for c in res.unstarted] == ["b"]
    assert res.makespan == 10.0


def test_mid_execution_abort():
    # b starts at 10, ends 15; kill at 12 aborts it at the kill instant.
    inst = _instance()
    sched = _sequential_schedule(inst)
    res = execute(sched, inst, faults={0: 12.0})
    assert [c.task for c in res.copies] == ["a"]
    assert [c.task for c in res.aborted] == ["b"]
    assert res.unstarted == []
    assert res.completed("a") and not res.completed("b")
    assert res.makespan == 10.0  # aborted work contributes nothing


def test_head_of_line_blocks_tail():
    # Three independent tasks on one proc; kill between first and
    # second: the second never starts, so neither does the third.
    inst = _instance(costs=(("a", 4.0), ("b", 4.0), ("c", 4.0)), num_procs=1)
    sched = _sequential_schedule(inst)
    res = execute(sched, inst, faults={0: 4.0})
    assert [c.task for c in res.copies] == ["a"]
    assert {c.task for c in res.unstarted} == {"b", "c"}


def test_starvation_on_live_processor():
    # a -> b with a on the killed proc and b on a live one: b waits
    # forever (no surviving copy of its parent) and is reported
    # unstarted; with faults present that is not a deadlock error.
    inst = _instance(edges=(("a", "b"),))
    sched = Schedule(inst.machine, name="split")
    sched.add("a", 0, 0.0, inst.exec_time("a", 0))
    sched.add("b", 1, 10.0, inst.exec_time("b", 1))
    res = execute(sched, inst, faults={0: 5.0})
    assert [c.task for c in res.aborted] == ["a"]
    assert [c.task for c in res.unstarted] == ["b"]
    assert not res.all_tasks_completed(inst)


def test_task_ends_earliest_completed_copy():
    # Two copies of the same task on different processors: losing one
    # processor leaves the surviving copy as the task's completion.
    inst = _instance(costs=(("a", 10.0),))
    sched = Schedule(inst.machine, name="copies")
    sched.add("a", 0, 0.0, inst.exec_time("a", 0))
    sched.add("a", 1, 2.0, inst.exec_time("a", 1), duplicate=True)
    full = execute(sched, inst)
    assert full.task_ends() == {"a": 10.0}
    assert len(full.copies) == 2
    degraded = execute(sched, inst, faults={0: 1.0})
    assert [c.task for c in degraded.aborted] == ["a"]
    assert degraded.task_ends() == {"a": 10.0}  # surviving copy on proc 1
    assert [c.proc for c in degraded.copies] == [1]
    assert degraded.end_of("a") == 10.0
    assert degraded.all_tasks_completed(inst)


def test_fault_validation():
    inst = _instance()
    sched = _sequential_schedule(inst)
    with pytest.raises(SimulationError):
        execute(sched, inst, faults={99: 0.0})
    with pytest.raises(SimulationError):
        execute(sched, inst, faults={0: -1.0})
    with pytest.raises(SimulationError):
        execute(sched, inst, faults={0: float("nan")})


def test_deadlock_detection_still_raises_without_faults():
    # An infeasible schedule (child sequenced before its parent on one
    # proc) must still raise when no faults are injected.
    inst = _instance(edges=(("a", "b"),), num_procs=1)
    sched = Schedule(inst.machine, name="bad")
    sched.add("b", 0, 0.0, inst.exec_time("b", 0))
    sched.add("a", 0, 5.0, inst.exec_time("a", 0))
    with pytest.raises(SimulationError, match="deadlock"):
        execute(sched, inst)
