"""Deadline constraints through the service stack, both wire formats.

The deadline is part of the problem statement, so it must survive every
transport (JSON documents and the binary wire protocol) bit-for-bit,
feed the fingerprint (same DAG with a different deadline is a different
cache entry), and surface the schedulability verdict as a structured
payload field that decodes identically over both wires.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.bench import workloads as W
from repro.instance_io import (
    instance_fingerprint,
    instance_from_json,
    instance_to_json,
)
from repro.schedulers.registry import get_scheduler
from repro.service import EngineConfig, SchedulingEngine
from repro.service.protocol import schedule_payload
from repro.service.wire import (
    decode_instance,
    decode_payload,
    decode_request,
    encode_instance,
    encode_payload,
    encode_request,
    peek_request_fingerprint,
)
from repro.utils.rng import as_generator

#: Stability goldens: moving either value means every persisted cache
#: entry (deadline-free or deadline-annotated) silently invalidates.
GOLDEN_BARE = "f326b4de98b7f68d934a12cfb126b36eca14f8e297d6d2ba75d7e66a87259dde"
GOLDEN_DEADLINE = "c8f28d785ab862bcfc5a95efc3ee021589aa0c85391d5de62cdc0a65b372f955"


def _instance():
    return W.random_instance(as_generator(11), num_tasks=8, num_procs=3)


def _annotated():
    return _instance().with_deadline(100.0)


def test_json_round_trip_preserves_deadline():
    inst = _annotated()
    back = instance_from_json(instance_to_json(inst))
    assert back.deadline == 100.0
    bare = instance_from_json(instance_to_json(_instance()))
    assert bare.deadline is None
    # deadline-free documents keep the historical shape
    assert "deadline" not in json.loads(instance_to_json(_instance()))


def test_binary_round_trip_preserves_deadline():
    inst = _annotated()
    back = decode_instance(encode_instance(inst))
    assert back.deadline == 100.0
    assert instance_fingerprint(back) == instance_fingerprint(inst)


def test_deadline_free_encoding_is_byte_identical():
    # The deadline rides in an optional trailing section: absent, the
    # encoding must equal the pre-deadline format byte for byte (golden
    # wire fixtures and persisted caches stay valid).
    inst = _instance()
    assert encode_instance(inst) == encode_instance(inst.with_deadline(None))
    assert decode_instance(encode_instance(inst)).deadline is None


def test_fingerprint_stability_goldens():
    assert instance_fingerprint(_instance()) == GOLDEN_BARE
    assert instance_fingerprint(_annotated()) == GOLDEN_DEADLINE


def test_deadline_feeds_the_fingerprint():
    inst = _instance()
    prints = {
        instance_fingerprint(inst),
        instance_fingerprint(inst.with_deadline(100.0)),
        instance_fingerprint(inst.with_deadline(101.0)),
    }
    assert len(prints) == 3
    assert instance_fingerprint(inst.with_deadline(None)) == GOLDEN_BARE


def test_request_round_trip_carries_deadline():
    inst = _annotated()
    buf = encode_request(inst, "HEFT")
    assert peek_request_fingerprint(buf) == GOLDEN_DEADLINE
    blob, alg, fingerprint, _timeout, _trace = decode_request(buf)
    assert alg == "HEFT"
    assert fingerprint == GOLDEN_DEADLINE
    assert decode_instance(blob).deadline == 100.0


def test_payload_schedulability_cross_wire_identity():
    inst = _annotated()
    sched = get_scheduler("FT-HEFT-k1").schedule(inst)
    payload = schedule_payload(sched, inst, "FT-HEFT-k1")
    assert "schedulability" in payload
    via_json = json.loads(json.dumps(payload))
    via_binary = decode_payload(encode_payload(payload))
    assert via_binary == via_json
    assert via_binary["schedulability"] == payload["schedulability"]


def test_payload_without_deadline_has_no_schedulability():
    inst = _instance()
    sched = get_scheduler("HEFT").schedule(inst)
    payload = schedule_payload(sched, inst, "HEFT")
    assert "schedulability" not in payload
    assert decode_payload(encode_payload(payload)) == json.loads(json.dumps(payload))


def test_served_deadline_verdict_matches_local():
    """End to end: a deadline instance served through the pooled engine
    (JSON into the worker and back) returns the same schedulability
    verdict as an in-process computation, cold and warm."""
    inst = _annotated()

    async def run():
        engine = SchedulingEngine(EngineConfig(workers=1, cache_size=16))
        await engine.start()
        try:
            cold = await engine.submit(inst, "FT-HEFT-k1")
            warm = await engine.submit(inst, "FT-HEFT-k1")
            return cold, warm
        finally:
            await engine.stop()

    cold, warm = asyncio.run(run())
    local = schedule_payload(
        get_scheduler("FT-HEFT-k1").schedule(inst), inst, "FT-HEFT-k1"
    )
    assert cold["cache_hit"] is False and warm["cache_hit"] is True
    for served in (cold, warm):
        assert served["schedulability"] == local["schedulability"]
        assert served["makespan"] == local["makespan"]
