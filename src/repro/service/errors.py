"""Service-layer exception hierarchy.

Every serving failure derives from :class:`ServiceError` (itself a
:class:`~repro.exceptions.ReproError`) and carries the HTTP status code
the server maps it to, so the transport layer never needs a big
``isinstance`` ladder.
"""

from __future__ import annotations

from repro.exceptions import ReproError


class ServiceError(ReproError):
    """Base class for serving-layer failures."""

    #: HTTP status the server responds with for this error class.
    status = 500


class RequestError(ServiceError):
    """The request document is malformed (bad JSON, unknown scheduler,
    invalid instance)."""

    status = 400


class ServiceOverloadedError(ServiceError):
    """The bounded request queue is full — backpressure, retry later."""

    status = 429


class ServiceTimeoutError(ServiceError):
    """The per-request deadline elapsed before a result was ready."""

    status = 504


class ServiceClosedError(ServiceError):
    """The engine is draining or stopped and accepts no new work."""

    status = 503


class WorkerError(ServiceError):
    """The scheduling computation itself raised in the worker."""

    status = 500
