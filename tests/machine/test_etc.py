"""Tests for ETC matrices and their generation protocols."""

import numpy as np
import pytest

from repro.dag.generators import random_dag
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import CostError, MachineError, UnknownProcessorError, UnknownTaskError
from repro.machine.cluster import Machine
from repro.machine.etc import ETCMatrix, etc_from_speeds, generate_etc


@pytest.fixture
def dag() -> TaskDAG:
    return TaskDAG.from_edges([("a", "b", 1.0)], costs={"a": 10.0, "b": 20.0})


@pytest.fixture
def machine() -> Machine:
    return Machine.homogeneous(3)


class TestETCMatrix:
    def test_access(self):
        etc = ETCMatrix(["a", "b"], [0, 1], np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert etc.time("a", 1) == 2.0
        assert etc.row("b") == {0: 3.0, 1: 4.0}

    def test_aggregates(self):
        etc = ETCMatrix(["a"], [0, 1, 2], np.array([[1.0, 2.0, 6.0]]))
        assert etc.mean("a") == pytest.approx(3.0)
        assert etc.median("a") == 2.0
        assert etc.best("a") == 1.0
        assert etc.worst("a") == 6.0
        assert etc.best_proc("a") == 0

    def test_unknown_lookups(self):
        etc = ETCMatrix(["a"], [0], np.array([[1.0]]))
        with pytest.raises(UnknownTaskError):
            etc.time("z", 0)
        with pytest.raises(UnknownProcessorError):
            etc.time("a", 9)

    def test_shape_mismatch(self):
        with pytest.raises(MachineError):
            ETCMatrix(["a"], [0, 1], np.array([[1.0]]))

    def test_negative_rejected(self):
        with pytest.raises(CostError):
            ETCMatrix(["a"], [0], np.array([[-1.0]]))

    def test_nan_rejected(self):
        with pytest.raises(CostError):
            ETCMatrix(["a"], [0], np.array([[float("nan")]]))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(MachineError):
            ETCMatrix(["a", "a"], [0], np.zeros((2, 1)))

    def test_as_array_copy(self):
        etc = ETCMatrix(["a"], [0], np.array([[1.0]]))
        arr = etc.as_array()
        arr[0, 0] = 99.0
        assert etc.time("a", 0) == 1.0

    def test_consistency_detection(self):
        consistent = ETCMatrix(["a", "b"], [0, 1], np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert consistent.is_consistent()
        inconsistent = ETCMatrix(["a", "b"], [0, 1], np.array([[1.0, 2.0], [4.0, 3.0]]))
        assert not inconsistent.is_consistent()

    def test_heterogeneity_measure(self):
        homo = ETCMatrix(["a"], [0, 1], np.array([[2.0, 2.0]]))
        assert homo.heterogeneity() == 0.0
        hetero = ETCMatrix(["a"], [0, 1], np.array([[1.0, 3.0]]))
        assert hetero.heterogeneity() == pytest.approx(1.0)


class TestEtcFromSpeeds:
    def test_values(self, dag):
        m = Machine.from_speeds([1.0, 2.0])
        etc = etc_from_speeds(dag, m)
        assert etc.time("a", 0) == 10.0
        assert etc.time("a", 1) == 5.0

    def test_always_consistent(self, dag):
        m = Machine.from_speeds([1.0, 2.0, 0.5])
        assert etc_from_speeds(dag, m).is_consistent()


class TestGenerateEtcRange:
    def test_bounds(self, machine):
        dag = random_dag(40, seed=0)
        etc = generate_etc(dag, machine, heterogeneity=0.5, seed=1)
        for t in dag.tasks():
            w = dag.cost(t)
            for p in machine.proc_ids():
                assert 0.75 * w - 1e-9 <= etc.time(t, p) <= 1.25 * w + 1e-9

    def test_beta_zero_exactly_nominal(self, dag, machine):
        etc = generate_etc(dag, machine, heterogeneity=0.0, seed=1)
        for t in dag.tasks():
            for p in machine.proc_ids():
                assert etc.time(t, p) == dag.cost(t)

    def test_deterministic(self, dag, machine):
        a = generate_etc(dag, machine, seed=7).as_array()
        b = generate_etc(dag, machine, seed=7).as_array()
        assert (a == b).all()

    def test_consistent_class(self, machine):
        dag = random_dag(30, seed=2)
        etc = generate_etc(dag, machine, heterogeneity=1.0, consistency="consistent", seed=3)
        assert etc.is_consistent()

    def test_partially_consistent_sorts_even_columns(self, machine):
        dag = random_dag(30, seed=4)
        etc = generate_etc(
            dag, machine, heterogeneity=1.0, consistency="partially-consistent", seed=5
        )
        arr = etc.as_array()
        even = arr[:, ::2]
        assert (np.diff(even, axis=1) >= -1e-12).all()

    def test_zero_cost_task_stays_zero(self, machine):
        d = TaskDAG()
        d.add_task(Task("v", cost=0.0))
        d.add_task(Task("w", cost=5.0))
        etc = generate_etc(d, machine, heterogeneity=1.0, seed=6)
        assert etc.time("v", 0) == 0.0

    def test_rejects_beta_ge_2(self, dag, machine):
        with pytest.raises(MachineError):
            generate_etc(dag, machine, heterogeneity=2.0)

    def test_rejects_negative_beta(self, dag, machine):
        with pytest.raises(MachineError):
            generate_etc(dag, machine, heterogeneity=-0.1)

    def test_unknown_consistency(self, dag, machine):
        with pytest.raises(MachineError):
            generate_etc(dag, machine, consistency="weird")  # type: ignore[arg-type]

    def test_unknown_method(self, dag, machine):
        with pytest.raises(MachineError):
            generate_etc(dag, machine, method="nope")  # type: ignore[arg-type]


class TestGenerateEtcCvb:
    def test_positive_and_deterministic(self, machine):
        dag = random_dag(30, seed=8)
        a = generate_etc(dag, machine, heterogeneity=0.4, method="cvb", seed=9)
        b = generate_etc(dag, machine, heterogeneity=0.4, method="cvb", seed=9)
        assert (a.as_array() == b.as_array()).all()
        assert (a.as_array() >= 0).all()

    def test_mean_tracks_nominal(self, machine):
        # With modest CV the column mean should stay near the nominal cost.
        d = TaskDAG()
        for i in range(200):
            d.add_task(Task(i, cost=10.0))
        etc = generate_etc(d, machine, heterogeneity=0.3, method="cvb", seed=10)
        assert etc.as_array().mean() == pytest.approx(10.0, rel=0.15)

    def test_empty_dag(self, machine):
        etc = generate_etc(TaskDAG(), machine, seed=0)
        assert etc.as_array().shape == (0, 3)
