"""Tests for Chrome-trace export."""

import json

import pytest

from repro.instance import make_instance
from repro.dag.generators import random_dag
from repro.schedulers.heft import HEFT
from repro.sim import execute, save_chrome_trace, to_chrome_trace


@pytest.fixture
def result_and_schedule(topcuoglu_instance):
    schedule = HEFT().schedule(topcuoglu_instance)
    return execute(schedule, topcuoglu_instance), schedule


class TestChromeTrace:
    def test_valid_json_with_events(self, result_and_schedule):
        result, _ = result_and_schedule
        doc = json.loads(to_chrome_trace(result))
        assert "traceEvents" in doc
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(complete) == 10

    def test_thread_per_processor(self, result_and_schedule):
        result, _ = result_and_schedule
        doc = json.loads(to_chrome_trace(result))
        threads = [e for e in doc["traceEvents"]
                   if e.get("ph") == "M" and e["name"] == "thread_name"]
        used_procs = {str(c.proc) for c in result.copies}
        assert len(threads) == len(used_procs)

    def test_timestamps_scale(self, result_and_schedule):
        result, schedule = result_and_schedule
        doc = json.loads(to_chrome_trace(result))
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        latest = max(e["ts"] + e["dur"] for e in complete)
        assert latest == pytest.approx(schedule.makespan * 1000.0)

    def test_duplicate_category(self):
        from repro.core import DuplicationScheduler
        from repro.dag.generators import out_tree_dag

        dag = out_tree_dag(2, 4, cost_scale=5.0, data_scale=40.0)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=1)
        schedule = DuplicationScheduler().schedule(inst)
        if schedule.num_duplicates() == 0:
            pytest.skip("no duplicates on this seed")
        doc = json.loads(to_chrome_trace(execute(schedule, inst)))
        cats = {e.get("cat") for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert "duplicate" in cats

    def test_save(self, result_and_schedule, tmp_path):
        result, _ = result_and_schedule
        path = tmp_path / "trace.json"
        save_chrome_trace(result, path, process_name="demo")
        doc = json.loads(path.read_text())
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "process_name"]
        assert names == ["demo"]

    def test_noisy_trace_args_carry_plan(self, topcuoglu_instance):
        from repro.sim import MultiplicativeNoise

        schedule = HEFT().schedule(topcuoglu_instance)
        result = execute(schedule, topcuoglu_instance, MultiplicativeNoise(0.4, seed=1))
        doc = json.loads(to_chrome_trace(result))
        ev = next(e for e in doc["traceEvents"] if e.get("ph") == "X")
        assert "planned_start" in ev["args"]
