"""Job arrival processes for the online multi-tenant simulator.

The online scenario (:mod:`repro.sim.online`) feeds a stream of jobs —
each an instance *template* drawn from a small catalogue — into a
shared cluster.  This module supplies the stream: a seeded Poisson
process (:class:`PoissonArrivals`, exponential inter-arrival times via
the library's :class:`~numpy.random.SeedSequence` plumbing) and a
trace-driven replay (:class:`TraceArrivals`) of explicit ``(time,
template)`` records, with a JSON round trip so a realized Poisson
stream can be saved and replayed bit-identically.

Determinism contract: realizing the same process with the same seed and
the same template catalogue always yields the same arrival list, byte
for byte, independent of ``PYTHONHASHSEED`` and of the order the
template mapping was assembled in (template names are always sorted
before any random draw consumes them).
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, spawn_children


@dataclass(frozen=True)
class Arrival:
    """One job arrival: a template name lands on the cluster at ``time``."""

    time: float
    template: str
    job_id: str

    def __post_init__(self) -> None:
        if not (self.time >= 0.0):
            raise ConfigurationError(
                f"arrival time must be >= 0, got {self.time!r} for {self.job_id!r}"
            )


def _job_id(index: int) -> str:
    """Canonical job id: zero-padded so lexical order == arrival order."""
    return f"j{index:06d}"


class ArrivalProcess(ABC):
    """A source of job arrivals over a template catalogue."""

    @abstractmethod
    def realize(self, template_names: Sequence[str]) -> list[Arrival]:
        """The full arrival list, sorted by time, job ids assigned in
        arrival order.  ``template_names`` is the catalogue; processes
        sort it internally so the result never depends on input order.
        """


class PoissonArrivals(ArrivalProcess):
    """Poisson job stream: exponential inter-arrival times at ``rate``.

    ``rate`` is jobs per unit time (the inverse of the mean gap).  The
    time stream and the template-choice stream are two independent
    children of ``seed`` (:func:`~repro.utils.rng.spawn_children`), so
    adding templates never perturbs the realized arrival *times* — the
    trace-replay equivalence tests depend on that.
    """

    def __init__(self, rate: float, jobs: int, seed: SeedLike = 0) -> None:
        if not (rate > 0.0):
            raise ConfigurationError(f"rate must be > 0, got {rate!r}")
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
        self.rate = float(rate)
        self.jobs = int(jobs)
        self.seed = seed

    def realize(self, template_names: Sequence[str]) -> list[Arrival]:
        names = sorted(str(n) for n in template_names)
        if not names:
            raise ConfigurationError("no templates to draw arrivals from")
        time_rng, pick_rng = spawn_children(self.seed, 2)
        gaps = time_rng.exponential(1.0 / self.rate, size=self.jobs)
        picks = pick_rng.integers(0, len(names), size=self.jobs)
        out: list[Arrival] = []
        t = 0.0
        for i in range(self.jobs):
            t += float(gaps[i])
            out.append(Arrival(time=t, template=names[int(picks[i])], job_id=_job_id(i)))
        return out


class TraceArrivals(ArrivalProcess):
    """Replay an explicit list of ``(time, template)`` records.

    Records are sorted by ``(time, input position)`` — a stable sort, so
    simultaneous arrivals keep their recorded order — and job ids are
    assigned after sorting, matching what a realized Poisson stream
    would carry.
    """

    def __init__(self, records: Iterable[tuple[float, str]]) -> None:
        recs = [(float(t), str(name)) for t, name in records]
        if not recs:
            raise ConfigurationError("arrival trace is empty")
        order = sorted(range(len(recs)), key=lambda i: (recs[i][0], i))
        self.records: list[tuple[float, str]] = [recs[i] for i in order]

    def realize(self, template_names: Sequence[str]) -> list[Arrival]:
        known = {str(n) for n in template_names}
        out: list[Arrival] = []
        for i, (t, name) in enumerate(self.records):
            if name not in known:
                raise ConfigurationError(
                    f"trace references unknown template {name!r}; "
                    f"known: {', '.join(sorted(known))}"
                )
            out.append(Arrival(time=t, template=name, job_id=_job_id(i)))
        return out


def trace_to_json(arrivals: Sequence[Arrival]) -> str:
    """Serialize a realized arrival stream as a canonical JSON trace.

    Times are stored as float hex strings, so a round trip through
    :func:`trace_from_json` replays the exact same floats.
    """
    doc = {
        "version": 1,
        "arrivals": [
            {"time": a.time.hex(), "template": a.template} for a in arrivals
        ],
    }
    return json.dumps(doc, sort_keys=True)


def trace_from_json(text: str) -> TraceArrivals:
    """Parse a trace produced by :func:`trace_to_json`."""
    try:
        doc = json.loads(text)
        records = [
            (float.fromhex(rec["time"]) if isinstance(rec["time"], str) else float(rec["time"]),
             rec["template"])
            for rec in doc["arrivals"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed arrival trace: {exc}") from exc
    return TraceArrivals(records)
