"""Tests for the parametric random-DAG generator."""

import pytest

from repro.dag.analysis import graph_levels, parallelism_profile
from repro.dag.generators import random_dag
from repro.exceptions import ConfigurationError


class TestBasicProperties:
    def test_task_count_exact(self):
        for n in (1, 7, 50, 173):
            assert random_dag(n, seed=0).num_tasks == n

    def test_acyclic_and_valid(self):
        dag = random_dag(120, seed=1)
        dag.validate()  # raises on any structural problem

    def test_deterministic_per_seed(self):
        a = random_dag(60, seed=5)
        b = random_dag(60, seed=5)
        assert list(a.tasks()) == list(b.tasks())
        assert list(a.edges()) == list(b.edges())
        assert [a.cost(t) for t in a.tasks()] == [b.cost(t) for t in b.tasks()]

    def test_seeds_differ(self):
        a = random_dag(60, seed=5)
        b = random_dag(60, seed=6)
        assert set(a.edges()) != set(b.edges())

    def test_connectivity_only_first_level_entries(self):
        dag = random_dag(80, seed=2)
        levels = graph_levels(dag)
        for t in dag.entry_tasks():
            assert levels[t] == 0

    def test_costs_positive(self):
        dag = random_dag(50, seed=3, avg_cost=10.0)
        assert all(dag.cost(t) > 0 for t in dag.tasks())
        assert all(dag.cost(t) <= 20.0 for t in dag.tasks())


class TestCcrControl:
    @pytest.mark.parametrize("ccr", [0.1, 1.0, 5.0, 10.0])
    def test_ccr_exact(self, ccr):
        dag = random_dag(60, ccr=ccr, seed=4)
        assert dag.ccr() == pytest.approx(ccr, rel=1e-9)

    def test_ccr_zero(self):
        dag = random_dag(60, ccr=0.0, seed=4)
        assert dag.total_data() == 0.0

    def test_single_task_no_edges(self):
        dag = random_dag(1, seed=0)
        assert dag.num_edges == 0


class TestShapeControl:
    def test_fat_graphs_wider(self):
        thin = random_dag(100, shape=0.3, seed=7)
        fat = random_dag(100, shape=3.0, seed=7)
        assert max(parallelism_profile(fat)) > max(parallelism_profile(thin))

    def test_thin_graphs_deeper(self):
        thin = random_dag(100, shape=0.3, seed=8)
        fat = random_dag(100, shape=3.0, seed=8)
        assert len(parallelism_profile(thin)) > len(parallelism_profile(fat))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": 0},
            {"num_tasks": 10, "shape": 0.0},
            {"num_tasks": 10, "shape": -1.0},
            {"num_tasks": 10, "out_degree": 0},
            {"num_tasks": 10, "ccr": -0.5},
            {"num_tasks": 10, "avg_cost": 0.0},
        ],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            random_dag(**kwargs, seed=0)

    def test_out_degree_bound_holds_for_extra_edges(self):
        # Every task has at most out_degree optional children plus the
        # mandatory-connectivity edges *incoming* to the next level; a
        # task's out-degree can exceed out_degree only through those
        # mandatory edges, which each child contributes at most once.
        dag = random_dag(100, out_degree=2, seed=9)
        dag.validate()
