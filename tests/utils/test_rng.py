"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_children


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_generator(123).integers(0, 1_000_000, size=10)
        b = as_generator(123).integers(0, 1_000_000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=10)
        b = as_generator(2).integers(0, 1_000_000, size=10)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq)
        assert isinstance(a, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")

    def test_numpy_integer_accepted(self):
        g = as_generator(np.int64(5))
        h = as_generator(5)
        assert g.integers(0, 100) == h.integers(0, 100)


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 7)) == 7

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_deterministic(self):
        a = [g.integers(0, 10**9) for g in spawn_children(42, 4)]
        b = [g.integers(0, 10**9) for g in spawn_children(42, 4)]
        assert a == b

    def test_children_independent(self):
        kids = spawn_children(42, 3)
        draws = [g.integers(0, 10**9) for g in kids]
        assert len(set(draws)) == 3

    def test_prefix_stability(self):
        # Requesting more children must not change the earlier streams.
        few = [g.integers(0, 10**9) for g in spawn_children(9, 2)]
        many = [g.integers(0, 10**9) for g in spawn_children(9, 5)]
        assert few == many[:2]

    def test_from_generator(self):
        g = np.random.default_rng(3)
        kids = spawn_children(g, 3)
        assert len(kids) == 3
        assert all(isinstance(k, np.random.Generator) for k in kids)
