"""The :class:`Schedule` produced by every scheduler.

A schedule maps each task to one *primary* placement and optionally extra
*duplicate* placements (duplication-based heuristics run redundant copies
of a parent to avoid communication).  Placement bookkeeping is backed by
one :class:`~repro.schedule.timeline.Timeline` per processor, so overlap
violations are impossible to construct silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.exceptions import ScheduleError, UnknownProcessorError
from repro.machine.cluster import Machine
from repro.schedule.timeline import Timeline
from repro.types import ProcId, TaskId


@dataclass(frozen=True)
class ScheduledTask:
    """One placed execution of a task (primary copy or duplicate)."""

    task: TaskId
    proc: ProcId
    start: float
    end: float
    duplicate: bool = False

    def __post_init__(self) -> None:
        if not (self.end >= self.start >= 0):
            raise ScheduleError(
                f"invalid placement of {self.task!r}: [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Schedule:
    """A (possibly partial) assignment of tasks to processor time slots."""

    def __init__(self, machine: Machine, name: str = "schedule") -> None:
        self.name = name
        self.machine = machine
        self._timelines: dict[ProcId, Timeline] = {p: Timeline() for p in machine.proc_ids()}
        self._primary: dict[TaskId, ScheduledTask] = {}
        self._copies: dict[TaskId, list[ScheduledTask]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(
        self,
        task: TaskId,
        proc: ProcId,
        start: float,
        duration: float,
        duplicate: bool = False,
        check: bool = True,
    ) -> ScheduledTask:
        """Place ``task`` on ``proc`` at ``start`` for ``duration``.

        The first non-duplicate placement of a task becomes its primary
        copy; placing a second primary copy raises.  Duplicates may be
        added before or after the primary.  ``check=False`` forwards to
        :meth:`Timeline.add` to skip the overlap scan when the caller
        guarantees feasibility (compiled-executor materialisation).
        """
        if proc not in self._timelines:
            raise UnknownProcessorError(proc)
        if not duplicate and task in self._primary:
            raise ScheduleError(f"task {task!r} already has a primary placement")
        self._timelines[proc].add(start, duration, task, check=check)
        placed = ScheduledTask(task=task, proc=proc, start=start, end=start + duration, duplicate=duplicate)
        if duplicate:
            self._copies.setdefault(task, []).append(placed)
        else:
            self._primary[task] = placed
        return placed

    def remove(self, task: TaskId) -> None:
        """Remove the primary placement of ``task`` (duplicates stay)."""
        placed = self._primary.pop(task, None)
        if placed is None:
            raise ScheduleError(f"task {task!r} has no primary placement")
        self._timelines[placed.proc].remove(task, start=placed.start)

    def remove_duplicate(self, task: TaskId, proc: ProcId) -> None:
        """Remove the duplicate copy of ``task`` running on ``proc``."""
        copies = self._copies.get(task, [])
        for i, placed in enumerate(copies):
            if placed.proc == proc:
                del copies[i]
                if not copies:
                    del self._copies[task]
                self._timelines[proc].remove(task, start=placed.start)
                return
        raise ScheduleError(f"task {task!r} has no duplicate on {proc!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, task: TaskId) -> bool:
        return task in self._primary

    def __len__(self) -> int:
        return len(self._primary)

    def entry(self, task: TaskId) -> ScheduledTask:
        """The primary placement of ``task``."""
        try:
            return self._primary[task]
        except KeyError:
            raise ScheduleError(f"task {task!r} is not scheduled") from None

    def copies(self, task: TaskId) -> list[ScheduledTask]:
        """All placements of ``task``: primary first, then duplicates."""
        primary = self._primary.get(task)
        extra = self._copies.get(task)
        if primary is not None:
            if not extra:
                return [primary]
            return [primary, *extra]
        if extra:
            return list(extra)
        raise ScheduleError(f"task {task!r} is not scheduled")

    def proc_of(self, task: TaskId) -> ProcId:
        """Processor of the primary copy."""
        return self.entry(task).proc

    def start_of(self, task: TaskId) -> float:
        return self.entry(task).start

    def end_of(self, task: TaskId) -> float:
        return self.entry(task).end

    def tasks(self) -> Iterator[TaskId]:
        """Iterate over primarily scheduled task ids."""
        return iter(self._primary)

    def all_placements(self) -> list[ScheduledTask]:
        """All placed copies (primaries and duplicates), unordered."""
        out = list(self._primary.values())
        for extra in self._copies.values():
            out.extend(extra)
        return out

    def proc_entries(self, proc: ProcId) -> list[ScheduledTask]:
        """Placements on one processor ordered by start time."""
        if proc not in self._timelines:
            raise UnknownProcessorError(proc)
        by_key = {}
        for placed in self.all_placements():
            if placed.proc == proc:
                by_key[(placed.start, str(placed.task))] = placed
        return [by_key[k] for k in sorted(by_key)]

    def timeline(self, proc: ProcId) -> Timeline:
        """The (live) timeline of one processor."""
        try:
            return self._timelines[proc]
        except KeyError:
            raise UnknownProcessorError(proc) from None

    @property
    def makespan(self) -> float:
        """Latest finish time over all placed copies (0.0 when empty)."""
        placements = self.all_placements()
        return max((p.end for p in placements), default=0.0)

    def procs_used(self) -> list[ProcId]:
        """Processors with at least one placement."""
        return [p for p, tl in self._timelines.items() if len(tl) > 0]

    def num_duplicates(self) -> int:
        """Total number of duplicate placements."""
        return sum(len(v) for v in self._copies.values())

    def assignment(self) -> Mapping[TaskId, ProcId]:
        """Task -> processor mapping of the primary copies."""
        return {t: p.proc for t, p in self._primary.items()}

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def gantt(self, width: int = 72) -> str:
        """Render a proportional ASCII Gantt chart (one row per processor)."""
        span = self.makespan
        lines = [f"schedule {self.name!r}  makespan={span:g}"]
        if span <= 0:
            return lines[0]
        for proc in self.machine.proc_ids():
            entries = self.proc_entries(proc)
            row = [" "] * width
            for placed in entries:
                lo = min(width - 1, int(placed.start / span * width))
                hi = min(width, max(lo + 1, int(placed.end / span * width)))
                label = str(placed.task)
                for i in range(lo, hi):
                    off = i - lo
                    row[i] = label[off] if off < len(label) else ("." if placed.duplicate else "#")
            lines.append(f"P{proc!s:<4}|" + "".join(row) + "|")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.name!r}, tasks={len(self._primary)}, "
            f"dups={self.num_duplicates()}, makespan={self.makespan:g})"
        )
