"""Tests for the Schedule container."""

import pytest

from repro.exceptions import ScheduleError, UnknownProcessorError
from repro.machine.cluster import Machine
from repro.schedule.schedule import Schedule


@pytest.fixture
def machine() -> Machine:
    return Machine.homogeneous(3)


@pytest.fixture
def schedule(machine) -> Schedule:
    s = Schedule(machine, name="s")
    s.add("a", 0, 0.0, 2.0)
    s.add("b", 1, 1.0, 3.0)
    s.add("c", 0, 2.0, 1.0)
    return s


class TestAdd:
    def test_basic(self, schedule):
        assert len(schedule) == 3
        assert schedule.proc_of("b") == 1
        assert schedule.start_of("c") == 2.0
        assert schedule.end_of("c") == 3.0

    def test_makespan(self, schedule):
        assert schedule.makespan == 4.0

    def test_duplicate_primary_rejected(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.add("a", 2, 0.0, 1.0)

    def test_unknown_proc(self, schedule):
        with pytest.raises(UnknownProcessorError):
            schedule.add("x", 99, 0.0, 1.0)

    def test_overlap_rejected(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.add("x", 0, 0.5, 1.0)

    def test_duplicate_copies(self, schedule):
        schedule.add("a", 2, 0.0, 2.0, duplicate=True)
        assert schedule.num_duplicates() == 1
        copies = schedule.copies("a")
        assert len(copies) == 2
        assert copies[0].duplicate is False  # primary first

    def test_duplicate_before_primary_allowed(self, machine):
        s = Schedule(machine)
        s.add("z", 0, 0.0, 1.0, duplicate=True)
        s.add("z", 1, 0.0, 1.0)
        assert len(s.copies("z")) == 2


class TestQueries:
    def test_contains(self, schedule):
        assert "a" in schedule and "zzz" not in schedule

    def test_entry_missing(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.entry("ghost")

    def test_copies_missing(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.copies("ghost")

    def test_proc_entries_sorted(self, schedule):
        entries = schedule.proc_entries(0)
        assert [e.task for e in entries] == ["a", "c"]

    def test_proc_entries_unknown(self, schedule):
        with pytest.raises(UnknownProcessorError):
            schedule.proc_entries(42)

    def test_procs_used(self, schedule):
        assert set(schedule.procs_used()) == {0, 1}

    def test_assignment(self, schedule):
        assert schedule.assignment() == {"a": 0, "b": 1, "c": 0}

    def test_all_placements_includes_duplicates(self, schedule):
        schedule.add("b", 2, 0.0, 3.0, duplicate=True)
        assert len(schedule.all_placements()) == 4

    def test_empty_makespan(self, machine):
        assert Schedule(machine).makespan == 0.0


class TestRemove:
    def test_remove_primary(self, schedule):
        schedule.remove("c")
        assert "c" not in schedule
        assert len(schedule.proc_entries(0)) == 1

    def test_remove_missing(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.remove("ghost")

    def test_remove_then_readd(self, schedule):
        schedule.remove("c")
        schedule.add("c", 2, 0.0, 1.0)
        assert schedule.proc_of("c") == 2

    def test_remove_duplicate(self, schedule):
        schedule.add("a", 2, 0.0, 2.0, duplicate=True)
        schedule.remove_duplicate("a", 2)
        assert schedule.num_duplicates() == 0
        assert "a" in schedule  # primary untouched

    def test_remove_duplicate_missing(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.remove_duplicate("a", 2)

    def test_remove_primary_keeps_duplicate(self, machine):
        s = Schedule(machine)
        s.add("z", 0, 0.0, 1.0)
        s.add("z", 1, 0.0, 1.0, duplicate=True)
        s.remove("z")
        assert "z" not in s
        assert len(s.copies("z")) == 1


class TestGantt:
    def test_contains_all_procs(self, schedule):
        text = schedule.gantt()
        assert text.count("|") >= 6  # three processor rows

    def test_empty(self, machine):
        assert "makespan" in Schedule(machine).gantt()

    def test_duplicate_marked(self, schedule):
        schedule.add("a", 2, 0.0, 2.0, duplicate=True)
        assert "." in schedule.gantt(width=40)
