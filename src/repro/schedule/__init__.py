"""Schedule representation, feasibility validation and quality metrics."""

from repro.schedule.timeline import Slot, Timeline
from repro.schedule.schedule import Schedule, ScheduledTask
from repro.schedule.validation import validate, violations
from repro.schedule.diff import ScheduleDiff, TaskMove, diff_report, diff_schedules
from repro.schedule.io import (
    load_schedule,
    save_schedule,
    save_svg,
    schedule_from_json,
    schedule_to_json,
    schedule_to_svg,
)
from repro.schedule.metrics import (
    efficiency,
    load_balance,
    makespan,
    num_duplicates,
    pairwise_comparison,
    slr,
    speedup,
    total_idle_time,
)

__all__ = [
    "Slot",
    "Timeline",
    "Schedule",
    "ScheduledTask",
    "validate",
    "violations",
    "efficiency",
    "load_balance",
    "makespan",
    "num_duplicates",
    "pairwise_comparison",
    "slr",
    "speedup",
    "total_idle_time",
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
    "schedule_to_svg",
    "save_svg",
    "ScheduleDiff",
    "TaskMove",
    "diff_schedules",
    "diff_report",
]
