"""Tests for repro.dag.graph.TaskDAG."""

import pytest

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import (
    CostError,
    CycleError,
    DuplicateTaskError,
    GraphError,
    UnknownTaskError,
)


@pytest.fixture
def dag() -> TaskDAG:
    d = TaskDAG("t")
    for tid, cost in (("a", 2.0), ("b", 4.0), ("c", 3.0)):
        d.add_task(Task(tid, cost=cost))
    d.add_edge("a", "b", data=5.0)
    d.add_edge("b", "c", data=1.0)
    return d


class TestConstruction:
    def test_add_task_object(self):
        d = TaskDAG()
        t = d.add_task(Task("x", cost=7.0))
        assert t.cost == 7.0 and d.has_task("x")

    def test_add_task_bare_id(self):
        d = TaskDAG()
        t = d.add_task("x", cost=3.0)
        assert t.cost == 3.0

    def test_add_task_default_cost(self):
        d = TaskDAG()
        assert d.add_task("x").cost == 1.0

    def test_cost_both_ways_rejected(self):
        d = TaskDAG()
        with pytest.raises(ValueError):
            d.add_task(Task("x", cost=1.0), cost=2.0)

    def test_duplicate_task_rejected(self, dag):
        with pytest.raises(DuplicateTaskError):
            dag.add_task("a")

    def test_edge_to_unknown_rejected(self, dag):
        with pytest.raises(UnknownTaskError):
            dag.add_edge("a", "zzz")
        with pytest.raises(UnknownTaskError):
            dag.add_edge("zzz", "a")

    def test_self_loop_rejected(self, dag):
        with pytest.raises(CycleError):
            dag.add_edge("a", "a")

    def test_cycle_rejected(self, dag):
        with pytest.raises(CycleError):
            dag.add_edge("c", "a")

    def test_duplicate_edge_rejected(self, dag):
        with pytest.raises(GraphError):
            dag.add_edge("a", "b")

    def test_negative_data_rejected(self, dag):
        with pytest.raises(CostError):
            dag.add_edge("a", "c", data=-1.0)

    def test_nan_data_rejected(self, dag):
        with pytest.raises(CostError):
            dag.add_edge("a", "c", data=float("nan"))


class TestQueries:
    def test_counts(self, dag):
        assert dag.num_tasks == 3 and dag.num_edges == 2
        assert len(dag) == 3

    def test_contains(self, dag):
        assert "a" in dag and "zzz" not in dag

    def test_cost_and_data(self, dag):
        assert dag.cost("b") == 4.0
        assert dag.data("a", "b") == 5.0

    def test_data_missing_edge(self, dag):
        with pytest.raises(GraphError):
            dag.data("a", "c")

    def test_unknown_task_lookup(self, dag):
        with pytest.raises(UnknownTaskError):
            dag.task("zzz")
        with pytest.raises(UnknownTaskError):
            dag.predecessors("zzz")

    def test_neighbours(self, dag):
        assert dag.predecessors("b") == ["a"]
        assert dag.successors("b") == ["c"]
        assert dag.in_degree("b") == 1 and dag.out_degree("b") == 1

    def test_entry_exit(self, dag):
        assert dag.entry_tasks() == ["a"]
        assert dag.exit_tasks() == ["c"]

    def test_totals(self, dag):
        assert dag.total_cost() == pytest.approx(9.0)
        assert dag.total_data() == pytest.approx(6.0)
        assert dag.ccr() == pytest.approx(6.0 / 9.0)

    def test_ccr_zero_cost_graph(self):
        d = TaskDAG()
        d.add_task(Task("x", cost=0.0))
        assert d.ccr() == 0.0


class TestTopologicalOrder:
    def test_parents_first(self, dag):
        order = dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_deterministic_across_calls(self, dag):
        assert dag.topological_order() == dag.topological_order()

    def test_cache_invalidated_on_mutation(self, dag):
        dag.topological_order()
        dag.add_task("z")
        assert "z" in dag.topological_order()

    def test_insertion_order_independent(self):
        d1 = TaskDAG()
        d2 = TaskDAG()
        for tid in ("x", "y", "z"):
            d1.add_task(tid)
        for tid in ("z", "y", "x"):
            d2.add_task(tid)
        for d in (d1, d2):
            d.add_edge("x", "z")
        assert d1.topological_order() == d2.topological_order()


class TestMutation:
    def test_set_cost(self, dag):
        dag.set_cost("a", 10.0)
        assert dag.cost("a") == 10.0

    def test_set_data(self, dag):
        dag.set_data("a", "b", 9.0)
        assert dag.data("a", "b") == 9.0

    def test_set_data_missing_edge(self, dag):
        with pytest.raises(GraphError):
            dag.set_data("a", "c", 1.0)

    def test_set_data_negative(self, dag):
        with pytest.raises(CostError):
            dag.set_data("a", "b", -1.0)

    def test_remove_task(self, dag):
        dag.remove_task("b")
        assert not dag.has_task("b")
        assert dag.num_edges == 0

    def test_remove_unknown(self, dag):
        with pytest.raises(UnknownTaskError):
            dag.remove_task("zzz")


class TestFromEdges:
    def test_basic(self):
        d = TaskDAG.from_edges([("a", "b", 2.0), ("b", "c")], costs={"a": 5.0})
        assert d.num_tasks == 3
        assert d.cost("a") == 5.0
        assert d.cost("b") == 1.0
        assert d.data("a", "b") == 2.0
        assert d.data("b", "c") == 0.0

    def test_isolated_task_via_costs(self):
        d = TaskDAG.from_edges([("a", "b")], costs={"lonely": 3.0})
        assert d.has_task("lonely") and d.out_degree("lonely") == 0

    def test_cycle_detected(self):
        with pytest.raises(CycleError):
            TaskDAG.from_edges([("a", "b"), ("b", "a")])


class TestTransformations:
    def test_copy_independent(self, dag):
        clone = dag.copy()
        clone.add_task("new")
        assert not dag.has_task("new")
        assert clone.cost("a") == dag.cost("a")

    def test_relabel(self, dag):
        new = dag.relabel({"a": "A"})
        assert new.has_task("A") and not new.has_task("a")
        assert new.data("A", "b") == 5.0
        # Original untouched.
        assert dag.has_task("a")

    def test_relabel_collision_rejected(self, dag):
        with pytest.raises(GraphError):
            dag.relabel({"a": "b"})

    def test_virtual_endpoints_multi(self):
        d = TaskDAG.from_edges([("a", "c"), ("b", "c"), ("c", "d"), ("c", "e")])
        v = d.with_virtual_endpoints()
        assert len(v.entry_tasks()) == 1
        assert len(v.exit_tasks()) == 1
        assert v.cost(v.entry_tasks()[0]) == 0.0

    def test_virtual_endpoints_noop_when_single(self, dag):
        v = dag.with_virtual_endpoints()
        assert v.num_tasks == dag.num_tasks

    def test_to_networkx_is_copy(self, dag):
        g = dag.to_networkx()
        g.remove_node("a")
        assert dag.has_task("a")

    def test_validate_ok(self, dag):
        dag.validate()


class TestIterators:
    def test_tasks_and_objects_aligned(self, dag):
        ids = list(dag.tasks())
        objs = list(dag.task_objects())
        assert [t.id for t in objs] == ids

    def test_edges(self, dag):
        assert set(dag.edges()) == {("a", "b"), ("b", "c")}
