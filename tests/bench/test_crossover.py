"""Tests for the crossover finder."""

import pytest

from repro.bench.crossover import Crossover, find_crossover
from repro.exceptions import ConfigurationError


class TestFindCrossover:
    def test_no_crossover_when_dominated(self):
        # IMP never loses to HEFT, so the paired SLR difference never
        # changes sign: the search must report "not found", not a fake
        # point.
        res = find_crossover("IMP", "HEFT", parameter="ccr",
                             lo=0.2, hi=5.0, reps=2, iterations=3, seed=1)
        assert not res.found
        assert res.diff_lo <= 1e-12 and res.diff_hi <= 1e-12

    def test_tds_crossover_vs_heft(self):
        # Whole-chain duplication (TDS) is dreadful at low CCR but can
        # overtake naive placement as communication explodes; against
        # Random it crosses somewhere in a wide CCR band.
        res = find_crossover("TDS", "Random", parameter="ccr",
                             lo=0.1, hi=30.0, reps=3, iterations=5, seed=2)
        # Either a crossover is found inside the band, or TDS is on one
        # side throughout — both are structured answers; assert the
        # bracket bookkeeping is consistent.
        assert isinstance(res, Crossover)
        if res.found:
            assert res.lo <= res.point <= res.hi

    def test_custom_factory(self):
        from repro.bench import workloads as W

        calls = []

        def factory(x, rng):
            calls.append(x)
            return W.random_instance(rng, num_tasks=20, ccr=x)

        find_crossover("HEFT", "CPOP", lo=0.5, hi=2.0,
                       make_instance_at=factory, reps=1, iterations=2, seed=3)
        assert 0.5 in calls and 2.0 in calls

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            find_crossover("HEFT", "CPOP", lo=5.0, hi=1.0)
        with pytest.raises(ConfigurationError):
            find_crossover("HEFT", "CPOP", reps=0)
        with pytest.raises(ConfigurationError):
            find_crossover("HEFT", "CPOP", parameter="nope")

    def test_deterministic(self):
        a = find_crossover("HEFT", "CPOP", lo=0.2, hi=5.0, reps=2,
                           iterations=3, seed=4)
        b = find_crossover("HEFT", "CPOP", lo=0.2, hi=5.0, reps=2,
                           iterations=3, seed=4)
        assert a == b
