"""Crossover finding: where does one scheduler overtake another?

Evaluation narratives hinge on crossover points ("duplication pays once
CCR exceeds ~2").  :func:`find_crossover` locates such a point along a
workload parameter by bisection on the *paired mean difference* of two
schedulers' SLRs, giving the narrative a number instead of a squint at
a figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench import workloads as W
from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.schedule.metrics import slr
from repro.schedulers.registry import get_scheduler
from repro.utils.rng import spawn_children


@dataclass(frozen=True)
class Crossover:
    """Outcome of a crossover search along one parameter."""

    parameter: str
    lo: float
    hi: float
    point: float | None  # None when no sign change in [lo, hi]
    diff_lo: float
    diff_hi: float

    @property
    def found(self) -> bool:
        return self.point is not None


def _mean_diff(
    a: str,
    b: str,
    make_instance_at: Callable[[float, np.random.Generator], Instance],
    x: float,
    reps: int,
    seed: int,
) -> float:
    """Mean over paired instances of SLR(a) - SLR(b) at parameter x."""
    diffs = []
    for rng in spawn_children(seed, reps):
        inst = make_instance_at(x, rng)
        sa = slr(get_scheduler(a).schedule(inst), inst)
        sb = slr(get_scheduler(b).schedule(inst), inst)
        diffs.append(sa - sb)
    return float(np.mean(diffs))


def find_crossover(
    scheduler_a: str,
    scheduler_b: str,
    parameter: str = "ccr",
    lo: float = 0.1,
    hi: float = 10.0,
    make_instance_at: Callable[[float, np.random.Generator], Instance] | None = None,
    reps: int = 5,
    iterations: int = 8,
    seed: int = 0,
) -> Crossover:
    """Bisect for the parameter value where A and B swap ranking.

    The objective is the paired mean ``SLR(A) − SLR(B)``; a crossover
    exists in ``[lo, hi]`` when its sign differs at the endpoints.  The
    default instance factory sweeps the named parameter of the standard
    random workload; pass ``make_instance_at`` for custom families.
    Because the objective is stochastic, the returned point is the
    midpoint of the final bisection bracket, not an exact root.
    """
    if lo >= hi:
        raise ConfigurationError(f"need lo < hi, got [{lo}, {hi}]")
    if reps < 1 or iterations < 1:
        raise ConfigurationError("reps and iterations must be >= 1")

    if make_instance_at is None:
        valid = {"ccr", "heterogeneity", "num_tasks", "num_procs"}
        if parameter not in valid:
            raise ConfigurationError(
                f"unknown parameter {parameter!r}; valid: {sorted(valid)}"
            )

        def make_instance_at(x, rng, _p=parameter):
            kwargs = {_p: int(round(x)) if _p in ("num_tasks", "num_procs") else x}
            return W.random_instance(rng, **kwargs)

    diff_lo = _mean_diff(scheduler_a, scheduler_b, make_instance_at, lo, reps, seed)
    diff_hi = _mean_diff(scheduler_a, scheduler_b, make_instance_at, hi, reps, seed)
    if diff_lo == 0.0:
        return Crossover(parameter, lo, hi, lo, diff_lo, diff_hi)
    if diff_hi == 0.0:
        return Crossover(parameter, lo, hi, hi, diff_lo, diff_hi)
    if np.sign(diff_lo) == np.sign(diff_hi):
        return Crossover(parameter, lo, hi, None, diff_lo, diff_hi)

    a_lo, a_hi = lo, hi
    f_lo = diff_lo
    for _ in range(iterations):
        mid = 0.5 * (a_lo + a_hi)
        f_mid = _mean_diff(scheduler_a, scheduler_b, make_instance_at, mid, reps, seed)
        if f_mid == 0.0:
            a_lo = a_hi = mid
            break
        if np.sign(f_mid) == np.sign(f_lo):
            a_lo, f_lo = mid, f_mid
        else:
            a_hi = mid
    return Crossover(parameter, lo, hi, 0.5 * (a_lo + a_hi), diff_lo, diff_hi)
