"""LMT — Levelized Min Time (Iverson, Özgüner & Follen, 1995).

A two-phase level-by-level heuristic: tasks are grouped by ASAP depth
(all precedence constraints run between levels), then within each level
tasks are taken largest-average-cost first and each goes to the
processor minimising its completion time given the machine state.  One
of the standard low-cost heterogeneous baselines.
"""

from __future__ import annotations

from repro.dag.analysis import graph_levels
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, eft_placement


class LMT(Scheduler):
    """Levelized Min Time scheduler."""

    name = "LMT"

    def schedule(self, instance: Instance) -> Schedule:
        dag = instance.dag
        levels = graph_levels(dag)
        pos = {t: i for i, t in enumerate(dag.topological_order())}
        max_level = max(levels.values(), default=0)

        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        for lvl in range(max_level + 1):
            members = [t for t in dag.tasks() if levels[t] == lvl]
            members.sort(key=lambda t: (-instance.avg_exec_time(t), pos[t]))
            for task in members:
                placed = eft_placement(schedule, instance, task, insertion=True)
                schedule.add(task, placed.proc, placed.start, placed.end - placed.start)
        return schedule
