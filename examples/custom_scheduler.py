#!/usr/bin/env python3
"""Extending the library: write your own scheduler, benchmark it against
the built-ins, and dissect the schedules it produces.

The custom scheduler below ("CP-GREEDY") pins the critical path to the
fastest processor (like CPOP) but places everything else by earliest
*start* instead of earliest finish — a plausible-looking policy that the
comparison will show is mediocre, which is exactly why the one-call
benchmark API exists.

Run:  python examples/custom_scheduler.py
"""

from repro import Instance, Schedule, Scheduler
from repro.bench import compare_schedulers
from repro.dag.suites import application_suite
from repro.schedule.analysis import explain
from repro.schedule.io import schedule_to_svg
from repro.schedulers.base import est_placement, placement_on
from repro.schedulers.ranking import critical_path_tasks, upward_ranks


class CriticalPathGreedy(Scheduler):
    """Pin the CP to the fastest processor, EST-place the rest."""

    name = "CP-GREEDY"

    def schedule(self, instance: Instance) -> Schedule:
        ranks = upward_ranks(instance)
        pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
        order = sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))

        cp = set(critical_path_tasks(instance))
        # "Fastest" processor: the one minimising total CP execution time.
        procs = instance.machine.proc_ids()
        cp_proc = min(procs, key=lambda p: sum(instance.exec_time(t, p) for t in cp))

        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        for task in order:
            if task in cp:
                placed = placement_on(schedule, instance, task, cp_proc)
            else:
                placed = est_placement(schedule, instance, task)
            schedule.add(task, placed.proc, placed.start, placed.end - placed.start)
        return schedule


def main() -> None:
    # One call: run mine + three built-ins over the application suite,
    # with three independent ETC draws per kernel, all validated.
    result = compare_schedulers(
        [CriticalPathGreedy(), "IMP", "HEFT", "CPOP"],
        application_suite(scale=1),
        num_procs=6,
        heterogeneity=0.5,
        etc_draws=3,
        seed=42,
    )
    print(result.report())
    better, equal, worse = result.pairwise[("CP-GREEDY", "HEFT")]
    print(f"\nCP-GREEDY vs HEFT: better {better:.0f}%, equal {equal:.0f}%, "
          f"worse {worse:.0f}%")

    # Dissect one schedule: where does my makespan come from?
    from repro import make_instance
    from repro.dag.generators import gaussian_elimination_dag

    inst = make_instance(gaussian_elimination_dag(6), num_procs=6,
                         heterogeneity=0.5, seed=42)
    mine = CriticalPathGreedy().schedule(inst)
    print()
    print(explain(mine, inst))

    svg = schedule_to_svg(mine)
    out = "cp_greedy_gauss6.svg"
    with open(out, "w") as fh:
        fh.write(svg)
    print(f"\nGantt chart written to {out}")


if __name__ == "__main__":
    main()
