"""Shared list-scheduling machinery.

All list schedulers follow the same two-phase loop:

1. pick the next task according to a *priority policy*,
2. pick a processor and start time according to a *placement policy*.

This module supplies the placement side — duplication-aware ready times,
earliest-start/earliest-finish computation with or without insertion —
plus the :class:`Scheduler` interface and a :class:`ListScheduler`
template so each algorithm only spells out its policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SchedulingError, UnknownProcessorError
from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.obs import get_tracer
from repro.schedule.schedule import Schedule
from repro.types import ProcId, TaskId


class Scheduler(ABC):
    """A static scheduling algorithm.

    Subclasses set :attr:`name` (used in experiment tables) and implement
    :meth:`schedule`.  Schedulers must be deterministic for a given
    instance unless they explicitly take a seed.
    """

    #: Display name used by the registry and experiment reports.
    name: str = "scheduler"

    @abstractmethod
    def schedule(self, instance: Instance) -> Schedule:
        """Produce a complete, feasible schedule for ``instance``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def ready_time(
    schedule: Schedule,
    instance: Instance,
    task: TaskId,
    proc: ProcId,
) -> float:
    """Earliest data-ready time of ``task`` on ``proc``.

    The maximum over parents of the earliest moment that parent's output
    can be present on ``proc``; each parent contributes the minimum over
    its placed copies (primary or duplicate) of ``end + comm``.  Raises
    :class:`SchedulingError` if some parent is not placed yet — priority
    policies must only submit ready tasks.
    """
    if kernels_enabled():
        kern = instance.kernel
        consts = kern.out_const
        if consts is not None:
            preds = kern.pred[task]
            # Legacy only touches the comm model (and hence validates
            # ``proc``) when there is at least one parent.
            if preds and proc not in kern.pi:
                raise UnknownProcessorError(proc)
            ready = 0.0
            for parent in preds:
                if parent not in schedule:
                    raise SchedulingError(f"parent {parent!r} of {task!r} is unscheduled")
                const = consts[parent][task]
                arrival = float("inf")
                # copy.end + 0.0 == copy.end (times are >= 0), so the
                # same-processor branch matches the zero-comm case bit
                # for bit.
                for copy in schedule.copies(parent):
                    cand = copy.end if copy.proc == proc else copy.end + const
                    if cand < arrival:
                        arrival = cand
                if arrival > ready:
                    ready = arrival
            return ready
    ready = 0.0
    for parent in instance.predecessors_of(task):
        if parent not in schedule:
            raise SchedulingError(f"parent {parent!r} of {task!r} is unscheduled")
        arrival = float("inf")
        for copy in schedule.copies(parent):
            cand = copy.end + instance.comm_time(parent, task, copy.proc, proc)
            if cand < arrival:
                arrival = cand
        if arrival > ready:
            ready = arrival
    return ready


@dataclass(frozen=True)
class Placement:
    """A candidate placement of one task."""

    proc: ProcId
    start: float
    end: float

    @property
    def finish(self) -> float:
        return self.end


def placement_on(
    schedule: Schedule,
    instance: Instance,
    task: TaskId,
    proc: ProcId,
    insertion: bool = True,
) -> Placement:
    """Earliest placement of ``task`` on a specific processor."""
    duration = instance.exec_time(task, proc)
    ready = ready_time(schedule, instance, task, proc)
    start = schedule.timeline(proc).find_slot(ready, duration, insertion=insertion)
    return Placement(proc=proc, start=start, end=start + duration)


def schedule_task_on(
    schedule: Schedule,
    instance: Instance,
    task: TaskId,
    proc: ProcId,
    insertion: bool = True,
):
    """Place ``task`` on ``proc`` at its earliest slot, in one step.

    The same float sequence as :func:`placement_on` followed by
    ``schedule.add`` — duration, ready time, insertion slot search —
    without materialising the intermediate :class:`Placement`.  This is
    the object-path decoder's per-task step (the compiled core replays
    it over flat arrays); returns the :class:`ScheduledTask` recorded.
    """
    duration = instance.exec_time(task, proc)
    ready = ready_time(schedule, instance, task, proc)
    start = schedule.timeline(proc).find_slot(ready, duration, insertion=insertion)
    # ``end - start`` (not ``duration``) replays the historical float
    # sequence Placement callers produce; the recorded end is
    # ``start + (end - start)``, which can differ from ``start +
    # duration`` in the last ulp.  Bit-compatibility with existing
    # schedules (and the compiled decoder) depends on matching it.
    end = start + duration
    return schedule.add(task, proc, start, end - start)


def _batched_ready(schedule: Schedule, instance: Instance, task: TaskId):
    """Kernel-backed ready times for all processors at once, or ``None``.

    Only valid when the candidate processors are exactly
    ``machine.proc_ids()`` (the kernel's canonical order).
    """
    if not kernels_enabled():
        return None
    return instance.kernel.ready_times(schedule, task)


def eft_placement(
    schedule: Schedule,
    instance: Instance,
    task: TaskId,
    insertion: bool = True,
    procs: Sequence[ProcId] | None = None,
) -> Placement:
    """Earliest-finish-time placement across processors (HEFT's rule).

    Ties on finish time break deterministically by processor order so
    runs are reproducible.
    """
    candidates = procs if procs is not None else instance.machine.proc_ids()
    if not candidates:
        raise SchedulingError("no candidate processors")
    ready_vec = _batched_ready(schedule, instance, task) if procs is None else None
    best: Placement | None = None
    if ready_vec is not None:
        for j, proc in enumerate(candidates):
            duration = instance.exec_time(task, proc)
            start = schedule.timeline(proc).find_slot(
                float(ready_vec[j]), duration, insertion=insertion
            )
            end = start + duration
            if best is None or end < best.end - 1e-12:
                best = Placement(proc=proc, start=start, end=end)
        assert best is not None
        return best
    for proc in candidates:
        cand = placement_on(schedule, instance, task, proc, insertion=insertion)
        if best is None or cand.end < best.end - 1e-12:
            best = cand
    assert best is not None
    return best


def est_placement(
    schedule: Schedule,
    instance: Instance,
    task: TaskId,
    insertion: bool = True,
    procs: Sequence[ProcId] | None = None,
) -> Placement:
    """Earliest-start-time placement across processors (ETF's rule)."""
    candidates = procs if procs is not None else instance.machine.proc_ids()
    if not candidates:
        raise SchedulingError("no candidate processors")
    ready_vec = _batched_ready(schedule, instance, task) if procs is None else None
    best: Placement | None = None
    if ready_vec is not None:
        for j, proc in enumerate(candidates):
            duration = instance.exec_time(task, proc)
            start = schedule.timeline(proc).find_slot(
                float(ready_vec[j]), duration, insertion=insertion
            )
            if best is None or start < best.start - 1e-12:
                best = Placement(proc=proc, start=start, end=start + duration)
        assert best is not None
        return best
    for proc in candidates:
        cand = placement_on(schedule, instance, task, proc, insertion=insertion)
        if best is None or cand.start < best.start - 1e-12:
            best = cand
    assert best is not None
    return best


def topological_by_priority(dag, key) -> list[TaskId]:
    """Kahn's algorithm driven by a priority key (smaller = earlier).

    Produces a valid topological order that follows ``key(task)`` as
    closely as precedence allows.  Use this when a priority metric can
    tie or invert across an edge (zero-cost chains), where naive sorting
    could emit a child before its parent.
    """
    import heapq

    indegree = {t: dag.in_degree(t) for t in dag.tasks()}
    heap = [(key(t), i, t) for i, t in enumerate(dag.tasks()) if indegree[t] == 0]
    heapq.heapify(heap)
    out: list[TaskId] = []
    while heap:
        _, _, task = heapq.heappop(heap)
        out.append(task)
        for child in dag.successors(task):
            indegree[child] -= 1
            if indegree[child] == 0:
                heapq.heappush(heap, (key(child), len(out), child))
    if len(out) != dag.num_tasks:
        raise SchedulingError("graph contains a cycle or disconnected bookkeeping")
    return out


def compiled_for(instance: Instance):
    """The instance's compiled executor when routing is allowed, else ``None``.

    The compiled path engages only when the kernel layer and the
    executor switch are on *and* tracing is off — traced runs keep the
    object path so the golden span shapes (``sched.rank``/``place``/
    ``insert``) stay intact.  A ``None`` from :func:`compile_instance`
    (per-link communication model) is recorded as an object-path
    fallback for the service counters.
    """
    from repro import compiled as compiled_mod

    if not kernels_enabled() or not compiled_mod.executor_enabled():
        return None
    if get_tracer().enabled:
        return None
    ci = compiled_mod.compile_instance(instance)
    if ci is None:
        compiled_mod.note_fallback()
    return ci


class ListScheduler(Scheduler):
    """Template for static-priority list schedulers.

    Subclasses provide :meth:`priority_order` (a full topological-
    compatible task order) and optionally override :meth:`place` (the
    default is insertion-based EFT).
    """

    #: Whether the placement phase may use idle-gap insertion.
    insertion: bool = True

    #: Placement policy of the compiled executor ("eft"/"est"); ``None``
    #: keeps the scheduler on the object path (custom ``place``
    #: overrides the template cannot express in flat form).
    compiled_policy: str | None = None

    @abstractmethod
    def priority_order(self, instance: Instance) -> list[TaskId]:
        """Full task order; every task must appear after its parents."""

    def place(self, schedule: Schedule, instance: Instance, task: TaskId) -> Placement:
        """Choose a processor and start time for ``task``."""
        return eft_placement(schedule, instance, task, insertion=self.insertion)

    def schedule(self, instance: Instance) -> Schedule:
        tracer = get_tracer()
        ci = compiled_for(instance) if self.compiled_policy is not None else None
        if ci is not None:
            order = self.priority_order(instance)
            if set(order) != set(instance.dag.tasks()) or len(order) != instance.num_tasks:
                raise SchedulingError(
                    f"{self.name}: priority order covers {len(order)} tasks, "
                    f"instance has {instance.num_tasks}"
                )
            result = ci.schedule_list(
                ci.order_indices(order),
                insertion=self.insertion,
                policy=self.compiled_policy,
            )
            return ci.materialize(
                result, instance.machine, f"{self.name}:{instance.name}"
            )
        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        with tracer.span("sched.run", alg=self.name, tasks=instance.num_tasks) as run:
            with tracer.span("sched.rank", alg=self.name):
                order = self.priority_order(instance)
            if set(order) != set(instance.dag.tasks()) or len(order) != instance.num_tasks:
                raise SchedulingError(
                    f"{self.name}: priority order covers {len(order)} tasks, "
                    f"instance has {instance.num_tasks}"
                )
            with tracer.span("sched.place", alg=self.name):
                if tracer.enabled:
                    for task in order:
                        with tracer.span("sched.insert", task=str(task)):
                            placed = self.place(schedule, instance, task)
                            schedule.add(
                                task, placed.proc, placed.start, placed.end - placed.start
                            )
                else:
                    for task in order:
                        placed = self.place(schedule, instance, task)
                        schedule.add(
                            task, placed.proc, placed.start, placed.end - placed.start
                        )
            if tracer.enabled:
                tracer.count("sched.tasks_placed", len(order))
                run.set(makespan=schedule.makespan)
        return schedule
