"""E5 — Average SLR vs graph shape alpha.

Expected shape: fat graphs (alpha > 1) carry more parallelism, so their
SLR is lower than thin graphs' at the same size; the improved scheduler
dominates HEFT at every alpha.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e5_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e5_shape(quick):
    res = e5_data(quick)
    print("\n" + res.table("E5: average SLR vs shape alpha"))
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    for i, _ in enumerate(res.x_values):
        assert res.series["IMP"][i] <= res.series["HEFT"][i] + 1e-9


def test_e5_thin_vs_fat_parallelism(quick):
    # Structural sanity behind the figure: fat graphs yield higher
    # speedups than thin ones for HEFT.
    from repro.bench.runner import run_sweep

    res = run_sweep(
        ["HEFT"], "alpha", [0.5, 2.0],
        lambda a, rng: W.random_instance(rng, shape=a),
        reps=W.reps(quick), metric="speedup", seed=205,
    )
    assert res.series["HEFT"][1] > res.series["HEFT"][0]


def test_e5_benchmark_thin_graph(benchmark):
    rng = np.random.default_rng(205)
    inst = W.random_instance(rng, num_tasks=100, shape=0.5)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
