"""Scientific-workflow shaped task graphs.

Three workflow families used by the example programs and the
application experiments:

* :func:`montage_dag` — the shape of the Montage astronomy mosaic
  pipeline (project / fit / background-model / background-correct /
  assemble), parametrised by the number of input images,
* :func:`mapreduce_dag` — map fan-out, all-to-all shuffle, reduce fan-in,
* :func:`pipeline_dag` — ``p`` parallel pipelines of ``s`` stages with
  optional nearest-neighbour coupling (stencil-style halo exchange).
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def montage_dag(
    images: int,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    seed: SeedLike = None,
    name: str | None = None,
) -> TaskDAG:
    """Montage-like workflow over ``images`` input tiles.

    Levels: per-image ``project`` -> pairwise ``difffit`` (adjacent
    overlaps) -> single ``concatfit`` -> single ``bgmodel`` -> per-image
    ``background`` -> single ``imgtbl`` -> single ``madd`` -> single
    ``jpeg``.  Projection is the expensive step (x4), matching the real
    pipeline's profile; slight per-task cost jitter is seeded.
    """
    if images < 2:
        raise ConfigurationError(f"images must be >= 2, got {images}")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")
    rng = as_generator(seed)

    def c(scale: float) -> float:
        return float(scale * rng.uniform(0.8, 1.2))

    dag = TaskDAG(name or f"montage-i{images}")
    for i in range(images):
        dag.add_task(Task(id=("project", i), cost=c(4 * cost_scale), name=f"mProject{i}"))
    for i in range(images - 1):
        dag.add_task(Task(id=("difffit", i), cost=c(cost_scale), name=f"mDiffFit{i}"))
        dag.add_edge(("project", i), ("difffit", i), data=data_scale)
        dag.add_edge(("project", i + 1), ("difffit", i), data=data_scale)
    dag.add_task(Task(id="concatfit", cost=c(cost_scale), name="mConcatFit"))
    for i in range(images - 1):
        dag.add_edge(("difffit", i), "concatfit", data=data_scale / 4)
    dag.add_task(Task(id="bgmodel", cost=c(2 * cost_scale), name="mBgModel"))
    dag.add_edge("concatfit", "bgmodel", data=data_scale / 4)
    for i in range(images):
        dag.add_task(Task(id=("background", i), cost=c(cost_scale), name=f"mBackground{i}"))
        dag.add_edge("bgmodel", ("background", i), data=data_scale / 4)
        dag.add_edge(("project", i), ("background", i), data=data_scale)
    dag.add_task(Task(id="imgtbl", cost=c(cost_scale), name="mImgtbl"))
    for i in range(images):
        dag.add_edge(("background", i), "imgtbl", data=data_scale / 2)
    dag.add_task(Task(id="madd", cost=c(6 * cost_scale), name="mAdd"))
    dag.add_edge("imgtbl", "madd", data=data_scale)
    dag.add_task(Task(id="jpeg", cost=c(cost_scale), name="mJPEG"))
    dag.add_edge("madd", "jpeg", data=data_scale)
    return dag


def mapreduce_dag(
    mappers: int,
    reducers: int,
    map_cost: float = 10.0,
    reduce_cost: float = 10.0,
    shuffle_data: float = 10.0,
    seed: SeedLike = None,
    name: str | None = None,
) -> TaskDAG:
    """Map / shuffle / reduce: every mapper feeds every reducer.

    A zero-cost ``split`` entry fans data to mappers and reducers feed a
    ``collect`` exit, keeping the graph single-entry/single-exit.
    """
    if mappers < 1 or reducers < 1:
        raise ConfigurationError("mappers and reducers must be >= 1")
    if map_cost <= 0 or reduce_cost <= 0 or shuffle_data < 0:
        raise ConfigurationError("costs must be > 0 and shuffle_data >= 0")
    rng = as_generator(seed)
    dag = TaskDAG(name or f"mapreduce-m{mappers}-r{reducers}")
    dag.add_task(Task(id="split", cost=map_cost / 10, name="split"))
    dag.add_task(Task(id="collect", cost=reduce_cost / 10, name="collect"))
    for i in range(mappers):
        dag.add_task(Task(id=("map", i), cost=float(map_cost * rng.uniform(0.5, 1.5))))
        dag.add_edge("split", ("map", i), data=shuffle_data)
    for j in range(reducers):
        dag.add_task(Task(id=("reduce", j), cost=float(reduce_cost * rng.uniform(0.5, 1.5))))
        for i in range(mappers):
            # Shuffle volume splits roughly evenly across reducers.
            dag.add_edge(("map", i), ("reduce", j), data=shuffle_data / reducers)
        dag.add_edge(("reduce", j), "collect", data=shuffle_data / reducers)
    return dag


def pipeline_dag(
    pipelines: int,
    stages: int,
    coupled: bool = False,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    name: str | None = None,
) -> TaskDAG:
    """``pipelines`` parallel chains of ``stages`` tasks.

    With ``coupled=True`` each stage also reads its neighbours' previous
    stage (halo exchange), turning independent chains into a stencil.
    """
    if pipelines < 1 or stages < 1:
        raise ConfigurationError("pipelines and stages must be >= 1")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")
    dag = TaskDAG(name or f"pipeline-p{pipelines}-s{stages}")
    for p in range(pipelines):
        for s in range(stages):
            dag.add_task(Task(id=(p, s), cost=cost_scale, name=f"st{p},{s}"))
    for p in range(pipelines):
        for s in range(1, stages):
            dag.add_edge((p, s - 1), (p, s), data=data_scale)
            if coupled:
                if p > 0:
                    dag.add_edge((p - 1, s - 1), (p, s), data=data_scale / 2)
                if p + 1 < pipelines:
                    dag.add_edge((p + 1, s - 1), (p, s), data=data_scale / 2)
    return dag
