#!/usr/bin/env python3
"""Application study: scheduling Gaussian elimination on a
heterogeneous cluster (the paper's flagship application graph).

Sweeps the matrix size and compares the improved scheduler against the
classic baselines, printing the same series a reader would plot as the
paper's Gaussian-elimination figure.

Run:  python examples/gaussian_elimination_study.py
"""

import numpy as np

from repro import make_instance, slr, validate
from repro.dag.generators import gaussian_elimination_dag, scale_ccr
from repro.schedulers import get_scheduler
from repro.utils.tables import format_series

ALGORITHMS = ["IMP", "HEFT", "CPOP", "HCPT", "PETS"]
MATRIX_SIZES = [5, 7, 9, 11, 13]
PROCESSORS = 6
REPS = 5

series: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
for m in MATRIX_SIZES:
    dag = scale_ccr(gaussian_elimination_dag(m), ccr=1.0)
    samples: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
    for rep in range(REPS):
        instance = make_instance(
            dag, num_procs=PROCESSORS, heterogeneity=0.5, seed=1000 * m + rep
        )
        for a in ALGORITHMS:
            schedule = get_scheduler(a).schedule(instance)
            validate(schedule, instance)
            samples[a].append(slr(schedule, instance))
    for a in ALGORITHMS:
        series[a].append(float(np.mean(samples[a])))

print(format_series(
    "matrix",
    MATRIX_SIZES,
    series,
    title=f"Gaussian elimination: average SLR vs matrix size "
          f"(q={PROCESSORS}, beta=0.5, CCR=1, {REPS} ETC draws each)",
))

gain = [100.0 * (1.0 - i / h) for i, h in zip(series["IMP"], series["HEFT"])]
print(f"\nIMP improvement over HEFT per size: "
      + ", ".join(f"{g:+.1f}%" for g in gain))

# Show where the improvement comes from on the largest instance: the
# pivot chain is the critical path and duplication keeps it local.
dag = gaussian_elimination_dag(7)
instance = make_instance(dag, num_procs=PROCESSORS, heterogeneity=0.5, seed=7)
schedule = get_scheduler("IMP").schedule(instance)
print(f"\nm=7 improved schedule: makespan={schedule.makespan:.2f}, "
      f"duplicates={schedule.num_duplicates()}")
print(schedule.gantt(width=70))
