"""FleetManager against real ``repro serve`` subprocesses.

These tests spawn genuine daemons (``--port 0 --workers 0`` — thread
engines, no nested process pools) and exercise the full lifecycle:
bound-port discovery from startup output, supervision, budgeted
respawn, and warm recovery from per-shard cache segments.  Process
counts are kept small (two shards) to stay tier-1 friendly.
"""

from __future__ import annotations

import asyncio
import re
import sys

import pytest

from repro.bench import workloads as W
from repro.service import ServiceClient
from repro.service.fleet import FleetManager
from repro.utils.rng import as_generator

_LISTEN_RE = re.compile(r"listening on http://[^\s:]+:(\d+)\b")


def _instance(seed: int = 3, num_tasks: int = 10):
    return W.random_instance(as_generator(seed), num_tasks=num_tasks, num_procs=3)


async def _wait_until(predicate, timeout: float = 20.0, interval: float = 0.1):
    async with asyncio.timeout(timeout):
        while not predicate():
            await asyncio.sleep(interval)


# ----------------------------------------------------------------------
# satellite regression: `repro serve --port 0` prints the real port
# ----------------------------------------------------------------------
def test_serve_port_zero_prints_actually_bound_port():
    """Regression: the startup line used to echo the *configured* port,
    so ``--port 0`` printed ``:0`` and nothing could discover the
    daemon.  It must print ``Server.bound_port`` — the kernel-assigned
    port — and that port must actually serve."""

    async def scenario():
        proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--workers", "0",
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
        )
        try:
            async with asyncio.timeout(30.0):
                while True:
                    line = (await proc.stdout.readline()).decode()
                    assert line, "daemon exited before printing its port"
                    match = _LISTEN_RE.search(line)
                    if match:
                        port = int(match.group(1))
                        break
            assert port != 0, "startup line echoed --port 0 instead of the bound port"
            client = ServiceClient(port=port)
            assert await client.health()
            await client.shutdown()
            async with asyncio.timeout(15.0):
                await proc.wait()
        finally:
            if proc.returncode is None:
                proc.kill()
                await proc.wait()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_manager_discovers_ports_and_serves():
    async def scenario():
        manager = FleetManager(shards=2, workers=0, health_interval=0.0)
        await manager.start()
        try:
            ports = [s.port for s in manager.shard_processes.values()]
            assert all(p > 0 for p in ports) and len(set(ports)) == 2
            assert len(manager.router.alive_shards()) == 2
            client = ServiceClient.at(manager.endpoint)
            inst = _instance(1)
            cold = await client.schedule(inst, alg="HEFT")
            warm = await client.schedule(inst, alg="HEFT")
            assert not cold.cache_hit and warm.cache_hit
            await client.close()
        finally:
            await manager.stop()
        # stop() really reaps the children
        for shard in manager.shard_processes.values():
            assert shard.process.returncode is not None

    asyncio.run(scenario())


def test_killed_shard_respawns_warm_from_its_segment(tmp_path):
    """SIGKILL the shard that owns a cached fingerprint.  The manager
    must respawn it under the same name (same keyspace, same cache
    segment), and the respawned daemon must answer the fingerprint as a
    warm hit recovered from disk — not recompute it."""

    async def scenario():
        manager = FleetManager(shards=2, workers=0, cache_dir=tmp_path,
                               health_interval=0.2, fail_threshold=1)
        await manager.start()
        try:
            client = ServiceClient.at(manager.endpoint)
            inst = _instance(5)
            cold = await client.schedule(inst, alg="HEFT")
            assert not cold.cache_hit
            victim = manager.router.ring.owner(inst.fingerprint())
            manager.kill_shard(victim)
            await _wait_until(
                lambda: manager.shard_processes[victim].respawns == 1
                and manager.router.shards[victim].alive
            )
            warm = await client.schedule(inst, alg="HEFT")
            assert warm.cache_hit, (
                "respawned shard should have recovered its cache segment"
            )
            assert warm.makespan == cold.makespan
            await client.close()
        finally:
            await manager.stop()

    asyncio.run(scenario())


def test_respawn_budget_exhaustion_leaves_shard_quarantined():
    """With a zero respawn budget a dead shard stays down — and the
    fleet keeps serving on the survivor via ring rehash."""

    async def scenario():
        manager = FleetManager(shards=2, workers=0, health_interval=0.2,
                               fail_threshold=1, max_respawns=0)
        await manager.start()
        try:
            victim = "shard-0"
            manager.kill_shard(victim)
            await _wait_until(
                lambda: manager.shard_processes[victim].gave_up
                and not manager.router.shards[victim].alive
            )
            assert len(manager.router.alive_shards()) == 1
            client = ServiceClient.at(manager.endpoint)
            for seed in range(4):
                result = await client.schedule(_instance(seed), alg="HEFT")
                assert result.makespan > 0
            await client.close()
        finally:
            await manager.stop()

    asyncio.run(scenario())


def test_manager_validates_shard_count():
    with pytest.raises(ValueError):
        FleetManager(shards=0)
