"""Tests for schedule serialisation (JSON) and SVG rendering."""

import pytest

from repro.exceptions import ParseError, ScheduleError
from repro.instance import homogeneous_instance, make_instance
from repro.dag.generators import gaussian_elimination_dag, random_dag
from repro.machine.cluster import Machine
from repro.schedule.io import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
    schedule_to_svg,
    save_svg,
)
from repro.schedule.schedule import Schedule
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT
from repro.core import DuplicationScheduler


class TestJsonRoundTrip:
    def test_simple(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        back = schedule_from_json(schedule_to_json(s), topcuoglu_instance.machine)
        validate(back, topcuoglu_instance)
        assert back.makespan == pytest.approx(s.makespan)
        assert back.assignment() == s.assignment()

    def test_duplicates_survive(self):
        from repro.dag.generators import out_tree_dag

        dag = out_tree_dag(2, 4, cost_scale=5.0, data_scale=40.0)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=1)
        s = DuplicationScheduler().schedule(inst)
        back = schedule_from_json(schedule_to_json(s), inst.machine)
        assert back.num_duplicates() == s.num_duplicates()
        validate(back, inst)

    def test_tuple_ids(self):
        dag = gaussian_elimination_dag(5)
        inst = make_instance(dag, num_procs=3, seed=2)
        s = HEFT().schedule(inst)
        back = schedule_from_json(schedule_to_json(s), inst.machine)
        assert back.proc_of(("piv", 0)) == s.proc_of(("piv", 0))

    def test_file_round_trip(self, tmp_path, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        path = tmp_path / "sched.json"
        save_schedule(s, path)
        back = load_schedule(path, topcuoglu_instance.machine)
        assert back.makespan == pytest.approx(80.0)

    def test_invalid_json(self):
        with pytest.raises(ParseError):
            schedule_from_json("{broken", Machine.homogeneous(2))

    def test_wrong_shape(self):
        with pytest.raises(ParseError):
            schedule_from_json('{"no": "placements"}', Machine.homogeneous(2))

    def test_negative_interval_rejected(self):
        doc = '{"placements": [{"task": "a", "proc": 0, "start": 5, "end": 1}]}'
        with pytest.raises(ParseError):
            schedule_from_json(doc, Machine.homogeneous(1))

    def test_overlap_rejected_on_load(self):
        doc = (
            '{"placements": ['
            '{"task": "a", "proc": 0, "start": 0, "end": 5},'
            '{"task": "b", "proc": 0, "start": 2, "end": 4}]}'
        )
        with pytest.raises(ScheduleError):
            schedule_from_json(doc, Machine.homogeneous(1))


class TestSvg:
    def test_well_formed(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        svg = schedule_to_svg(s)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") == 10  # one box per placement

    def test_duplicates_dimmed(self):
        from repro.dag.generators import out_tree_dag

        dag = out_tree_dag(2, 4, cost_scale=5.0, data_scale=40.0)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=1)
        s = DuplicationScheduler().schedule(inst)
        if s.num_duplicates() == 0:
            pytest.skip("no duplicates on this seed")
        svg = schedule_to_svg(s)
        assert 'fill-opacity="0.45"' in svg

    def test_empty_schedule(self):
        s = Schedule(Machine.homogeneous(2))
        svg = schedule_to_svg(s)
        assert svg.startswith("<svg") and "</svg>" in svg

    def test_escaping(self):
        m = Machine.homogeneous(1)
        s = Schedule(m, name='x < y & "z"')
        s.add("<task>", 0, 0.0, 1.0)
        svg = schedule_to_svg(s)
        assert "&lt;task&gt;" in svg
        assert "<task>" not in svg.replace("&lt;task&gt;", "")

    def test_save(self, tmp_path, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        path = tmp_path / "sched.svg"
        save_svg(s, path)
        assert path.read_text().startswith("<svg")

    def test_makespan_in_header(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        assert "makespan 80" in schedule_to_svg(s)
