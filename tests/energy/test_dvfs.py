"""Tests for DVFS slack reclamation."""

import pytest

from repro.dag.generators import random_dag
from repro.energy import PowerModel, reclaim_slack, schedule_energy
from repro.exceptions import ConfigurationError
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.analysis import task_slacks
from repro.schedule.schedule import Schedule
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT

MODEL = PowerModel(static=0.1, dynamic=1.0)


@pytest.fixture
def padded_schedule(diamond_dag):
    """A schedule where b owns 2 units of slack (see analysis tests)."""
    inst = homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)
    s = Schedule(inst.machine)
    s.add("a", 0, 0.0, 2.0)
    s.add("b", 0, 2.0, 4.0)
    s.add("c", 1, 3.0, 3.0)
    s.add("d", 0, 8.0, 2.0)
    return s, inst


class TestReclaimSlack:
    def test_slack_owner_slowed(self, padded_schedule):
        s, inst = padded_schedule
        res = reclaim_slack(s, inst, MODEL, levels=(0.8, 1.0))
        # b has slack 2; at f=0.8 its stretch is 4/0.8-4 = 1 <= 2.
        assert res.frequencies["b"] == pytest.approx(0.8)
        assert res.slowed_tasks == 1

    def test_zero_slack_tasks_nominal(self, padded_schedule):
        s, inst = padded_schedule
        res = reclaim_slack(s, inst, MODEL)
        for t in ("a", "c", "d"):
            assert res.frequencies[t] == 1.0

    def test_energy_never_increases(self, padded_schedule):
        s, inst = padded_schedule
        res = reclaim_slack(s, inst, MODEL)
        assert res.energy_scaled <= res.energy_nominal + 1e-12
        assert 0.0 <= res.savings_fraction < 1.0

    def test_stretch_fits_slack(self, padded_schedule):
        s, inst = padded_schedule
        res = reclaim_slack(s, inst, MODEL, levels=(0.5, 0.6, 0.7, 0.8, 0.9, 1.0))
        slack = task_slacks(s, inst)
        for t, f in res.frequencies.items():
            d = s.entry(t).duration
            assert d / f - d <= slack[t] + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules(self, seed):
        dag = random_dag(50, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = HEFT().schedule(inst)
        validate(s, inst)
        res = reclaim_slack(s, inst, MODEL)
        assert res.energy_scaled <= res.energy_nominal + 1e-9
        # Realistic schedules always contain some slack to reclaim.
        assert res.slowed_tasks > 0
        assert schedule_energy(s, MODEL, res.frequencies) == pytest.approx(
            res.energy_scaled
        )

    def test_levels_validation(self, padded_schedule):
        s, inst = padded_schedule
        with pytest.raises(ConfigurationError):
            reclaim_slack(s, inst, MODEL, levels=())
        with pytest.raises(ConfigurationError):
            reclaim_slack(s, inst, MODEL, levels=(0.5, 0.8))  # missing 1.0
        with pytest.raises(ConfigurationError):
            reclaim_slack(s, inst, MODEL, levels=(0.0, 1.0))

    def test_duplicated_tasks_stay_nominal(self):
        from repro.core import DuplicationScheduler
        from repro.dag.generators import out_tree_dag

        dag = out_tree_dag(2, 4, cost_scale=5.0, data_scale=40.0)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=1)
        s = DuplicationScheduler().schedule(inst)
        if s.num_duplicates() == 0:
            pytest.skip("no duplicates on this seed")
        res = reclaim_slack(s, inst, MODEL)
        duplicated = {c.task for c in s.all_placements() if c.duplicate}
        for t in duplicated:
            assert res.frequencies[t] == 1.0
