"""DSC — Dominant Sequence Clustering (Yang & Gerasoulis, 1994).

The classic near-optimal unbounded-processor clustering heuristic.  This
implementation follows the practical simplification common in
comparative studies: tasks are examined in decreasing *dominant
sequence* priority (t-level + b-level over machine-averaged costs); each
task either joins the cluster of one of its parents — appended after the
cluster's current tail — when that strictly reduces its earliest start
time, or opens a new cluster.  Edge costs inside a cluster are zero
(same processor); the sequence constraint within a cluster is the
append order.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedulers.clustering.base import ClusteringScheduler
from repro.schedulers.ranking import est_times, upward_ranks
from repro.types import TaskId


class DSC(ClusteringScheduler):
    """Dominant Sequence Clustering (bounded-processor adaptation)."""

    name = "DSC"

    def clusters(self, instance: Instance) -> list[list[TaskId]]:
        dag = instance.dag
        w = {t: instance.avg_exec_time(t) for t in dag.tasks()}
        blevel = upward_ranks(instance)  # includes avg comm
        tlevel = est_times(instance)
        pos = {t: i for i, t in enumerate(dag.topological_order())}

        # Examination order: decreasing dominant-sequence priority,
        # repaired to a topological order so every examined task's
        # parents are already clustered.
        priority = {t: tlevel[t] + blevel[t] for t in dag.tasks()}
        order = sorted(dag.tasks(), key=lambda t: (-priority[t], pos[t]))
        order = _topological_fix(dag, order)

        cluster_of: dict[TaskId, int] = {}
        cluster_members: dict[int, list[TaskId]] = {}
        cluster_finish: dict[int, float] = {}  # completion of cluster tail
        start: dict[TaskId, float] = {}
        finish: dict[TaskId, float] = {}
        next_cluster = 0

        def arrival(parent: TaskId, child: TaskId, same_cluster: bool) -> float:
            comm = 0.0 if same_cluster else instance.avg_comm_time(parent, child)
            return finish[parent] + comm

        for t in order:
            parents = dag.predecessors(t)
            # Option A: new cluster — start when all remote data arrives.
            est_new = max((arrival(p, t, False) for p in parents), default=0.0)
            best_cluster = None
            best_est = est_new
            # Option B: join a parent's cluster (append after its tail).
            candidate_clusters = {cluster_of[p] for p in parents}
            for cid in sorted(candidate_clusters):
                est = cluster_finish[cid]
                for p in parents:
                    est = max(est, arrival(p, t, cluster_of[p] == cid))
                if est < best_est - 1e-12:
                    best_est = est
                    best_cluster = cid
            if best_cluster is None:
                cid = next_cluster
                next_cluster += 1
                cluster_members[cid] = []
                cluster_finish[cid] = 0.0
            else:
                cid = best_cluster
            cluster_of[t] = cid
            cluster_members[cid].append(t)
            start[t] = best_est
            finish[t] = best_est + w[t]
            cluster_finish[cid] = finish[t]

        return [cluster_members[cid] for cid in sorted(cluster_members)]


def _topological_fix(dag, order: list[TaskId]) -> list[TaskId]:
    """Stable-repair a priority order into a topological one."""
    from repro.schedulers.base import topological_by_priority

    rank = {t: i for i, t in enumerate(order)}
    return topological_by_priority(dag, key=lambda t: rank[t])
