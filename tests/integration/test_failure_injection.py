"""Failure injection: every layer must reject corrupted inputs loudly.

These tests deliberately construct broken schedulers, tampered
schedules and inconsistent instances, and assert that validation (not
silent mis-measurement) is what the user sees.
"""

import numpy as np
import pytest

from repro.dag.generators import random_dag
from repro.exceptions import (
    ConfigurationError,
    ScheduleError,
    SchedulingError,
    ValidationError,
)
from repro.instance import Instance, make_instance
from repro.machine.cluster import Machine
from repro.machine.etc import ETCMatrix
from repro.schedule.schedule import Schedule
from repro.schedule.validation import validate, violations
from repro.schedulers.base import Scheduler, eft_placement


@pytest.fixture
def instance():
    return make_instance(random_dag(20, seed=1), num_procs=3, seed=1)


class TestBrokenSchedulers:
    def test_scheduler_skipping_tasks_caught(self, instance):
        class Lazy(Scheduler):
            name = "lazy"

            def schedule(self, inst):
                s = Schedule(inst.machine)
                for t in list(inst.dag.topological_order())[: inst.num_tasks // 2]:
                    p = eft_placement(s, inst, t)
                    s.add(t, p.proc, p.start, p.end - p.start)
                return s

        s = Lazy().schedule(instance)
        with pytest.raises(ValidationError) as e:
            validate(s, instance)
        assert any("not scheduled" in v for v in e.value.violations)

    def test_scheduler_ignoring_comm_caught(self, instance):
        class NoComm(Scheduler):
            name = "nocomm"

            def schedule(self, inst):
                # Places every task as if communication were free:
                # starts at parents' max end, no transfer time.
                s = Schedule(inst.machine)
                end = {}
                procs = inst.machine.proc_ids()
                for i, t in enumerate(inst.dag.topological_order()):
                    ready = max((end[p] for p in inst.dag.predecessors(t)), default=0.0)
                    proc = procs[i % len(procs)]
                    start = s.timeline(proc).find_slot(ready, inst.exec_time(t, proc))
                    s.add(t, proc, start, inst.exec_time(t, proc))
                    end[t] = start + inst.exec_time(t, proc)
                return s

        s = NoComm().schedule(instance)
        found = violations(s, instance)
        assert any("before data" in v for v in found)

    def test_scheduler_wrong_durations_caught(self, instance):
        class Halver(Scheduler):
            name = "halver"

            def schedule(self, inst):
                s = Schedule(inst.machine)
                for t in inst.dag.topological_order():
                    p = eft_placement(s, inst, t)
                    s.add(t, p.proc, p.start, (p.end - p.start) / 2)  # lies
                return s

        s = Halver().schedule(instance)
        found = violations(s, instance)
        assert any("ETC says" in v for v in found)


class TestTamperedSchedules:
    def test_overlap_rejected_at_construction(self, instance):
        s = Schedule(instance.machine)
        s.add("x", 0, 0.0, 5.0)
        with pytest.raises(ScheduleError):
            s.add("y", 0, 3.0, 5.0)

    def test_moved_task_breaks_children(self, instance):
        from repro.schedulers.heft import HEFT

        s = HEFT().schedule(instance)
        # Move some non-exit task later without telling its children.
        dag = instance.dag
        victim = next(t for t in dag.tasks() if dag.out_degree(t) > 0)
        old = s.entry(victim)
        s.remove(victim)
        s.add(victim, old.proc, s.makespan + 100.0, old.duration)
        found = violations(s, instance)
        assert found  # children now start before the data exists


class TestInconsistentInstances:
    def test_etc_missing_task(self):
        dag = random_dag(5, seed=2)
        machine = Machine.homogeneous(2)
        etc = ETCMatrix(list(dag.tasks())[:-1], machine.proc_ids(), np.ones((4, 2)))
        with pytest.raises(ConfigurationError):
            Instance(dag, machine, etc)

    def test_priority_order_violation_detected(self, instance):
        from repro.schedulers.base import ListScheduler

        class Shuffled(ListScheduler):
            name = "shuffled"

            def priority_order(self, inst):
                order = inst.dag.topological_order()
                return list(reversed(order))

        with pytest.raises(SchedulingError):
            Shuffled().schedule(instance)

    def test_simulator_rejects_incomplete_schedule(self, instance):
        from repro.sim import execute
        from repro.sim.engine import SimulationError

        s = Schedule(instance.machine)
        # Place only a mid-graph task whose parents are absent: the
        # simulator must flag the problem rather than hang or succeed.
        dependent = next(
            t for t in instance.dag.tasks() if instance.dag.in_degree(t) > 0
        )
        s.add(dependent, 0, 0.0, instance.exec_time(dependent, 0))
        with pytest.raises((SimulationError, ScheduleError, KeyError)):
            execute(s, instance)
