"""Task-graph file I/O: STG, JSON and DOT.

Three formats are supported:

* **STG** — the Standard Task Graph format of Tobita & Kasahara
  (``kasahara.cs.waseda.ac.jp``), the de-facto benchmark exchange format
  of the 2000s static-scheduling literature.  Each line reads
  ``<task> <cost> <npred> <pred...>``; the classic format has no
  communication costs, so an extended variant with per-predecessor
  ``pred:data`` pairs is also accepted and emitted when data is present.
* **JSON** — a lossless round-trip format for this library.
* **DOT** — Graphviz export for visual inspection, plus an importer for
  the subset :func:`to_dot` emits (ids stringify on the way back).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TextIO, Union

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ParseError

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# STG
# ----------------------------------------------------------------------
def parse_stg(text: str, name: str = "stg") -> TaskDAG:
    """Parse an STG document into a :class:`TaskDAG`.

    Task ids become integers.  Predecessor tokens may be plain ids
    (``3``) or extended ``id:data`` pairs (``3:12.5``).  Lines starting
    with ``#`` and blank lines are ignored.
    """
    dag = TaskDAG(name)
    lines = text.splitlines()
    declared: int | None = None
    entries: list[tuple[int, int, float, list[tuple[int, float]]]] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if declared is None:
            if len(tokens) != 1:
                raise ParseError("first data line must be the task count", lineno)
            try:
                declared = int(tokens[0])
            except ValueError:
                raise ParseError(f"invalid task count {tokens[0]!r}", lineno) from None
            if declared < 0:
                raise ParseError(f"negative task count {declared}", lineno)
            continue
        if len(tokens) < 3:
            raise ParseError("task line needs at least <id> <cost> <npred>", lineno)
        try:
            tid = int(tokens[0])
            cost = float(tokens[1])
            npred = int(tokens[2])
        except ValueError as exc:
            raise ParseError(f"malformed task line: {exc}", lineno) from None
        preds_tokens = tokens[3:]
        if len(preds_tokens) != npred:
            raise ParseError(
                f"task {tid}: declared {npred} predecessors, found {len(preds_tokens)}",
                lineno,
            )
        preds: list[tuple[int, float]] = []
        for tok in preds_tokens:
            if ":" in tok:
                pid_s, data_s = tok.split(":", 1)
            else:
                pid_s, data_s = tok, "0"
            try:
                preds.append((int(pid_s), float(data_s)))
            except ValueError:
                raise ParseError(f"malformed predecessor token {tok!r}", lineno) from None
        entries.append((lineno, tid, cost, preds))

    if declared is None:
        raise ParseError("empty STG document")

    for lineno, tid, cost, _ in entries:
        if dag.has_task(tid):
            raise ParseError(f"task {tid} defined twice", lineno)
        dag.add_task(Task(id=tid, cost=cost))
    for lineno, tid, _, preds in entries:
        for pid, data in preds:
            if not dag.has_task(pid):
                raise ParseError(f"task {tid} references unknown predecessor {pid}", lineno)
            dag.add_edge(pid, tid, data=data)

    # The classic format declares the count excluding the two dummy
    # endpoint tasks; accept either convention but reject wild mismatch.
    n = dag.num_tasks
    if n not in (declared, declared + 2):
        raise ParseError(f"declared {declared} tasks but parsed {n}")
    dag.validate()
    return dag


def load_stg(path: PathLike) -> TaskDAG:
    """Read an STG file from disk."""
    p = Path(path)
    return parse_stg(p.read_text(), name=p.stem)


def dump_stg(dag: TaskDAG, stream: TextIO | None = None) -> str:
    """Serialise a DAG whose ids are integers to STG text.

    Extended ``pred:data`` tokens are emitted for edges with non-zero
    data so the round trip is lossless.
    """
    for tid in dag.tasks():
        if not isinstance(tid, int):
            raise ParseError(f"STG requires integer task ids, got {tid!r}")
    out: list[str] = [str(dag.num_tasks)]
    for tid in sorted(dag.tasks()):
        preds = sorted(dag.predecessors(tid))
        toks = []
        for pid in preds:
            data = dag.data(pid, tid)
            toks.append(f"{pid}:{data:g}" if data else str(pid))
        out.append(f"{tid} {dag.cost(tid):g} {len(preds)}" + ("" if not toks else " " + " ".join(toks)))
    text = "\n".join(out) + "\n"
    if stream is not None:
        stream.write(text)
    return text


def save_stg(dag: TaskDAG, path: PathLike) -> None:
    """Write an STG file to disk."""
    Path(path).write_text(dump_stg(dag))


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def to_json(dag: TaskDAG) -> str:
    """Serialise a DAG to the library's JSON format (lossless).

    Tuple ids are encoded with a ``__tuple__`` tag (see
    :mod:`repro.utils.encoding`) so they round-trip exactly instead of
    degrading to JSON arrays.
    """
    from repro.utils.encoding import encode_id

    doc = {
        "name": dag.name,
        "tasks": [
            {"id": encode_id(t.id), "cost": t.cost, "name": t.name, "attrs": dict(t.attrs)}
            for t in dag.task_objects()
        ],
        "edges": [
            {"src": encode_id(u), "dst": encode_id(v), "data": dag.data(u, v)}
            for u, v in dag.edges()
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False, default=str)


def from_json(text: str) -> TaskDAG:
    """Parse the library's JSON format back into a :class:`TaskDAG`."""
    from repro.utils.encoding import decode_id

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict) or "tasks" not in doc:
        raise ParseError("JSON document must be an object with a 'tasks' key")
    dag = TaskDAG(doc.get("name", "dag"))
    for rec in doc["tasks"]:
        dag.add_task(
            Task(
                id=decode_id(rec["id"]),
                cost=rec.get("cost", 1.0),
                name=rec.get("name", ""),
                attrs=rec.get("attrs", {}),
            )
        )
    for rec in doc.get("edges", []):
        dag.add_edge(decode_id(rec["src"]), decode_id(rec["dst"]), data=rec.get("data", 0.0))
    dag.validate()
    return dag


def load_json(path: PathLike) -> TaskDAG:
    """Read the JSON format from disk."""
    return from_json(Path(path).read_text())


def save_json(dag: TaskDAG, path: PathLike) -> None:
    """Write the JSON format to disk."""
    Path(path).write_text(to_json(dag))


# ----------------------------------------------------------------------
# DOT
# ----------------------------------------------------------------------
def to_dot(dag: TaskDAG) -> str:
    """Render the DAG as Graphviz DOT for visual inspection."""

    def q(x: object) -> str:
        return '"' + str(x).replace('"', r"\"") + '"'

    lines = [f"digraph {q(dag.name)} {{", "  rankdir=TB;"]
    for t in dag.task_objects():
        label = t.name + "\\n" + f"{t.cost:g}"
        lines.append(f"  {q(t.id)} [label={q(label)}];")
    for u, v in dag.edges():
        data = dag.data(u, v)
        label = f" [label={q(f'{data:g}')}]" if data else ""
        lines.append(f"  {q(u)} -> {q(v)}{label};")
    lines.append("}")
    return "\n".join(lines) + "\n"


_DOT_NODE = re.compile(
    r'^\s*"(?P<id>(?:[^"\\]|\\.)*)"\s*'
    r'(?:\[label="(?P<label>(?:[^"\\]|\\.)*)"\])?\s*;\s*$'
)
_DOT_EDGE = re.compile(
    r'^\s*"(?P<src>(?:[^"\\]|\\.)*)"\s*->\s*"(?P<dst>(?:[^"\\]|\\.)*)"\s*'
    r'(?:\[label="(?P<label>(?:[^"\\]|\\.)*)"\])?\s*;\s*$'
)


def _dot_unquote(text: str) -> str:
    return text.replace(r"\"", '"')


def from_dot(text: str) -> TaskDAG:
    """Parse the DOT subset emitted by :func:`to_dot` back to a DAG.

    Node statements carry ``label="<name>\\n<cost>"``; edge statements
    optionally carry ``label="<data>"``.  Task ids become strings (DOT
    has no richer id type), so ``from_dot(to_dot(dag))`` round-trips
    structure and weights but stringifies non-string ids.
    """
    name = "dag"
    dag: TaskDAG | None = None
    nodes: list[tuple[str, float, str]] = []
    edges: list[tuple[str, str, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line == "}" or line.startswith(("rankdir", "graph", "node", "edge")):
            continue
        if line.startswith("digraph"):
            m = re.match(r'digraph\s+"((?:[^"\\]|\\.)*)"\s*{', line)
            if m:
                name = _dot_unquote(m.group(1))
            continue
        m = _DOT_EDGE.match(line)
        if m:
            data = float(m.group("label")) if m.group("label") else 0.0
            edges.append((_dot_unquote(m.group("src")), _dot_unquote(m.group("dst")), data))
            continue
        m = _DOT_NODE.match(line)
        if m:
            nid = _dot_unquote(m.group("id"))
            label = m.group("label") or ""
            cost = 1.0
            node_name = nid
            if "\\n" in label:
                node_name, cost_text = label.rsplit("\\n", 1)
                try:
                    cost = float(cost_text)
                except ValueError:
                    raise ParseError(f"node {nid!r}: bad cost {cost_text!r}", lineno) from None
            nodes.append((nid, cost, node_name))
            continue
        raise ParseError(f"unparseable DOT statement: {line!r}", lineno)

    dag = TaskDAG(name)
    for nid, cost, node_name in nodes:
        dag.add_task(Task(id=nid, cost=cost, name=node_name))
    for src, dst, data in edges:
        for endpoint in (src, dst):
            if not dag.has_task(endpoint):
                dag.add_task(Task(id=endpoint, cost=1.0))
        dag.add_edge(src, dst, data=data)
    dag.validate()
    return dag


def load_dot(path: PathLike) -> TaskDAG:
    """Read the DOT subset from disk."""
    return from_dot(Path(path).read_text())
