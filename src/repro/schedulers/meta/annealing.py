"""Simulated-annealing scheduler over the assignment space."""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler
from repro.schedulers.heft import HEFT
from repro.schedulers.meta.decoder import compiled_decoder, decode_assignment, rank_order
from repro.utils.rng import SeedLike, as_generator


class SimulatedAnnealingScheduler(Scheduler):
    """Simulated annealing seeded from the HEFT assignment.

    Neighbourhood: reassign one uniformly chosen task to a uniformly
    chosen other processor.  Cooling: geometric, with the initial
    temperature set from the HEFT makespan so acceptance behaviour is
    scale-free.  Deterministic for a given ``seed``.

    Parameters
    ----------
    iterations:
        Total neighbour evaluations (the scheduling-time budget).
    initial_temp_fraction:
        Initial temperature as a fraction of the seed makespan.
    cooling:
        Geometric cooling factor per iteration, in (0, 1).
    """

    def __init__(
        self,
        iterations: int = 600,
        initial_temp_fraction: float = 0.05,
        cooling: float = 0.995,
        seed: SeedLike = 0,
    ) -> None:
        if iterations < 0:
            raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
        if not (0.0 < cooling < 1.0):
            raise ConfigurationError(f"cooling must be in (0, 1), got {cooling}")
        if initial_temp_fraction <= 0:
            raise ConfigurationError("initial_temp_fraction must be > 0")
        self.iterations = iterations
        self.initial_temp_fraction = initial_temp_fraction
        self.cooling = cooling
        self._seed = seed
        self.name = "SA"

    def schedule(self, instance: Instance) -> Schedule:
        rng = as_generator(self._seed)
        order = rank_order(instance)
        procs = instance.machine.proc_ids()
        tasks = list(instance.dag.tasks())

        seed_schedule = HEFT().schedule(instance)
        current = dict(seed_schedule.assignment())
        current_span = seed_schedule.makespan
        best = dict(current)
        best_span = current_span

        if len(procs) == 1 or not tasks:
            return seed_schedule

        # Neighbour evaluation runs on the compiled flat-array core when
        # available (bit-identical spans, so acceptance decisions — and
        # therefore the whole walk — are unchanged); the genome mirrors
        # ``current`` in decode order.
        compiled = compiled_decoder(instance)
        slot_of = {t: k for k, t in enumerate(order)}
        proc_index = {p: j for j, p in enumerate(procs)}
        genome = [proc_index[current[t]] for t in order]

        temp = self.initial_temp_fraction * max(current_span, 1e-12)
        for _ in range(self.iterations):
            task = tasks[int(rng.integers(0, len(tasks)))]
            old_proc = current[task]
            alternatives = [p for p in procs if p != old_proc]
            new_proc = alternatives[int(rng.integers(0, len(alternatives)))]
            current[task] = new_proc
            if compiled is not None:
                genome[slot_of[task]] = proc_index[new_proc]
                span = compiled.decode_span(genome)
            else:
                span = decode_assignment(instance, current, order).makespan
            delta = span - current_span
            if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
                current_span = span
                if span < best_span - 1e-12:
                    best_span = span
                    best = dict(current)
            else:
                current[task] = old_proc
                if compiled is not None:
                    genome[slot_of[task]] = proc_index[old_proc]
            temp *= self.cooling

        result = decode_assignment(
            instance, best, order, name=f"{self.name}:{instance.name}"
        )
        # The HEFT seed is a member of the searched space only if its
        # decode matches; guard the contract explicitly.
        if result.makespan > seed_schedule.makespan + 1e-9:
            return seed_schedule
        return result
