"""In-tree (reduction) and out-tree (broadcast) task graphs.

Complete ``arity``-ary trees of the given ``depth``.  Out-trees model
divide/broadcast phases (root is the entry); in-trees model reductions
(root is the exit).  Both are classic extremes for schedulers: out-trees
reward spreading, in-trees reward clustering near the root.
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError


def _tree_nodes(arity: int, depth: int) -> list[tuple[int, int]]:
    return [(d, i) for d in range(depth + 1) for i in range(arity**d)]


def out_tree_dag(
    arity: int,
    depth: int,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    name: str | None = None,
) -> TaskDAG:
    """Complete out-tree (broadcast): root at depth 0 fans out."""
    if arity < 1 or depth < 0:
        raise ConfigurationError("arity must be >= 1 and depth >= 0")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")
    dag = TaskDAG(name or f"outtree-a{arity}-d{depth}")
    for d, i in _tree_nodes(arity, depth):
        dag.add_task(Task(id=(d, i), cost=cost_scale, name=f"t{d},{i}"))
    for d, i in _tree_nodes(arity, depth):
        if d < depth:
            for c in range(arity):
                dag.add_edge((d, i), (d + 1, arity * i + c), data=data_scale)
    return dag


def in_tree_dag(
    arity: int,
    depth: int,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    name: str | None = None,
) -> TaskDAG:
    """Complete in-tree (reduction): leaves at depth ``depth`` reduce to
    the root, which is the single exit task."""
    if arity < 1 or depth < 0:
        raise ConfigurationError("arity must be >= 1 and depth >= 0")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")
    dag = TaskDAG(name or f"intree-a{arity}-d{depth}")
    for d, i in _tree_nodes(arity, depth):
        dag.add_task(Task(id=(d, i), cost=cost_scale, name=f"t{d},{i}"))
    for d, i in _tree_nodes(arity, depth):
        if d < depth:
            for c in range(arity):
                dag.add_edge((d + 1, arity * i + c), (d, i), data=data_scale)
    return dag
