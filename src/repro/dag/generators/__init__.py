"""Task-graph generators: parametric random DAGs and the classic
application graphs of the evaluation (Gaussian elimination, FFT,
Laplace, Cholesky, fork-join, trees, series-parallel, Montage-like and
map-reduce workflows)."""

from repro.dag.generators.costs import randomize_costs, scale_ccr
from repro.dag.generators.random_dag import random_dag
from repro.dag.generators.layered import layered_dag
from repro.dag.generators.gaussian import gaussian_elimination_dag
from repro.dag.generators.fft import fft_dag
from repro.dag.generators.laplace import laplace_dag
from repro.dag.generators.cholesky import cholesky_dag
from repro.dag.generators.forkjoin import fork_join_dag
from repro.dag.generators.trees import in_tree_dag, out_tree_dag
from repro.dag.generators.series_parallel import series_parallel_dag
from repro.dag.generators.workflows import mapreduce_dag, montage_dag, pipeline_dag

__all__ = [
    "randomize_costs",
    "scale_ccr",
    "random_dag",
    "layered_dag",
    "gaussian_elimination_dag",
    "fft_dag",
    "laplace_dag",
    "cholesky_dag",
    "fork_join_dag",
    "in_tree_dag",
    "out_tree_dag",
    "series_parallel_dag",
    "mapreduce_dag",
    "montage_dag",
    "pipeline_dag",
]
