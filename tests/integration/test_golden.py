"""Golden regression tests: freeze observable behaviour of the key
algorithms so accidental drift (a tie-break change, a rank tweak) fails
loudly instead of silently shifting every experiment.

If a change is *intentional*, update the constants here and say so in
the commit message — that is the point of a golden test.
"""

import pytest

from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.schedulers.cpop import CPOP
from repro.schedulers.heft import HEFT
from repro.core import ImprovedScheduler


class TestTopcuogluGolden:
    """The published instance: exact assignments, not just makespans."""

    def test_heft_assignment(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        assert s.makespan == pytest.approx(80.0)
        # The published HEFT schedule (TPDS 2002, Fig. 3): known anchor
        # placements.
        assert s.proc_of(1) == 2   # task 1 on P3 of the paper (0-indexed 2)
        assert s.proc_of(10) == 1  # exit task on P2

    def test_cpop_makespan(self, topcuoglu_instance):
        assert CPOP().schedule(topcuoglu_instance).makespan == pytest.approx(86.0)

    def test_imp_golden(self, topcuoglu_instance):
        s = ImprovedScheduler().schedule(topcuoglu_instance)
        # Headline result frozen on first release: the improved
        # scheduler beats HEFT's published 80.0 by 8.75% on the paper's
        # own example, using two selective duplicates.
        assert s.makespan == pytest.approx(73.0)
        assert s.num_duplicates() == 2


class TestSeededGolden:
    """One frozen random instance; exact makespans to 6 decimals."""

    @pytest.fixture(scope="class")
    def instance(self):
        dag = random_dag(40, shape=1.0, out_degree=4, ccr=1.0, avg_cost=10.0, seed=2007)
        return make_instance(dag, num_procs=4, heterogeneity=0.5, seed=2007)

    def test_heft_frozen(self, instance):
        span = HEFT().schedule(instance).makespan
        assert span == pytest.approx(98.90265930547606, rel=1e-9)

    def test_cpop_frozen(self, instance):
        span = CPOP().schedule(instance).makespan
        assert span == pytest.approx(114.87186503193283, rel=1e-9)

    def test_imp_frozen(self, instance):
        span = ImprovedScheduler().schedule(instance).makespan
        assert span == pytest.approx(92.30235006779897, rel=1e-9)

    def test_generator_frozen(self, instance):
        # The workload itself is part of the protocol: structure drift
        # in the generator invalidates cross-version comparisons.
        assert instance.dag.num_tasks == 40
        assert instance.dag.num_edges == 94
        assert instance.dag.total_cost() == pytest.approx(373.56451937272493)
