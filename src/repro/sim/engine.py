"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence, payload)`` triples in a binary heap; the
sequence number makes simultaneous events fire in scheduling order so
every simulation run is exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Iterator

from repro.exceptions import ReproError


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (e.g. deadlock)."""


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence.  Ordering: time, then insertion order."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (last popped event time)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event; events may not be scheduled in the past.

        Times within the 1e-9 tolerance of ``now`` are clamped *up* to
        ``now``, never below it, so a pushed event can never fire before
        the timestamp of an already-popped event: drained event times
        are non-decreasing by construction.
        """
        if time != time:  # NaN compares False to everything, including itself
            raise SimulationError(f"event {kind!r} scheduled at NaN")
        if time < self._now - 1e-9:
            raise SimulationError(
                f"event {kind!r} scheduled at {time} before current time {self._now}"
            )
        clamped = time if time > self._now else self._now
        assert clamped >= self._now, (time, self._now)
        ev = Event(time=clamped, seq=next(self._seq), kind=kind, payload=payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        return ev

    def drain(self, handler: Callable[[Event], None], max_events: int | None = None) -> int:
        """Pop events into ``handler`` until empty; returns event count.

        ``max_events`` bounds the count exactly: the limit is checked
        *before* each pop, so ``max_events=0`` handles nothing (the
        handler is never called) and ``max_events=k`` handles at most
        ``k`` events even when the handler pushes new ones mid-drain.
        """
        handled = 0
        while self._heap:
            if max_events is not None and handled >= max_events:
                break
            handler(self.pop())
            handled += 1
        return handled

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debugging aid
        return iter(sorted(self._heap))
