"""Energy accounting and DVFS slack reclamation.

A classic extension of static scheduling: once a makespan-optimised
schedule exists, tasks with slack can run at a lower processor frequency
without moving the makespan, trading the cubic dynamic-power curve for
"free" energy savings.  This package provides

* :class:`PowerModel` — per-processor static/dynamic power parameters,
* :func:`schedule_energy` — energy of a schedule under a frequency map,
* :func:`reclaim_slack` — the frequency-assignment post-pass,
* :func:`makespan_energy_front` — the makespan/energy Pareto sweep.
"""

from repro.energy.power import PowerModel, schedule_energy
from repro.energy.dvfs import DvfsResult, reclaim_slack
from repro.energy.pareto import (
    ParetoPoint,
    ParetoResult,
    makespan_energy_front,
    pareto_flags,
)

__all__ = [
    "PowerModel",
    "schedule_energy",
    "DvfsResult",
    "reclaim_slack",
    "ParetoPoint",
    "ParetoResult",
    "makespan_energy_front",
    "pareto_flags",
]
