"""Fork-join task graphs.

``stages`` sequential fork-join blocks: each block forks ``width``
independent chains of ``chain_length`` tasks between a fork task and a
join task.  This is the bulk-synchronous shape (parallel loops with
barriers) and the stress test for communication-heavy joins.
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def fork_join_dag(
    width: int,
    stages: int = 1,
    chain_length: int = 1,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    jitter: float = 0.0,
    seed: SeedLike = None,
    name: str | None = None,
) -> TaskDAG:
    """Build a fork-join DAG.

    ``jitter`` in [0, 1) perturbs task costs uniformly by ±jitter
    (seeded), modelling imbalanced parallel loops.
    """
    if width < 1 or stages < 1 or chain_length < 1:
        raise ConfigurationError("width, stages and chain_length must be >= 1")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")
    if not (0.0 <= jitter < 1.0):
        raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")

    rng = as_generator(seed)

    def cost() -> float:
        if jitter == 0.0:
            return cost_scale
        return float(cost_scale * rng.uniform(1.0 - jitter, 1.0 + jitter))

    dag = TaskDAG(name or f"forkjoin-w{width}-s{stages}")
    prev_join = None
    for s in range(stages):
        fork = ("fork", s)
        dag.add_task(Task(id=fork, cost=cost(), name=f"fork{s}"))
        if prev_join is not None:
            dag.add_edge(prev_join, fork, data=data_scale)
        join = ("join", s)
        dag.add_task(Task(id=join, cost=cost(), name=f"join{s}"))
        for w in range(width):
            prev = fork
            for c in range(chain_length):
                tid = ("work", s, w, c)
                dag.add_task(Task(id=tid, cost=cost(), name=f"w{s},{w},{c}"))
                dag.add_edge(prev, tid, data=data_scale)
                prev = tid
            dag.add_edge(prev, join, data=data_scale)
        prev_join = join
    return dag
