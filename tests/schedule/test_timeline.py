"""Tests for the per-processor Timeline (insertion-slot search)."""

import pytest

from repro.exceptions import ScheduleError
from repro.schedule.timeline import Slot, Timeline


class TestSlot:
    def test_duration(self):
        assert Slot(1.0, 3.5, "t").duration == 2.5

    def test_invalid(self):
        with pytest.raises(ScheduleError):
            Slot(3.0, 1.0, "t")
        with pytest.raises(ScheduleError):
            Slot(-1.0, 1.0, "t")


class TestAdd:
    def test_basic(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(2.0, 3.0, "b")
        assert tl.end_time == 5.0
        assert len(tl) == 2

    def test_out_of_order_inserts_sorted(self):
        tl = Timeline()
        tl.add(5.0, 1.0, "late")
        tl.add(0.0, 1.0, "early")
        assert [s.task for s in tl.slots()] == ["early", "late"]

    def test_overlap_rejected(self):
        tl = Timeline()
        tl.add(0.0, 4.0, "a")
        with pytest.raises(ScheduleError):
            tl.add(2.0, 1.0, "b")
        with pytest.raises(ScheduleError):
            tl.add(3.9, 1.0, "b")

    def test_overlap_before_rejected(self):
        tl = Timeline()
        tl.add(2.0, 2.0, "a")
        with pytest.raises(ScheduleError):
            tl.add(1.0, 2.0, "b")

    def test_touching_allowed(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(2.0, 2.0, "b")  # starts exactly at previous end
        assert len(tl) == 2

    def test_zero_duration_allowed(self):
        tl = Timeline()
        tl.add(1.0, 0.0, "v")
        assert tl.busy_time() == 0.0


class TestFindSlot:
    def test_empty_returns_ready(self):
        assert Timeline().find_slot(3.0, 2.0) == 3.0

    def test_append_after_last(self):
        tl = Timeline()
        tl.add(0.0, 4.0, "a")
        assert tl.find_slot(0.0, 2.0) == 4.0

    def test_gap_used(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(6.0, 2.0, "b")
        assert tl.find_slot(0.0, 3.0) == 2.0

    def test_gap_too_small_skipped(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(6.0, 2.0, "b")
        assert tl.find_slot(0.0, 5.0) == 8.0

    def test_ready_inside_gap(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(10.0, 2.0, "b")
        assert tl.find_slot(5.0, 3.0) == 5.0

    def test_ready_truncates_gap(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(10.0, 2.0, "b")
        # Gap [2, 10) but ready at 8 leaves only 2 units; need 3.
        assert tl.find_slot(8.0, 3.0) == 12.0

    def test_gap_before_first_slot(self):
        tl = Timeline()
        tl.add(5.0, 2.0, "a")
        assert tl.find_slot(0.0, 4.0) == 0.0

    def test_gap_straddling_ready(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "a")
        tl.add(4.0, 2.0, "b")
        assert tl.find_slot(2.0, 2.0) == 2.0

    def test_no_insertion_mode(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(6.0, 2.0, "b")
        assert tl.find_slot(0.0, 1.0, insertion=False) == 8.0

    def test_zero_duration_fits_anywhere(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        assert tl.find_slot(1.0, 0.0) in (1.0, 2.0)

    def test_invalid_args(self):
        with pytest.raises(ScheduleError):
            Timeline().find_slot(-1.0, 1.0)
        with pytest.raises(ScheduleError):
            Timeline().find_slot(0.0, -1.0)

    def test_result_is_feasible(self):
        # Adding at the found slot never raises.
        tl = Timeline()
        tl.add(0.0, 3.0, "a")
        tl.add(5.0, 1.0, "b")
        tl.add(9.0, 4.0, "c")
        for ready, dur in [(0.0, 2.0), (1.0, 1.0), (4.0, 3.0), (2.0, 10.0)]:
            clone = tl.copy()
            start = clone.find_slot(ready, dur)
            assert start >= ready
            clone.add(start, dur, "x")


class TestZeroWidthSlots:
    """Zero-cost tasks (virtual endpoints) occupy no time and must never
    block placement — regression tests for the half-open semantics."""

    def test_wide_add_over_empty_slot(self):
        tl = Timeline()
        tl.add(0.0, 0.0, "virtual")
        tl.add(0.0, 5.0, "real")  # must not conflict
        assert tl.busy_time() == 5.0

    def test_empty_slot_inside_busy_region_rejected_other_way(self):
        tl = Timeline()
        tl.add(0.0, 5.0, "real")
        tl.add(2.0, 0.0, "virtual")  # empty set never conflicts
        assert len(tl) == 2

    def test_conflict_behind_empty_slot_detected(self):
        tl = Timeline()
        tl.add(5.0, 0.0, "virtual")
        tl.add(5.0, 4.0, "busy")
        with pytest.raises(ScheduleError):
            tl.add(5.0, 2.0, "clash")

    def test_conflict_with_wide_predecessor_behind_empty(self):
        tl = Timeline()
        tl.add(0.0, 10.0, "wide")
        tl.add(5.0, 0.0, "virtual")
        with pytest.raises(ScheduleError):
            tl.add(6.0, 1.0, "clash")

    def test_find_slot_merges_gap_across_empty_slot(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(5.0, 0.0, "virtual")
        tl.add(10.0, 2.0, "b")
        # Gap [2, 10) is continuous despite the marker at 5.
        assert tl.find_slot(0.0, 4.0) == 2.0

    def test_find_slot_prev_end_skips_empty(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(3.0, 0.0, "virtual")
        assert tl.find_slot(3.5, 1.0) == 3.5


class TestRemoveAndStats:
    def test_remove(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(2.0, 2.0, "b")
        tl.remove("a")
        assert [s.task for s in tl.slots()] == ["b"]

    def test_remove_by_start(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "a")
        tl.add(5.0, 1.0, "a")  # duplicate copy of the same task
        tl.remove("a", start=5.0)
        assert [s.start for s in tl.slots()] == [0.0]

    def test_remove_missing(self):
        with pytest.raises(ScheduleError):
            Timeline().remove("ghost")

    def test_busy_idle(self):
        tl = Timeline()
        tl.add(0.0, 2.0, "a")
        tl.add(5.0, 1.0, "b")
        assert tl.busy_time() == 3.0
        assert tl.idle_time() == 3.0

    def test_gaps(self):
        tl = Timeline()
        tl.add(1.0, 2.0, "a")
        tl.add(5.0, 1.0, "b")
        assert tl.gaps() == [(0.0, 1.0), (3.0, 5.0)]

    def test_copy_independent(self):
        tl = Timeline()
        tl.add(0.0, 1.0, "a")
        clone = tl.copy()
        clone.add(1.0, 1.0, "b")
        assert len(tl) == 1 and len(clone) == 2
