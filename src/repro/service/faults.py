"""Fault-injection harness for chaos-testing the service path.

A :class:`FaultPlan` is a picklable set of :class:`FaultRule`\\ s.  The
engine ships the plan to every pool worker through the executor
initializer (including respawned pools), and the worker-side compute
path calls :func:`fire` at named points.  A matching rule then

* ``"kill"``  — dies abruptly (``os._exit``), the way an OOM-kill or a
  segfaulting native dependency takes a worker down.  The executor
  surfaces this as ``BrokenProcessPool`` and the engine's self-healing
  path takes over;
* ``"raise"`` — raises :class:`FaultInjected`, modelling a scheduling
  bug (maps to :class:`~repro.service.errors.WorkerError`);
* ``"delay"`` — sleeps ``delay_s``, modelling a stall.

Each rule fires at most ``times`` in total.  In one process that is a
module counter; across a *pool* of processes (and across respawns,
where every fresh worker re-installs the plan) the count must be
shared, so rules carry an optional ``token_dir``: firing claims one
``O_CREAT | O_EXCL`` token file, which is atomic across processes.
Chaos tests point ``token_dir`` at a tmp dir; without it a kill rule
would take down every respawned pool and no budget would ever suffice.

The harness is intentionally dependency-free and always importable —
installing no plan costs one ``None`` check per fire point.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear",
    "fire",
    "install",
]

#: Fire points the service path exposes (kept in one place so tests and
#: plans cannot drift from the instrumented code).
POINTS = (
    "worker.start",    # entering compute_schedule_payload, before parsing
    "worker.finish",   # after validation, before encoding the payload
    "worker.encode",   # inside payload encoding — covers the response
                       # serialisation stage itself (JSON *and* binary),
                       # which worker.finish fires strictly before
)

_ACTIONS = ("kill", "raise", "delay")


class FaultInjected(RuntimeError):
    """Raised by a ``"raise"`` rule inside the worker."""


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault: *where*, *what*, and *how many times*."""

    point: str
    action: str
    times: int = 1
    delay_s: float = 0.0
    message: str = "injected fault"
    exit_code: int = 1
    #: Directory for cross-process once-only tokens; required whenever
    #: the plan runs in a process pool (workers re-install the plan).
    token_dir: str | None = None

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise ValueError(f"unknown fire point {self.point!r}; known: {POINTS}")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown action {self.action!r}; known: {_ACTIONS}")
        if self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def token_stem(self) -> str:
        """Stable per-rule filename stem for the token files."""
        ident = f"{self.point}|{self.action}|{self.times}|{self.delay_s}|{self.message}"
        return "fault-" + hashlib.sha256(ident.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable bundle of fault rules."""

    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))


_ACTIVE: FaultPlan | None = None
#: In-process fire counts (per rule) for rules without a token_dir.
_FIRED: dict[FaultRule, int] = {}


def install(plan: FaultPlan | None) -> None:
    """Activate ``plan`` in this process (``None`` deactivates).

    Used directly by in-process tests, and as the pool-worker
    initializer by the engine.  Installation resets the in-process fire
    counts; token-dir counts live on disk and persist by design.
    """
    global _ACTIVE
    _ACTIVE = plan
    _FIRED.clear()


def clear() -> None:
    """Deactivate fault injection in this process."""
    install(None)


def active_plan() -> FaultPlan | None:
    """The plan currently installed in this process, if any."""
    return _ACTIVE


def _claim(rule: FaultRule) -> bool:
    """Atomically claim one firing of ``rule``; ``False`` = spent."""
    if rule.times <= 0:
        return False
    if rule.token_dir is not None:
        stem = os.path.join(rule.token_dir, rule.token_stem())
        for i in range(rule.times):
            try:
                fd = os.open(f"{stem}.{i}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # token dir gone: fail safe, do not fire
            os.close(fd)
            return True
        return False
    fired = _FIRED.get(rule, 0)
    if fired >= rule.times:
        return False
    _FIRED[rule] = fired + 1
    return True


def fire(point: str) -> None:
    """Trigger any active rules bound to ``point`` (worker-side hook)."""
    plan = _ACTIVE
    if plan is None:
        return
    for rule in plan.rules:
        if rule.point != point or not _claim(rule):
            continue
        if rule.action == "delay":
            time.sleep(rule.delay_s)
        elif rule.action == "raise":
            raise FaultInjected(rule.message)
        elif rule.action == "kill":
            os._exit(rule.exit_code)
