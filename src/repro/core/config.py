"""Configuration of the improved scheduler (the ablation surface)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.exceptions import ConfigurationError
from repro.schedulers.ranking import RankAggregation

_VALID_AGGS = ("mean", "median", "best", "worst")


@dataclass(frozen=True)
class ImprovedConfig:
    """Feature switches of :class:`~repro.core.improved.ImprovedScheduler`.

    Every experiment in the ablation bench (E12) is a point in this
    space; the default enables everything, matching the paper's headline
    algorithm.

    Attributes
    ----------
    rank_variants:
        Upward-rank aggregations to try; the scheduler runs one full
        pass per variant and keeps the best schedule.  On a homogeneous
        machine all variants coincide, so the first is used alone.
    lookahead:
        Score candidate processors by the earliest finish of the task's
        most critical unscheduled child instead of the task's own EFT.
    duplication:
        Allow idle-slot duplication of a constraining parent onto the
        candidate processor when it strictly lowers the task's EFT.
    refinement:
        Run the makespan-monotone re-insertion post-pass.
    refinement_rounds:
        Maximum refinement sweeps (each sweep visits every task once).
    insertion:
        Use insertion-based slot search (disable only for ablation).
    """

    rank_variants: Tuple[RankAggregation, ...] = ("mean", "worst")
    lookahead: bool = True
    duplication: bool = True
    refinement: bool = True
    refinement_rounds: int = 2
    insertion: bool = True

    def __post_init__(self) -> None:
        if not self.rank_variants:
            raise ConfigurationError("rank_variants must not be empty")
        for agg in self.rank_variants:
            if agg not in _VALID_AGGS:
                raise ConfigurationError(
                    f"unknown rank variant {agg!r}; valid: {_VALID_AGGS}"
                )
        if len(set(self.rank_variants)) != len(self.rank_variants):
            raise ConfigurationError("rank_variants contains duplicates")
        if self.refinement_rounds < 0:
            raise ConfigurationError("refinement_rounds must be >= 0")

    @classmethod
    def baseline_heft(cls) -> "ImprovedConfig":
        """The configuration that degenerates to plain HEFT."""
        return cls(
            rank_variants=("mean",),
            lookahead=False,
            duplication=False,
            refinement=False,
        )

    def label(self) -> str:
        """Compact ablation label, e.g. ``IMP[rank+la+dup+ref]``."""
        parts = []
        if len(self.rank_variants) > 1:
            parts.append("rank")
        if self.lookahead:
            parts.append("la")
        if self.duplication:
            parts.append("dup")
        if self.refinement:
            parts.append("ref")
        return "IMP[" + "+".join(parts) + "]" if parts else "IMP[none]"
