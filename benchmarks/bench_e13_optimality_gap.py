"""E13 — Optimality gap on tiny DAGs.

Expected shape: all heuristics are within ~15% of optimal on average at
this scale; the improved scheduler's gap is smaller than HEFT's and it
finds the exact optimum more often.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e13, e13_data
from repro.schedulers.optimal import BranchAndBoundScheduler


def test_e13_shape(quick):
    ratios = e13_data(quick)
    print("\n" + e13(quick))
    # Non-duplicating heuristics cannot beat the (non-duplicating)
    # optimum.  IMP *can* dip below 1.0: task duplication lies outside
    # the oracle's search space — a measured, expected effect.
    for name in ("HEFT", "CPOP"):
        assert min(ratios[name]) >= 1.0 - 1e-9, name
    assert min(ratios["IMP"]) >= 0.8  # duplication wins are bounded
    # The contribution is closer to optimal than HEFT on average.
    assert float(np.mean(ratios["IMP"])) <= float(np.mean(ratios["HEFT"])) + 1e-9
    # And the average gap stays modest at this scale.
    assert float(np.mean(ratios["IMP"])) < 1.15


def test_e13_benchmark_bb(benchmark):
    rng = np.random.default_rng(213)
    inst = W.random_instance(rng, num_tasks=7, num_procs=2)
    opt = BranchAndBoundScheduler(max_tasks=10)
    result = benchmark(opt.schedule, inst)
    assert result.makespan > 0
