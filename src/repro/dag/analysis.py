"""Machine-independent analysis of weighted task DAGs.

These functions operate on the *nominal* cost annotations of a
:class:`~repro.dag.graph.TaskDAG` (task ``cost`` and edge ``data``), i.e.
they describe the graph itself.  Machine-aware quantities (upward rank
over an ETC matrix, earliest start times, ...) live in
:mod:`repro.schedulers.ranking` because they need a machine model.
"""

from __future__ import annotations

from typing import Callable

from repro.dag.graph import TaskDAG
from repro.types import TaskId


def top_levels(dag: TaskDAG, include_comm: bool = True) -> dict[TaskId, float]:
    """t-level of every task: longest path length from any entry task
    to the task, *excluding* the task's own cost.

    With ``include_comm`` the edge data volumes count toward path length
    (the classic t-level); without, only computation counts.
    """
    level: dict[TaskId, float] = {}
    for t in dag.topological_order():
        best = 0.0
        for p in dag.predecessors(t):
            comm = dag.data(p, t) if include_comm else 0.0
            cand = level[p] + dag.cost(p) + comm
            if cand > best:
                best = cand
        level[t] = best
    return level


def bottom_levels(dag: TaskDAG, include_comm: bool = True) -> dict[TaskId, float]:
    """b-level of every task: longest path length from the task to any
    exit task, *including* the task's own cost."""
    level: dict[TaskId, float] = {}
    for t in reversed(dag.topological_order()):
        best = 0.0
        for s in dag.successors(t):
            comm = dag.data(t, s) if include_comm else 0.0
            cand = comm + level[s]
            if cand > best:
                best = cand
        level[t] = dag.cost(t) + best
    return level


def static_levels(dag: TaskDAG) -> dict[TaskId, float]:
    """Static level (SL): b-level ignoring communication costs."""
    return bottom_levels(dag, include_comm=False)


def critical_path_length(dag: TaskDAG, include_comm: bool = True) -> float:
    """Length of the longest path through the DAG (the critical path)."""
    if dag.num_tasks == 0:
        return 0.0
    return max(bottom_levels(dag, include_comm=include_comm).values())


def critical_path(dag: TaskDAG, include_comm: bool = True) -> list[TaskId]:
    """One critical path as a list of task ids from an entry to an exit.

    Ties are broken deterministically by the stable topological order, so
    repeated calls return the same path.
    """
    if dag.num_tasks == 0:
        return []
    blevel = bottom_levels(dag, include_comm=include_comm)
    order = dag.topological_order()
    pos = {t: i for i, t in enumerate(order)}
    # Start from the entry task with the largest b-level.
    current = min(dag.entry_tasks(), key=lambda t: (-blevel[t], pos[t]))
    path = [current]
    while True:
        succs = dag.successors(current)
        if not succs:
            return path
        # The critical child is the one whose (comm + b-level) dominates.
        def weight(s: TaskId) -> float:
            comm = dag.data(current, s) if include_comm else 0.0
            return comm + blevel[s]

        current = min(succs, key=lambda s: (-weight(s), pos[s]))
        path.append(current)


def graph_levels(dag: TaskDAG) -> dict[TaskId, int]:
    """ASAP depth of every task: 0 for entries, else 1 + max parent level."""
    depth: dict[TaskId, int] = {}
    for t in dag.topological_order():
        preds = dag.predecessors(t)
        depth[t] = 0 if not preds else 1 + max(depth[p] for p in preds)
    return depth


def parallelism_profile(dag: TaskDAG) -> list[int]:
    """Number of tasks at each ASAP depth (the graph's width profile).

    ``max(parallelism_profile(dag))`` bounds how many processors the graph
    can keep busy simultaneously under level-synchronous execution.
    """
    depth = graph_levels(dag)
    if not depth:
        return []
    width = [0] * (max(depth.values()) + 1)
    for lvl in depth.values():
        width[lvl] += 1
    return width


def ideal_lower_bound(dag: TaskDAG, num_procs: int) -> float:
    """A simple makespan lower bound: max(CP length without comm,
    total work / processor count).

    Used by tests and by the speedup metric's sanity checks; every valid
    schedule's makespan is >= this bound when the machine executes tasks
    at nominal speed.
    """
    if num_procs <= 0:
        raise ValueError(f"num_procs must be positive, got {num_procs}")
    if dag.num_tasks == 0:
        return 0.0
    return max(critical_path_length(dag, include_comm=False), dag.total_cost() / num_procs)


def map_costs(dag: TaskDAG, fn: Callable[[TaskId, float], float]) -> TaskDAG:
    """Return a copy of ``dag`` with every task cost replaced by
    ``fn(task_id, old_cost)``.  Edge data is preserved."""
    clone = dag.copy()
    for t in dag.tasks():
        clone.set_cost(t, fn(t, dag.cost(t)))
    return clone
