"""Command-line interface.

Subcommands::

    repro-sched list                      # experiments and schedulers
    repro-sched experiment E2 [--full]    # regenerate one figure/table
    repro-sched all [--full]              # regenerate everything
    repro-sched schedule --dag g.json --alg IMP --procs 8 [--gantt]
    repro-sched trace IMP g.json --format chrome --out trace.json
    repro-sched render --dag g.json --alg IMP --out sched.svg
    repro-sched simulate --dag g.json --alg IMP --noise 0.3 [--contention]
    repro-sched compare --suite application --alg IMP --alg HEFT
    repro-sched serve --port 8787 --workers 4 --cache-size 256
    repro-sched fleet --shards 4 --port 8800 --cache-dir /var/cache/repro
    repro-sched submit --dag g.json --alg IMP --endpoint 127.0.0.1:8787
    repro-sched demo                      # tiny end-to-end demonstration

(Also reachable as ``python -m repro ...`` and via the ``repro``
console-script alias.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.bench.registry import all_experiment_ids, get_experiment
    from repro.schedulers.registry import all_scheduler_names

    print("experiments:")
    for eid in all_experiment_ids():
        exp = get_experiment(eid)
        print(f"  {eid:<4} [{exp.artifact:6}] {exp.title}")
    print("\nschedulers:")
    print("  " + ", ".join(all_scheduler_names()))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.bench.registry import run_experiment

    print(run_experiment(args.id, quick=not args.full))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.bench.registry import all_experiment_ids, run_experiment

    for eid in all_experiment_ids():
        print(run_experiment(eid, quick=not args.full))
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.report import write_report

    ids = args.id or None
    path = write_report(args.out, quick=not args.full, experiment_ids=ids)
    print(f"wrote {path}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.dag import io as dag_io
    from repro.instance import make_instance
    from repro.schedule.metrics import slr, speedup
    from repro.schedule.validation import validate
    from repro.schedulers.registry import get_scheduler

    path = Path(args.dag)
    if path.suffix == ".json":
        dag = dag_io.load_json(path)
    else:
        dag = dag_io.load_stg(path)
    instance = make_instance(
        dag,
        num_procs=args.procs,
        heterogeneity=args.heterogeneity,
        seed=args.seed,
    )
    if args.deadline is not None:
        instance = instance.with_deadline(args.deadline)
    scheduler = get_scheduler(args.alg)
    if args.tolerate_k:
        from repro.schedulers.resilient import ResilientScheduler

        scheduler = ResilientScheduler(scheduler, k=args.tolerate_k)
    if args.trace_out:
        from repro.obs import Tracer, use_tracer, write_trace

        tracer = Tracer(name=f"repro:{scheduler.name}")
        with use_tracer(tracer):
            schedule = scheduler.schedule(instance)
            validate(schedule, instance)
        write_trace(tracer, args.trace_out)
        print(f"trace     : wrote {args.trace_out} ({len(tracer.spans())} spans)")
    else:
        schedule = scheduler.schedule(instance)
        validate(schedule, instance)
    print(f"algorithm : {scheduler.name}")
    print(f"dag       : {dag.name} ({dag.num_tasks} tasks, {dag.num_edges} edges)")
    print(f"machine   : {args.procs} processors, beta={args.heterogeneity}")
    print(f"makespan  : {schedule.makespan:.4f}")
    print(f"SLR       : {slr(schedule, instance):.4f}")
    print(f"speedup   : {speedup(schedule, instance):.4f}")
    if args.tolerate_k or instance.deadline is not None:
        from repro.schedulers.resilient import schedulability_report

        report = schedulability_report(schedule, instance, k=args.tolerate_k)
        print(f"tolerance : k={report.k} "
              f"(worst-case makespan {report.worst_makespan:.4f})")
        if instance.deadline is not None:
            verdict = "SCHEDULABLE" if report.schedulable else "NOT SCHEDULABLE"
            print(f"deadline  : {instance.deadline:.4f} -> {verdict}")
            if report.witness is not None and report.witness:
                print(f"witness   : kill set {report.witness}")
        elif not report.schedulable:
            print(f"warning   : tasks starve under kill set {report.witness}")
    if args.gantt:
        print()
        print(schedule.gantt())
    return 0


def _load_dag(path_text: str):
    from repro.dag import io as dag_io

    path = Path(path_text)
    if path.suffix == ".json":
        return dag_io.load_json(path)
    return dag_io.load_stg(path)


def _resolve_alg(name: str) -> str:
    """Scheduler name as registered, accepting lower/mixed case."""
    from repro.schedulers.registry import all_scheduler_names

    known = all_scheduler_names()
    if name in known:
        return name
    if name.upper() in known:
        return name.upper()
    return name  # let get_scheduler raise its usual error


def _load_instance_arg(path_text: str, args: argparse.Namespace):
    """An instance from either a v1 instance document or a DAG file.

    ``.json`` files are tried as full instance documents first (the
    service wire format, ETC matrix included); anything else — a DAG
    JSON or a ``.stg`` file — goes through :func:`make_instance` with
    the ``--procs``/``--heterogeneity``/``--seed`` knobs.
    """
    from repro.instance import make_instance

    path = Path(path_text)
    if path.suffix == ".json":
        from repro.instance_io import instance_from_json

        try:
            return instance_from_json(path.read_text())
        except Exception:
            pass  # not an instance document; treat as a DAG file
    dag = _load_dag(path_text)
    return make_instance(
        dag, num_procs=args.procs, heterogeneity=args.heterogeneity, seed=args.seed
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        Tracer,
        render_trace,
        trace_format_for_path,
        use_tracer,
        validate_trace,
        write_trace,
    )
    from repro.schedule.validation import validate
    from repro.schedulers.registry import get_scheduler

    instance = _load_instance_arg(args.instance, args)
    scheduler = get_scheduler(_resolve_alg(args.alg))
    tracer = Tracer(name=f"repro:{scheduler.name}")
    with use_tracer(tracer):
        schedule = scheduler.schedule(instance)
        validate(schedule, instance)
    problems = validate_trace(tracer)
    if problems:  # pragma: no cover - would be a tracer bug
        print("\n".join(f"warning: {p}" for p in problems), file=sys.stderr)
    fmt = args.format
    if args.out:
        if fmt is None:
            fmt = trace_format_for_path(args.out)
        write_trace(tracer, args.out, fmt)
        counters = tracer.counters()
        print(f"algorithm : {scheduler.name}")
        print(f"instance  : {instance.name} ({instance.num_tasks} tasks, "
              f"{instance.num_procs} processors)")
        print(f"makespan  : {schedule.makespan:.4f}")
        print(f"spans     : {len(tracer.spans())}")
        if counters:
            joined = ", ".join(f"{k}={v:g}" for k, v in sorted(counters.items()))
            print(f"counters  : {joined}")
        print(f"wrote {args.out} ({fmt})")
    else:
        sys.stdout.write(render_trace(tracer, fmt or "chrome"))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.instance import make_instance
    from repro.schedule.io import save_svg
    from repro.schedule.validation import validate
    from repro.schedulers.registry import get_scheduler

    dag = _load_dag(args.dag)
    instance = make_instance(
        dag, num_procs=args.procs, heterogeneity=args.heterogeneity, seed=args.seed
    )
    schedule = get_scheduler(args.alg).schedule(instance)
    validate(schedule, instance)
    save_svg(schedule, args.out)
    print(f"wrote {args.out} (makespan {schedule.makespan:.4f})")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.instance import make_instance
    from repro.schedulers.registry import get_scheduler
    from repro.sim import MultiplicativeNoise, NoNoise, execute

    dag = _load_dag(args.dag)
    instance = make_instance(
        dag, num_procs=args.procs, heterogeneity=args.heterogeneity, seed=args.seed
    )
    schedule = get_scheduler(args.alg).schedule(instance)
    noise = MultiplicativeNoise(args.noise, seed=args.seed) if args.noise > 0 else NoNoise()
    result = execute(schedule, instance, noise, link_contention=args.contention)
    print(f"planned makespan  : {schedule.makespan:.4f}")
    print(f"simulated makespan: {result.makespan:.4f}")
    print(f"ratio             : {result.makespan / schedule.makespan:.4f}")
    print(f"events processed  : {result.events_processed}")
    return 0


def _cmd_simulate_online(args: argparse.Namespace) -> int:
    from repro.sim import (
        PoissonArrivals,
        build_templates,
        simulate_online,
        trace_from_json,
        trace_to_json,
    )

    templates = build_templates(
        num_templates=args.templates,
        num_tasks=args.tasks,
        num_procs=args.procs,
        heterogeneity=args.heterogeneity,
        seed=args.seed,
    )
    if args.load_trace:
        with open(args.load_trace, "r", encoding="utf-8") as fh:
            arrivals = trace_from_json(fh.read()).realize(sorted(templates))
    else:
        arrivals = PoissonArrivals(
            rate=args.rate, jobs=args.jobs, seed=args.seed
        ).realize(sorted(templates))
    if args.save_trace:
        with open(args.save_trace, "w", encoding="utf-8") as fh:
            fh.write(trace_to_json(arrivals))
        print(f"wrote {args.save_trace} ({len(arrivals)} arrivals)")
    result = simulate_online(
        templates,
        arrivals,
        alg=args.alg,
        policy=args.policy,
        relower=args.relower,
        noise_cv=args.noise,
        seed=args.seed,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        print(f"wrote {args.json}")
    m = result.metrics_dict()
    print(f"algorithm   : {result.alg}  policy={result.policy}  "
          f"relower={result.relower}")
    print(f"jobs        : {len(result.jobs)} over {len(templates)} templates "
          f"on {result.machine}")
    print(f"makespan    : {result.makespan:.4f}")
    print(f"response    : mean={m['response_mean']:.4f}  p50={m['response_p50']:.4f}  "
          f"p95={m['response_p95']:.4f}  p99={m['response_p99']:.4f}")
    print(f"slowdown    : mean={m['slowdown_mean']:.4f}  p99={m['slowdown_p99']:.4f}  "
          f"max={m['slowdown_max']:.4f}")
    print(f"utilization : {m['utilization']:.4f}  throughput={m['throughput']:.6f}")
    print(f"replans     : {result.replans}  compacted={result.compacted}  "
          f"peak-live={result.peak_live_intervals}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.compare import compare_schedulers
    from repro.dag.suites import SUITES

    if args.suite not in SUITES:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"unknown suite {args.suite!r}; known: {', '.join(sorted(SUITES))}"
        )
    dags = SUITES[args.suite]()

    def run():
        return compare_schedulers(
            args.alg or ["IMP", "HEFT", "CPOP"],
            dags,
            num_procs=args.procs,
            heterogeneity=args.heterogeneity,
            etc_draws=args.draws,
            seed=args.seed,
        )

    if args.trace_out:
        from repro.obs import Tracer, use_tracer, write_trace

        tracer = Tracer(name=f"repro:compare:{args.suite}")
        with use_tracer(tracer):
            result = run()
        write_trace(tracer, args.trace_out)
        print(f"trace: wrote {args.trace_out} ({len(tracer.spans())} spans)\n")
    else:
        result = run()
    print(result.report())
    print(f"\nwinner: {result.winner()}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.instance import make_instance
    from repro.schedule.analysis import explain
    from repro.schedulers.registry import get_scheduler

    dag = _load_dag(args.dag)
    instance = make_instance(
        dag, num_procs=args.procs, heterogeneity=args.heterogeneity, seed=args.seed
    )
    schedule = get_scheduler(args.alg).schedule(instance)
    print(explain(schedule, instance))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.bench.sensitivity import OperatingPoint, analyze_sensitivity

    base = OperatingPoint(
        num_tasks=args.tasks,
        num_procs=args.procs,
        ccr=args.ccr,
        heterogeneity=args.heterogeneity,
    )
    result = analyze_sensitivity(
        args.alg, base=base, step=args.step, reps=args.reps, seed=args.seed
    )
    print(result.table())
    print(f"\ndominant parameter: {result.dominant()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.obs import Tracer, write_trace
    from repro.service import EngineConfig, ScheduleServer, SchedulingEngine

    config = EngineConfig(
        workers=args.workers,
        cache_size=args.cache_size,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        default_timeout=args.timeout,
        max_respawns=args.max_respawns,
        respawn_window=args.respawn_window,
        cache_dir=args.cache_dir,
    )
    # The daemon always traces: the span store is bounded, the no-op
    # question doesn't arise (requests are I/O-scale, not decode-scale),
    # and it is what makes /metrics carry the repro_obs_* counters.
    tracer = Tracer(name="repro-service", max_spans=args.trace_spans)

    async def run() -> None:
        server = ScheduleServer(SchedulingEngine(config, tracer=tracer),
                                host=args.host, port=args.port)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        # bound_port, not args.port: with --port 0 the kernel picks the
        # port, and this line is how callers (FleetManager, scripts)
        # discover it.
        print(
            f"repro service listening on http://{args.host}:{server.bound_port} "
            f"(workers={config.workers}, cache={config.cache_size}, "
            f"queue={config.queue_depth})",
            flush=True,
        )
        report = server.engine.recovery_report
        if report is not None:
            print(
                f"cache: recovered {report['recovered']} persisted schedules "
                f"from {config.cache_dir} "
                f"(skipped={report['skipped']}, undecodable={report['undecodable']})",
                flush=True,
            )
        await server.serve_until_shutdown()
        stats = server.engine.stats()
        print(
            f"drained: {stats.completed} completed, {stats.cache_hits} cache hits, "
            f"{stats.rejected} rejected, {stats.timeouts} timeouts, "
            f"{stats.respawns} pool respawns",
            flush=True,
        )
        if args.trace_out:
            write_trace(tracer, args.trace_out)
            print(f"trace: wrote {args.trace_out} "
                  f"({len(tracer.spans())} spans, {tracer.dropped_spans} dropped)",
                  flush=True)

    asyncio.run(run())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.fleet import FleetManager

    async def run() -> None:
        manager = FleetManager(
            shards=args.shards,
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_size=args.cache_size,
            queue_depth=args.queue_depth,
            cache_dir=args.cache_dir,
            vnodes=args.vnodes,
            health_interval=args.health_interval,
            max_respawns=args.max_respawns,
            respawn_window=args.respawn_window,
        )
        await manager.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, manager.router.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        # Like serve: print the *bound* router port, so --port 0 works.
        print(
            f"repro fleet listening on http://{manager.endpoint} "
            f"(shards={args.shards}, workers={args.workers}/shard, "
            f"cache={args.cache_size}/shard)",
            flush=True,
        )
        for name, shard in sorted(manager.shard_processes.items()):
            segment = f", cache-dir={shard.cache_dir}" if shard.cache_dir else ""
            print(f"  {name}: http://{args.host}:{shard.port} "
                  f"(pid {shard.pid}{segment})", flush=True)
        await manager.serve_until_shutdown()
        stats = manager.router.stats
        print(
            f"fleet drained: {stats.requests} routed, {stats.proxied} proxied, "
            f"{stats.retries} re-routed, {stats.quarantines} quarantines, "
            f"{stats.readmissions} readmissions",
            flush=True,
        )

    asyncio.run(run())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.instance import make_instance
    from repro.service import RetryPolicy, ServiceClient

    dag = _load_dag(args.dag)
    instance = make_instance(
        dag, num_procs=args.procs, heterogeneity=args.heterogeneity, seed=args.seed
    )
    policy = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    client = ServiceClient.at(args.endpoint, request_timeout=args.timeout,
                              retry_policy=policy, wire=args.wire)
    result = client.schedule_sync(instance, alg=args.alg, timeout=args.timeout)
    print(f"algorithm  : {result.alg}")
    print(f"dag        : {dag.name} ({dag.num_tasks} tasks, {dag.num_edges} edges)")
    print(f"fingerprint: {result.fingerprint}")
    print(f"cache hit  : {'yes' if result.cache_hit else 'no'}")
    print(f"makespan   : {result.makespan:.4f}")
    print(f"server ms  : {result.server_ms:.3f}")
    if client.retry_stats.retries:
        print(f"retries    : {client.retry_stats.retries} "
              f"({client.retry_stats.backoff_s:.3f}s backoff)")
    if args.gantt:
        print()
        print(result.to_schedule(instance.machine).gantt())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.dag.generators import gaussian_elimination_dag
    from repro.instance import make_instance
    from repro.schedule.metrics import slr
    from repro.schedule.validation import validate
    from repro.schedulers.registry import get_scheduler

    dag = gaussian_elimination_dag(6)
    instance = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=42)
    print(f"Gaussian elimination m=6: {dag.num_tasks} tasks on 4 processors\n")
    for name in ("HEFT", "CPOP", "IMP"):
        schedule = get_scheduler(name).schedule(instance)
        validate(schedule, instance)
        print(f"{name:6} makespan={schedule.makespan:9.2f}  SLR={slr(schedule, instance):.4f}")
    print()
    print(get_scheduler("IMP").schedule(instance).gantt())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Static task scheduling for heterogeneous and homogeneous systems",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments and schedulers")
    p_list.set_defaults(fn=_cmd_list)

    p_exp = sub.add_parser("experiment", help="run one experiment")
    p_exp.add_argument("id", help="experiment id, e.g. E2")
    p_exp.add_argument("--full", action="store_true", help="full (paper-scale) protocol")
    p_exp.set_defaults(fn=_cmd_experiment)

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--full", action="store_true", help="full (paper-scale) protocol")
    p_all.set_defaults(fn=_cmd_all)

    p_report = sub.add_parser("report", help="write a Markdown evaluation report")
    p_report.add_argument("--out", default="REPORT.md", help="output path")
    p_report.add_argument("--full", action="store_true", help="paper-scale protocol")
    p_report.add_argument("--id", action="append",
                          help="experiment id (repeatable; default: all)")
    p_report.set_defaults(fn=_cmd_report)

    p_sched = sub.add_parser("schedule", help="schedule a task-graph file")
    p_sched.add_argument("--dag", required=True, help="path to .json or .stg graph")
    p_sched.add_argument("--alg", default="IMP", help="scheduler name (default IMP)")
    p_sched.add_argument("--procs", type=int, default=8)
    p_sched.add_argument("--heterogeneity", type=float, default=0.5)
    p_sched.add_argument("--seed", type=int, default=0)
    p_sched.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p_sched.add_argument("--tolerate-k", type=int, default=0, metavar="K",
                         help="fault tolerance: place K backup copies per task "
                              "and report worst-case behaviour over all size-K "
                              "kill sets")
    p_sched.add_argument("--deadline", type=float, default=None, metavar="D",
                         help="attach a completion deadline and report "
                              "schedulability (met/missed, worst-case slack)")
    p_sched.add_argument("--trace-out", default=None, metavar="PATH",
                         help="also record an execution trace "
                              "(.jsonl -> JSONL, else Chrome trace_event)")
    p_sched.set_defaults(fn=_cmd_schedule)

    p_trace = sub.add_parser(
        "trace", help="schedule once and emit the execution trace"
    )
    p_trace.add_argument("alg", help="scheduler name (case-insensitive)")
    p_trace.add_argument("instance",
                         help="instance document (.json) or DAG file (.json/.stg)")
    p_trace.add_argument("--format", choices=("chrome", "jsonl"), default=None,
                         help="output format (default: chrome, or from --out suffix)")
    p_trace.add_argument("--out", default=None,
                         help="output path (default: print to stdout)")
    p_trace.add_argument("--procs", type=int, default=8,
                         help="processors when the input is a bare DAG")
    p_trace.add_argument("--heterogeneity", type=float, default=0.5)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.set_defaults(fn=_cmd_trace)

    def add_instance_args(p):
        p.add_argument("--dag", required=True, help="path to .json or .stg graph")
        p.add_argument("--alg", default="IMP", help="scheduler name (default IMP)")
        p.add_argument("--procs", type=int, default=8)
        p.add_argument("--heterogeneity", type=float, default=0.5)
        p.add_argument("--seed", type=int, default=0)

    p_render = sub.add_parser("render", help="render a schedule as SVG")
    add_instance_args(p_render)
    p_render.add_argument("--out", required=True, help="output .svg path")
    p_render.set_defaults(fn=_cmd_render)

    p_sim = sub.add_parser("simulate", help="replay a schedule in the DES simulator")
    add_instance_args(p_sim)
    p_sim.add_argument("--noise", type=float, default=0.0,
                       help="runtime-noise CV (0 = exact replay)")
    p_sim.add_argument("--contention", action="store_true",
                       help="serialise transfers per link (FIFO)")
    p_sim.set_defaults(fn=_cmd_simulate)

    p_online = sub.add_parser(
        "simulate-online",
        help="stream job arrivals onto one shared cluster (online scheduling)",
    )
    p_online.add_argument("--jobs", type=int, default=200,
                          help="number of arriving jobs (Poisson mode)")
    p_online.add_argument("--rate", type=float, default=0.05,
                          help="arrival rate, jobs per unit time")
    p_online.add_argument("--alg", default="HEFT",
                          help="list scheduler placing each job (default HEFT)")
    p_online.add_argument("--policy", default="queue",
                          help="rescheduling policy: queue, replace, preempt, ...")
    p_online.add_argument("--relower", default="cached", choices=["cached", "full"],
                          help="reuse the per-template lowering or rebuild per arrival")
    p_online.add_argument("--templates", type=int, default=3,
                          help="size of the job-template catalogue")
    p_online.add_argument("--tasks", type=int, default=20,
                          help="tasks per template (centre of the size fan-out)")
    p_online.add_argument("--procs", type=int, default=8)
    p_online.add_argument("--heterogeneity", type=float, default=0.5)
    p_online.add_argument("--seed", type=int, default=0)
    p_online.add_argument("--noise", type=float, default=0.0,
                          help="runtime-noise CV applied per job (0 = exact ETC)")
    p_online.add_argument("--json", default="",
                          help="write the full result JSON here")
    p_online.add_argument("--save-trace", default="",
                          help="save the realized arrival trace (replayable)")
    p_online.add_argument("--load-trace", default="",
                          help="replay a saved arrival trace instead of Poisson")
    p_online.set_defaults(fn=_cmd_simulate_online)

    p_cmp = sub.add_parser("compare", help="compare schedulers over a suite")
    p_cmp.add_argument("--suite", default="application",
                       help="suite name: application | random | mixed")
    p_cmp.add_argument("--alg", action="append",
                       help="scheduler name (repeatable; default IMP/HEFT/CPOP)")
    p_cmp.add_argument("--procs", type=int, default=8)
    p_cmp.add_argument("--heterogeneity", type=float, default=0.5)
    p_cmp.add_argument("--draws", type=int, default=3, help="ETC draws per DAG")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record an execution trace of the whole comparison")
    p_cmp.set_defaults(fn=_cmd_compare)

    p_explain = sub.add_parser("explain", help="dominant path / slack report")
    add_instance_args(p_explain)
    p_explain.set_defaults(fn=_cmd_explain)

    p_sens = sub.add_parser("sensitivity", help="which workload knob hurts most?")
    p_sens.add_argument("--alg", default="IMP")
    p_sens.add_argument("--tasks", type=int, default=100)
    p_sens.add_argument("--procs", type=int, default=8)
    p_sens.add_argument("--ccr", type=float, default=1.0)
    p_sens.add_argument("--heterogeneity", type=float, default=0.5)
    p_sens.add_argument("--step", type=float, default=0.25)
    p_sens.add_argument("--reps", type=int, default=5)
    p_sens.add_argument("--seed", type=int, default=0)
    p_sens.set_defaults(fn=_cmd_sensitivity)

    p_serve = sub.add_parser("serve", help="run the scheduling service daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="pool processes (0 = in-process thread)")
    p_serve.add_argument("--cache-size", type=int, default=256,
                         help="schedule cache capacity (entries)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persist the schedule cache to an append-only "
                              "segment file in DIR; a restarted daemon "
                              "recovers it and comes back warm")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="bounded request queue (full -> 429)")
    p_serve.add_argument("--batch-size", type=int, default=8,
                         help="max requests dispatched per batch")
    p_serve.add_argument("--max-respawns", type=int, default=3,
                         help="worker-pool respawns allowed per window before "
                              "the engine closes (default 3)")
    p_serve.add_argument("--respawn-window", type=float, default=60.0,
                         help="sliding window (seconds) the respawn budget "
                              "applies to (default 60)")
    p_serve.add_argument("--timeout", type=float, default=30.0,
                         help="default per-request timeout (seconds)")
    p_serve.add_argument("--trace-spans", type=int, default=100_000,
                         help="bound on retained trace spans")
    p_serve.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write the service trace on graceful shutdown")
    p_serve.set_defaults(fn=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="run a sharded fleet: consistent-hash router + N serve daemons",
    )
    p_fleet.add_argument("--shards", type=int, default=4,
                         help="backend serve daemons to spawn (default 4)")
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument("--port", type=int, default=8800,
                         help="router TCP port (0 = ephemeral)")
    p_fleet.add_argument("--workers", type=int, default=1,
                         help="pool processes per shard (0 = in-process thread)")
    p_fleet.add_argument("--cache-size", type=int, default=256,
                         help="schedule cache capacity per shard (entries)")
    p_fleet.add_argument("--queue-depth", type=int, default=64,
                         help="bounded request queue per shard (full -> 429)")
    p_fleet.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="root for per-shard persistent cache segments "
                              "(DIR/shard-N); respawned shards come back warm")
    p_fleet.add_argument("--vnodes", type=int, default=128,
                         help="virtual nodes per shard on the hash ring")
    p_fleet.add_argument("--health-interval", type=float, default=0.5,
                         help="seconds between shard health probes")
    p_fleet.add_argument("--max-respawns", type=int, default=3,
                         help="shard respawns allowed per window before the "
                              "shard stays quarantined (default 3)")
    p_fleet.add_argument("--respawn-window", type=float, default=30.0,
                         help="sliding window (seconds) for the respawn budget")
    p_fleet.set_defaults(fn=_cmd_fleet)

    p_submit = sub.add_parser("submit", help="submit a task graph to a running service")
    add_instance_args(p_submit)
    p_submit.add_argument("--endpoint", default="127.0.0.1:8787",
                          help="service endpoint host:port")
    p_submit.add_argument("--retries", type=int, default=3,
                          help="client retries on backpressure/connection "
                               "failures (0 disables; default 3)")
    p_submit.add_argument("--timeout", type=float, default=60.0,
                          help="request timeout (seconds)")
    p_submit.add_argument("--wire", choices=("bin", "json"), default="bin",
                          help="wire format for the request/response "
                               "(binary is the default and falls back to "
                               "JSON against an older server)")
    p_submit.add_argument("--gantt", action="store_true",
                          help="print an ASCII Gantt chart of the result")
    p_submit.set_defaults(fn=_cmd_submit)

    p_demo = sub.add_parser("demo", help="tiny end-to-end demonstration")
    p_demo.set_defaults(fn=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
