"""Minimal asyncio HTTP endpoint in front of the engine.

Stdlib-only by design (``asyncio.start_server`` + hand-rolled HTTP/1.1
framing): the service has to run in the same environments the library
does, with no web-framework dependency.  The surface is deliberately
tiny:

====================  =================================================
``POST /v1/schedule``  schedule one instance (JSON request document)
``GET  /v1/stats``     :class:`ServiceStats` snapshot as JSON
``GET  /metrics``      Prometheus-style text exposition
``GET  /healthz``      liveness probe
``POST /v1/shutdown``  request a graceful drain-and-exit
====================  =================================================

Error mapping: every :class:`~repro.service.errors.ServiceError`
subclass carries its HTTP status (400 bad request, 429 backpressure,
503 draining, 504 timeout, 500 worker failure), so the handler is a
single try/except.

Two cache layers answer repeats: a byte-exact map from request-body
digest to request key (skips parsing and fingerprinting altogether)
backed by the engine's canonical content-addressed cache (catches the
same instance serialised differently).  Both serve the identical stored
payload, so hits are bit-identical either way.

Wire negotiation: a ``POST /v1/schedule`` body is JSON unless its
``Content-Type`` is :data:`~repro.service.wire.BINARY_CONTENT_TYPE`,
and the response is JSON unless the request's ``Accept`` names the
binary type — so existing JSON clients keep working unchanged while
binary clients skip document building on both sides.  Errors are
always JSON (they must stay debuggable from a shell).  Connections
close after one exchange unless the client asks ``Connection:
keep-alive``; the binary client does, which removes the per-request
TCP connect from the warm path.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from collections import OrderedDict

from repro.service import wire
from repro.service.cache import request_key_from_fingerprint
from repro.service.engine import SchedulingEngine
from repro.service.errors import RequestError, ServiceError
from repro.service.protocol import parse_request_doc

#: Largest accepted request body (a ~100k-task instance document).
MAX_BODY = 64 * 1024 * 1024

#: Entries kept in the exact-body fast-path map (body digest -> request
#: key).  Each entry is two hex digests, so this is a few hundred kB.
EXACT_MAP_SIZE = 4096

#: Entries kept in the encoded-payload memo (request key -> wire bytes).
#: Cached payloads are immutable, so a warm binary hit re-serves the
#: same bytes instead of re-encoding.
ENCODED_MAP_SIZE = 1024

#: Request header carrying the client's absolute ``time.monotonic()``
#: deadline.  A header (not a body field) so that byte-identical bodies
#: stay byte-identical across requests — the exact-body fast path and
#: the client's body memo both depend on that.
DEADLINE_HEADER = "x-repro-deadline"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ScheduleServer:
    """Serves one :class:`SchedulingEngine` over local TCP."""

    def __init__(self, engine: SchedulingEngine, host: str = "127.0.0.1",
                 port: int = 8787) -> None:
        self.engine = engine
        self.host = host
        self._port = port
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()
        # Exact-body fast path: sha256(request body) -> request key.  A
        # byte-identical resubmission skips JSON parsing and instance
        # fingerprinting and answers straight from the schedule cache;
        # semantically-equal-but-differently-serialised requests still
        # hit through the canonical fingerprint path in the engine.
        self._exact: OrderedDict[str, str] = OrderedDict()
        # Binary warm path: request key -> wire-encoded payload bytes.
        self._encoded: OrderedDict[str, bytes] = OrderedDict()
        # Live connections, so stop() can nudge parked keep-alive
        # handlers (blocked reading the next request) to exit cleanly.
        self._conns: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the engine and begin accepting connections."""
        await self.engine.start()
        self._server = await asyncio.start_server(self._handle, self.host, self._port)

    @property
    def bound_port(self) -> int | None:
        """The port the listener actually bound, or ``None`` before
        :meth:`start`.  With ``port=0`` this is the kernel-assigned
        ephemeral port — the value startup output must print, and the
        one :class:`~repro.service.fleet.FleetManager` parses to
        discover its backends."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return None

    @property
    def port(self) -> int:
        """The bound port while listening, else the configured one."""
        bound = self.bound_port
        return bound if bound is not None else self._port

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_until_shutdown` to drain and exit."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown` (or ``POST /v1/shutdown``),
        then stop gracefully."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting connections, drain the engine, shut down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the listener doesn't touch established connections:
        # keep-alive handlers parked waiting for a next request would
        # otherwise linger until the client goes away.  Feed them EOF.
        for writer in list(self._conns):
            writer.close()
        await self.engine.stop(drain=drain)
        self._shutdown.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._conns.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, path, body, headers = request
                status, content_type, payload, extra = await self._route(
                    method, path, body, headers
                )
                # Close after one exchange unless the client opted into
                # keep-alive (the binary client does; legacy JSON
                # clients never send the header and see the historical
                # one-shot behaviour).  A stopping server always closes.
                keep_alive = (
                    headers.get("connection", "").lower() == "keep-alive"
                    and self._server is not None
                )
                await self._write_response(writer, status, content_type, payload,
                                           extra, keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            # Loop teardown cancelled a parked keep-alive handler.
            # Swallowing (not re-raising) keeps the stdlib streams
            # done-callback from logging a spurious traceback.
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.x request; returns (method, path, body, headers).

        The whole header block is read with a single ``readuntil`` —
        one syscall-ish await instead of a per-line loop, which matters
        on the keep-alive warm path where header parsing is a visible
        fraction of the total exchange.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean close (or trailing garbage) between requests
        except (asyncio.LimitOverrunError, ValueError):
            return None
        lines = head[:-4].decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", 0))
        except ValueError:
            content_length = 0
        if content_length > MAX_BODY:
            return method, path, b"\x00too-large", headers
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body, headers

    async def _route(self, method: str, path: str, body: bytes,
                     headers: dict[str, str] | None = None):
        """Dispatch one request; returns (status, content-type, bytes,
        extra response headers)."""
        headers = headers or {}
        if body.startswith(b"\x00too-large"):
            return self._json(413, {"status": "error", "error": "request body too large"})
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return self._json(405, {"status": "error", "error": "use GET"})
            return self._json(200, {"status": "ok", "draining": self.engine.draining})
        if path == "/metrics":
            if method != "GET":
                return self._json(405, {"status": "error", "error": "use GET"})
            return (200, "text/plain; version=0.0.4",
                    self.engine.render_metrics().encode(), {})
        if path == "/v1/stats":
            if method != "GET":
                return self._json(405, {"status": "error", "error": "use GET"})
            return self._json(200, {"status": "ok", "stats": self.engine.stats().as_dict()})
        if path == "/v1/shutdown":
            if method != "POST":
                return self._json(405, {"status": "error", "error": "use POST"})
            # Respond first, then trip the shutdown event: the caller
            # gets its 200 before the listener closes.
            asyncio.get_running_loop().call_soon(self.request_shutdown)
            return self._json(200, {"status": "ok", "shutting_down": True})
        if path == "/v1/schedule":
            if method != "POST":
                return self._json(405, {"status": "error", "error": "use POST"})
            return await self._handle_schedule(body, headers)
        return self._json(404, {"status": "error", "error": f"no such route {path}"})

    async def _handle_schedule(self, body: bytes, headers: dict[str, str]):
        binary_request = (
            headers.get("content-type", "").split(";", 1)[0].strip().lower()
            == wire.BINARY_CONTENT_TYPE
        )
        binary_response = wire.BINARY_CONTENT_TYPE in headers.get("accept", "").lower()
        tracer = self.engine.tracer
        try:
            deadline = self._parse_deadline(headers)
            if binary_request:
                # Binary requests carry the instance's content address,
                # so the warm path is a direct cache-key lookup — no
                # body hashing, no instance decode.  The claimed
                # fingerprint is only ever a lookup hint: entries are
                # stored under server-computed keys, so a wrong claim
                # misses and the request is computed honestly.
                blob, alg, fingerprint, timeout, trace_id = wire.decode_request(body)
                if fingerprint:
                    payload = self.engine.submit_cached(
                        request_key_from_fingerprint(fingerprint, alg)
                    )
                    if payload is not None:
                        return self._respond_schedule(payload, binary_response)
                if blob is None:
                    # Compact request missed: the client optimistically
                    # sent only the content address.  This exact error
                    # text is the protocol's "send the full form" signal.
                    raise RequestError(
                        f"unknown instance fingerprint {fingerprint[:16]}..."
                    )
                with tracer.span("service.decode", detach=True, wire="bin"):
                    self._check_alg(alg)
                    instance = wire.decode_instance(blob)
                payload = await self.engine.submit(instance, alg, timeout=timeout,
                                                   trace_id=trace_id,
                                                   deadline=deadline,
                                                   encoded=bytes(blob))
            else:
                body_key = hashlib.sha256(body).hexdigest()
                known_key = self._exact.get(body_key)
                if known_key is not None:
                    payload = self.engine.submit_cached(known_key)
                    if payload is not None:
                        self._exact.move_to_end(body_key)
                        return self._respond_schedule(payload, binary_response)
                with tracer.span("service.decode", detach=True, wire="json"):
                    try:
                        doc = json.loads(body.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        raise RequestError(f"invalid JSON body: {exc}") from None
                    instance, alg, timeout, trace_id = parse_request_doc(doc)
                payload = await self.engine.submit(instance, alg, timeout=timeout,
                                                   trace_id=trace_id, deadline=deadline)
                self._remember_exact(body_key, payload["fingerprint"])
        except ServiceError as exc:
            # Errors are always JSON, whatever the negotiated format —
            # a failed exchange must stay readable from curl.
            kind = "rejected" if exc.status == 429 else "error"
            extra = {}
            if exc.status == 429:
                hint = getattr(exc, "retry_after", None)
                if hint is None:
                    hint = self.engine.retry_after_hint()
                extra["Retry-After"] = f"{hint:g}"
            return self._json(exc.status, {"status": kind, "error": str(exc)}, extra)
        return self._respond_schedule(payload, binary_response)

    @staticmethod
    def _check_alg(alg: str) -> None:
        """Reject unknown schedulers before they occupy queue space
        (the JSON path does this inside ``parse_request_doc``)."""
        from repro.schedulers.registry import all_scheduler_names

        if not alg:
            raise RequestError("request needs a scheduler name under 'alg'")
        if alg not in all_scheduler_names():
            raise RequestError(
                f"unknown scheduler {alg!r}; known: {', '.join(all_scheduler_names())}"
            )

    def _respond_schedule(self, payload: dict, binary: bool):
        """Serialise one successful schedule answer in the negotiated form."""
        if not binary:
            return self._json(200, {"status": "ok", "result": payload})
        result = dict(payload)
        cache_hit = bool(result.pop("cache_hit", False))
        fingerprint = str(result.pop("fingerprint", ""))
        server_ms = float(result.pop("server_ms", 0.0))
        trace_id = result.pop("trace_id", None)
        with self.engine.tracer.span("service.encode", detach=True, wire="bin"):
            encoded = self._encoded.get(fingerprint)
            if encoded is None:
                encoded = wire.encode_payload(result)
                self._encoded[fingerprint] = encoded
                while len(self._encoded) > ENCODED_MAP_SIZE:
                    self._encoded.popitem(last=False)
            else:
                self._encoded.move_to_end(fingerprint)
            body = wire.encode_response(
                encoded, cache_hit=cache_hit, fingerprint=fingerprint,
                server_ms=server_ms, trace_id=trace_id,
            )
        return (200, wire.BINARY_CONTENT_TYPE, body, {})

    @staticmethod
    def _parse_deadline(headers: dict[str, str]) -> float | None:
        """The client's absolute-monotonic deadline, if it sent one."""
        raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise RequestError(
                f"invalid {DEADLINE_HEADER} header {raw!r}: "
                "expected an absolute monotonic timestamp"
            ) from None

    def _remember_exact(self, body_key: str, request_key: str) -> None:
        self._exact[body_key] = request_key
        self._exact.move_to_end(body_key)
        while len(self._exact) > EXACT_MAP_SIZE:
            self._exact.popitem(last=False)

    @staticmethod
    def _json(status: int, doc: dict, extra_headers: dict[str, str] | None = None):
        return (status, "application/json", json.dumps(doc).encode("utf-8"),
                extra_headers or {})

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              content_type: str, payload: bytes,
                              extra_headers: dict[str, str] | None = None,
                              keep_alive: bool = False) -> None:
        reason = _REASONS.get(status, "Unknown")
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extras}"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
