"""Random series-parallel task graphs.

Built by recursive composition: a block is either a single task, a
*series* chain of sub-blocks, or a *parallel* bundle of sub-blocks
between a split task and a merge task.  Series-parallel DAGs are the
structured-programming subset of DAGs (nested loops and sections) and a
common generator family in the scheduling literature.
"""

from __future__ import annotations

from repro.dag.generators.costs import scale_ccr
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.types import TaskId
from repro.utils.rng import SeedLike, as_generator


def series_parallel_dag(
    num_tasks: int,
    ccr: float = 1.0,
    avg_cost: float = 10.0,
    parallel_bias: float = 0.5,
    seed: SeedLike = None,
    name: str | None = None,
) -> TaskDAG:
    """Generate a series-parallel DAG with roughly ``num_tasks`` tasks.

    ``parallel_bias`` in [0, 1] steers composition toward parallel (1)
    or series (0) blocks.  The exact task count may exceed the request
    slightly because parallel blocks need split/merge tasks.
    """
    if num_tasks < 1:
        raise ConfigurationError(f"num_tasks must be >= 1, got {num_tasks}")
    if not (0.0 <= parallel_bias <= 1.0):
        raise ConfigurationError(f"parallel_bias must be in [0, 1], got {parallel_bias}")
    if avg_cost <= 0:
        raise ConfigurationError(f"avg_cost must be > 0, got {avg_cost}")

    rng = as_generator(seed)
    dag = TaskDAG(name or f"sp-n{num_tasks}")
    counter = [0]

    def new_task() -> TaskId:
        tid = counter[0]
        counter[0] += 1
        dag.add_task(Task(id=tid, cost=float(rng.uniform(1e-6, 2.0 * avg_cost))))
        return tid

    def edge(u: TaskId, v: TaskId) -> None:
        if not dag.has_edge(u, v):
            dag.add_edge(u, v, data=float(rng.uniform(0.0, 2.0 * avg_cost)))

    def build(budget: int) -> tuple[TaskId, TaskId]:
        """Build a block of about ``budget`` tasks; return (head, tail)."""
        if budget <= 1:
            t = new_task()
            return t, t
        if rng.random() < parallel_bias and budget >= 4:
            # Parallel: split + k branches + merge.
            k = int(rng.integers(2, max(3, min(5, budget - 1))))
            split = new_task()
            merge = new_task()
            remaining = budget - 2
            share = max(1, remaining // k)
            for _ in range(k):
                head, tail = build(share)
                edge(split, head)
                edge(tail, merge)
            return split, merge
        # Series: two sub-blocks chained.
        left = budget // 2
        h1, t1 = build(left)
        h2, t2 = build(budget - left)
        edge(t1, h2)
        return h1, t2

    build(num_tasks)
    if dag.num_edges == 0:
        return dag
    return scale_ccr(dag, ccr)
