"""Fault-tolerance primitives shared by the service client and engine.

Three small, composable pieces:

* :class:`Deadline` — one absolute point in time a request must finish
  by, carried client → server → engine on the shared ``CLOCK_MONOTONIC``
  timebase (the same property :meth:`repro.obs.Tracer.absorb` relies
  on).  Every stage spends from the *same* budget, so queue and
  transport time shrink the compute wait instead of being double
  counted by per-stage timeouts.
* :class:`RetryPolicy` — exponential backoff with decorrelated jitter
  (AWS architecture-blog variant: each delay is drawn from
  ``uniform(base, prev * 3)``, capped) plus a hard retry-count bound
  and a cumulative backoff budget.  The rng, the sleeper and the clock
  are injectable, so backoff schedules are golden-testable.
* :class:`RetryStats` — the client-side counter bundle a
  :class:`~repro.service.client.ServiceClient` exposes after retrying.

The engine's pool-respawn budget reuses the same sliding-window idea
inline (see ``SchedulingEngine._heal_pool``); it is deliberately not a
class here because the window lives on the engine's monotonic clock and
its contents are two lines of deque maintenance.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

__all__ = ["Deadline", "RetryPolicy", "RetryStats"]


@dataclass(frozen=True)
class Deadline:
    """An absolute ``time.monotonic()`` timestamp a request expires at.

    On Linux ``time.monotonic()`` is ``CLOCK_MONOTONIC``, which is
    system-wide: a deadline stamped by the client process is directly
    comparable inside the server and its pool workers on the same host
    — exactly the local-daemon deployment the service targets.
    """

    at: float

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """The deadline ``seconds`` from now."""
        if seconds <= 0:
            raise ValueError(f"deadline must be in the future, got {seconds!r}s")
        return cls(clock() + seconds)

    def remaining(self, clock: Callable[[], float] = time.monotonic) -> float:
        """Seconds left before expiry (negative once past)."""
        return self.at - clock()

    def expired(self, clock: Callable[[], float] = time.monotonic) -> bool:
        return self.remaining(clock) <= 0


@dataclass
class RetryStats:
    """What one client's retry loop has done so far."""

    attempts: int = 0       #: request attempts, including the first
    retries: int = 0        #: attempts beyond the first
    giveups: int = 0        #: retryable failures re-raised (budget spent)
    backoff_s: float = 0.0  #: cumulative seconds slept between attempts

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "giveups": self.giveups,
            "backoff_s": self.backoff_s,
        }


class RetryPolicy:
    """Decorrelated-jitter backoff with a retry budget.

    Parameters
    ----------
    max_retries:
        Attempts beyond the first before the failure is re-raised.
    base_delay / max_delay:
        Bounds of each drawn delay, seconds.
    budget_s:
        Cap on *cumulative* backoff sleep across one request's retries;
        a retry whose delay would overdraw the budget is not taken.
    seed / rng:
        Deterministic jitter for tests (``rng`` wins if both given).
    sleep / clock:
        Injectable async sleeper and monotonic clock, for golden-timing
        tests that never actually wait.
    """

    def __init__(self, max_retries: int = 3, base_delay: float = 0.05,
                 max_delay: float = 2.0, budget_s: float = 30.0,
                 seed: int | None = None,
                 rng: random.Random | None = None,
                 sleep: Callable[[float], Awaitable[None]] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if base_delay <= 0 or max_delay < base_delay:
            raise ValueError(
                f"need 0 < base_delay <= max_delay, got {base_delay}/{max_delay}"
            )
        if budget_s < 0:
            raise ValueError(f"budget_s must be >= 0, got {budget_s}")
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.budget_s = budget_s
        self.rng = rng if rng is not None else random.Random(seed)
        self.sleep = sleep if sleep is not None else asyncio.sleep
        self.clock = clock

    def next_delay(self, prev_delay: float,
                   retry_after: float | None = None) -> float:
        """Draw the next backoff delay.

        ``prev_delay`` is the previous delay (pass :attr:`base_delay`
        before the first retry).  ``retry_after`` — the server's
        ``Retry-After`` hint — acts as a floor: the server knows how
        loaded it is better than our jitter does.
        """
        prev = max(prev_delay, self.base_delay)
        delay = min(self.max_delay, self.rng.uniform(self.base_delay, prev * 3))
        if retry_after is not None and retry_after > 0:
            delay = max(delay, min(retry_after, self.max_delay))
        return delay

    def schedule(self, retry_afters: tuple[float | None, ...] = ()) -> list[float]:
        """The full backoff schedule this policy would follow.

        Purely functional over the policy's rng state: used by golden
        tests and by operators previewing a configuration.  Entry ``i``
        uses ``retry_afters[i]`` as its server hint when provided.
        """
        delays: list[float] = []
        prev = self.base_delay
        spent = 0.0
        for i in range(self.max_retries):
            hint = retry_afters[i] if i < len(retry_afters) else None
            delay = self.next_delay(prev, hint)
            if spent + delay > self.budget_s:
                break
            delays.append(delay)
            spent += delay
            prev = delay
        return delays


@dataclass
class _RetryState:
    """Book-keeping of one in-progress retry loop (client internal)."""

    policy: RetryPolicy
    stats: RetryStats
    deadline: Deadline | None = None
    prev_delay: float = field(default=0.0)
    spent_s: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.prev_delay = self.policy.base_delay

    def admits(self, delay: float) -> bool:
        """Whether one more retry sleeping ``delay`` fits every budget."""
        if self.stats.retries >= self.policy.max_retries:
            return False
        if self.spent_s + delay > self.policy.budget_s:
            return False
        if self.deadline is not None and self.deadline.remaining(self.policy.clock) <= delay:
            return False
        return True

    async def backoff(self, retry_after: float | None = None) -> bool:
        """Sleep before the next attempt; ``False`` means give up."""
        delay = self.policy.next_delay(self.prev_delay, retry_after)
        if not self.admits(delay):
            self.stats.giveups += 1
            return False
        await self.policy.sleep(delay)
        self.prev_delay = delay
        self.spent_s += delay
        self.stats.retries += 1
        self.stats.backoff_s += delay
        return True
