"""Tests for the makespan/energy Pareto front and the sweep energy metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import METRICS, run_sweep
from repro.bench.workloads import SweepFactory
from repro.energy import (
    ParetoPoint,
    PowerModel,
    makespan_energy_front,
    pareto_flags,
    reclaim_slack,
    schedule_energy,
)
from repro.exceptions import ConfigurationError
from repro.schedulers.registry import get_scheduler

SCHEDS = ["HEFT", "IMP", "RoundRobin"]
FACTORY = SweepFactory("random", "num_tasks", (("num_procs", 3),))


def test_pareto_flags_basic():
    #      dominated by (1,1)?      (1,1) (2,2) (0.5,3) (2,0.5)
    points = [(1.0, 1.0), (2.0, 2.0), (0.5, 3.0), (2.0, 0.5)]
    assert pareto_flags(points) == [False, True, False, False]


def test_pareto_flags_duplicates_stay_on_front():
    points = [(1.0, 1.0), (1.0, 1.0)]
    assert pareto_flags(points) == [False, False]


def test_dominates_is_strict_somewhere():
    a = ParetoPoint("a", 1.0, 1.0, False)
    b = ParetoPoint("b", 1.0, 1.0, False)
    c = ParetoPoint("c", 2.0, 1.0, False)
    assert not a.dominates(b) and not b.dominates(a)
    assert a.dominates(c) and not c.dominates(a)


def test_energy_metrics_registered():
    assert "energy" in METRICS and "energy_dvfs" in METRICS


def test_energy_metric_matches_direct_computation():
    rng = np.random.default_rng(0)
    inst = FACTORY(20, rng)
    sched = get_scheduler("HEFT").schedule(inst)
    assert METRICS["energy"](sched, inst) == schedule_energy(sched, PowerModel())
    assert METRICS["energy_dvfs"](sched, inst) == (
        reclaim_slack(sched, inst, PowerModel()).energy_scaled
    )


def test_energy_sweep_runs():
    res = run_sweep(SCHEDS, "num_tasks", [10, 20], FACTORY,
                    reps=2, metric="energy", seed=3)
    for name in SCHEDS:
        assert len(res.series[name]) == 2
        assert all(v > 0 for v in res.series[name])


def test_front_is_paired_and_nonempty():
    res = makespan_energy_front(
        SCHEDS, "num_tasks", [10, 20], FACTORY, reps=2, seed=3
    )
    assert {p.scheduler for p in res.points} == set(SCHEDS)
    front = res.front()
    assert front, "a non-empty candidate set always has a non-dominated point"
    # front is sorted by makespan and contains no dominated point
    spans = [p.makespan for p in front]
    assert spans == sorted(spans)
    for p in front:
        assert not any(q.dominates(p) for q in res.points)
    # the best-makespan scheduler is always on the front
    best = min(res.points, key=lambda p: (p.makespan, p.scheduler))
    assert any(p.scheduler == best.scheduler for p in front)
    assert "makespan" in res.table()


def test_front_deterministic_across_runs():
    a = makespan_energy_front(SCHEDS, "num_tasks", [12], FACTORY, reps=2, seed=7)
    b = makespan_energy_front(SCHEDS, "num_tasks", [12], FACTORY, reps=2, seed=7)
    assert [(p.scheduler, p.makespan, p.energy, p.dominated) for p in a.points] == [
        (p.scheduler, p.makespan, p.energy, p.dominated) for p in b.points
    ]


def test_dvfs_metric_never_exceeds_nominal_energy():
    rng = np.random.default_rng(5)
    inst = FACTORY(18, rng)
    for name in SCHEDS:
        sched = get_scheduler(name).schedule(inst)
        assert METRICS["energy_dvfs"](sched, inst) <= METRICS["energy"](sched, inst)


def test_unknown_energy_metric_rejected():
    with pytest.raises(ConfigurationError):
        makespan_energy_front(SCHEDS, "num_tasks", [10], FACTORY,
                              energy_metric="joules")
