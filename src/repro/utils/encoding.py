"""JSON-safe encoding of task/processor identifiers.

The library allows any hashable id; JSON does not.  Tuples — the only
non-primitive ids the built-in generators produce — are encoded with a
``__tuple__`` tag and decoded back exactly; other primitives pass
through unchanged.
"""

from __future__ import annotations

from repro.exceptions import ParseError


def encode_id(value) -> object:
    """Encode an id for JSON (tuples tagged, primitives unchanged)."""
    if isinstance(value, tuple):
        return {"__tuple__": [encode_id(v) for v in value]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ParseError(f"cannot serialise id of type {type(value).__name__}: {value!r}")


def decode_id(value):
    """Inverse of :func:`encode_id`."""
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(decode_id(v) for v in value["__tuple__"])
    return value
