"""FleetRouter against real in-process backends.

Every scenario boots N :class:`ScheduleServer` daemons (``workers=0``,
so no process pools — fast and deterministic) plus one router, all on
ephemeral ports inside the test's own event loop.  The unchanged
:class:`ServiceClient` talks to the router exactly as it would to a
single daemon; the assertions check that what comes back is
*byte-equivalent* to the single-daemon answer, that routing is sticky
by fingerprint (the second request is a warm hit on the owning shard),
and that quarantine / retry / aggregation behave.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.bench import workloads as W
from repro.instance_io import instance_to_json
from repro.service import (
    EngineConfig,
    ScheduleServer,
    SchedulingEngine,
    ServiceClient,
    ServiceClosedError,
)
from repro.service.fleet import FleetRouter
from repro.service.protocol import compute_schedule_payload, make_request_doc
from repro.utils.rng import as_generator

def _instance(seed: int = 3, num_tasks: int = 10):
    return W.random_instance(as_generator(seed), num_tasks=num_tasks, num_procs=3)


def _canonical(result) -> str:
    """Envelope-free content of a response: what must be bit-identical
    regardless of which daemon (or how many) computed it.  Placements
    are ``(task, proc, start, end, duplicate)`` tuples on both the JSON
    and binary result types."""
    return json.dumps(
        [result.alg, result.makespan, result.num_duplicates,
         sorted((str(t), str(p), s, e, bool(d))
                for t, p, s, e, d in result.placements)],
        sort_keys=True,
    )


def _payload_tuples(payload: dict) -> list:
    """``payload["placements"]`` in the result types' tuple form."""
    from repro.utils.encoding import decode_id

    return [
        (decode_id(r["task"]), decode_id(r["proc"]),
         r["start"], r["end"], r["duplicate"])
        for r in payload["placements"]
    ]


class _Fleet:
    """N in-process backends behind one router."""

    def __init__(self, shards: int = 3, health_interval: float = 0.0,
                 fail_threshold: int = 1, **config):
        self.config = config
        self.shards = shards
        self.health_interval = health_interval
        self.fail_threshold = fail_threshold
        self.servers: dict[str, ScheduleServer] = {}
        self.router: FleetRouter | None = None

    async def __aenter__(self):
        self.router = FleetRouter(port=0,
                                  health_interval=self.health_interval,
                                  fail_threshold=self.fail_threshold)
        await self.router.start()
        for i in range(self.shards):
            await self.add_backend(f"shard-{i}")
        return self

    async def add_backend(self, name: str) -> ScheduleServer:
        server = ScheduleServer(
            SchedulingEngine(EngineConfig(workers=0, **self.config)), port=0
        )
        await server.start()
        self.servers[name] = server
        self.router.add_shard(name, "127.0.0.1", server.bound_port)
        return server

    async def __aexit__(self, *exc):
        for server in self.servers.values():
            await server.stop()
        await self.router.stop()

    def client(self, **kwargs) -> ServiceClient:
        kwargs.setdefault("request_timeout", 60.0)
        return ServiceClient(port=self.router.port, **kwargs)


# ----------------------------------------------------------------------
# routing correctness
# ----------------------------------------------------------------------
def test_routing_is_sticky_and_answers_are_bit_identical_binary():
    """Binary wire through the router: first request computes on the
    owning shard, the repeat is a warm hit (proof the same shard served
    it), and the payload matches the locally computed reference."""

    async def scenario():
        async with _Fleet(shards=3) as fleet:
            client = fleet.client()
            for seed in range(8):
                inst = _instance(seed)
                expected = compute_schedule_payload(
                    instance_to_json(inst), "HEFT"
                )
                cold = await client.schedule(inst, alg="HEFT")
                warm = await client.schedule(inst, alg="HEFT")
                assert not cold.cache_hit and warm.cache_hit
                for result in (cold, warm):
                    assert result.makespan == expected["makespan"]
                    assert result.num_duplicates == expected["num_duplicates"]
                    assert list(result.placements) == _payload_tuples(expected)
            assert fleet.router.stats.key_sources.get("wire", 0) > 0
            await client.close()

    asyncio.run(scenario())


def test_json_and_binary_route_to_the_same_owner():
    """The JSON dialect carries the fingerprint as a header; the binary
    dialect carries it in the body prefix.  Both must land on the same
    shard: a JSON cold fill must be a *binary* warm hit and vice versa."""

    async def scenario():
        async with _Fleet(shards=3) as fleet:
            inst = _instance(11)
            json_client = fleet.client(wire="json")
            bin_client = fleet.client(wire="bin")
            cold = await json_client.schedule(inst, alg="HEFT")
            warm = await bin_client.schedule(inst, alg="HEFT")
            assert not cold.cache_hit and warm.cache_hit
            assert _canonical(cold) == _canonical(warm)
            assert fleet.router.stats.key_sources.get("header", 0) >= 1
            assert fleet.router.stats.key_sources.get("wire", 0) >= 1
            await bin_client.close()

    asyncio.run(scenario())


def test_router_responses_match_single_daemon_both_wires():
    """The fleet is transparent: responses routed through it are
    bit-identical (canonical content) to a lone daemon's answers, in
    both wire formats."""

    async def scenario():
        solo = ScheduleServer(
            SchedulingEngine(EngineConfig(workers=0)), port=0
        )
        await solo.start()
        try:
            async with _Fleet(shards=3) as fleet:
                for wire_format in ("json", "bin"):
                    for seed in (2, 5):
                        inst = _instance(seed)
                        solo_client = ServiceClient(port=solo.port,
                                                    wire=wire_format)
                        fleet_client = fleet.client(wire=wire_format)
                        a = await solo_client.schedule(inst, alg="HEFT")
                        b = await fleet_client.schedule(inst, alg="HEFT")
                        assert _canonical(a) == _canonical(b)
                        await solo_client.close()
                        await fleet_client.close()
        finally:
            await solo.stop()

    asyncio.run(scenario())


def test_foreign_json_requests_fall_back_to_body_hash():
    """A request without fingerprint header or binary prefix (a foreign
    client) routes by body hash — still deterministic, so an identical
    resubmit is a warm hit on the same shard."""

    async def scenario():
        async with _Fleet(shards=3) as fleet:
            inst = _instance(7)
            doc = make_request_doc(json.loads(instance_to_json(inst)), "HEFT")
            body = json.dumps(doc).encode()
            client = fleet.client()
            status, _, payload = await client._request(
                "POST", "/v1/schedule", body
            )
            assert status == 200
            first = json.loads(payload)
            status, _, payload = await client._request(
                "POST", "/v1/schedule", body
            )
            second = json.loads(payload)
            assert not first["result"]["cache_hit"]
            assert second["result"]["cache_hit"]
            assert fleet.router.stats.key_sources.get("body", 0) == 2

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# failure handling
# ----------------------------------------------------------------------
def test_dead_backend_is_quarantined_and_requests_survive():
    """Stop one backend server outright: requests that hash to it must
    be retried transparently on the next ring owner, the shard must be
    quarantined after fail_threshold transport failures, and no request
    may fail."""

    async def scenario():
        async with _Fleet(shards=3, fail_threshold=1) as fleet:
            client = fleet.client()
            victim = "shard-1"
            await fleet.servers[victim].stop()
            results = []
            for seed in range(10):
                results.append(await client.schedule(_instance(seed), alg="HEFT"))
            assert len(results) == 10
            assert victim not in fleet.router.ring
            assert not fleet.router.shards[victim].alive
            assert fleet.router.stats.quarantines >= 1
            assert fleet.router.stats.retries >= 1
            await client.close()

    asyncio.run(scenario())


def test_retry_lands_on_the_rehash_owner():
    """The failover shard for a key must be exactly ``owners(key)[1]``
    — the shard the quarantined ring re-homes the key to — so the
    retry warms the cache at the key's future home."""

    async def scenario():
        async with _Fleet(shards=3, fail_threshold=1) as fleet:
            router = fleet.router
            inst = _instance(13)
            key = inst.fingerprint()
            sequence = router.ring.owners(key)
            await fleet.servers[sequence[0]].stop()
            client = fleet.client()
            cold = await client.schedule(inst, alg="HEFT")
            assert not cold.cache_hit
            # the ring after quarantine routes the key to sequence[1] ...
            assert router.ring.owner(key) == sequence[1]
            # ... and the retry already warmed that shard's cache
            warm = await client.schedule(inst, alg="HEFT")
            assert warm.cache_hit
            await client.close()

    asyncio.run(scenario())


def test_no_live_backend_returns_503():
    async def scenario():
        async with _Fleet(shards=1, fail_threshold=1) as fleet:
            await fleet.servers["shard-0"].stop()
            client = fleet.client(retry_policy=None)
            with pytest.raises((ServiceClosedError, OSError)):
                await client.schedule(_instance(1), alg="HEFT")
            # after quarantine the router answers 503 without a backend
            with pytest.raises(ServiceClosedError, match="no live backend"):
                await client.schedule(_instance(2), alg="HEFT")
            await client.close()

    asyncio.run(scenario())


def test_health_check_quarantines_and_readmits():
    async def scenario():
        async with _Fleet(shards=2, fail_threshold=1) as fleet:
            router = fleet.router
            victim = "shard-0"
            port = fleet.servers[victim].bound_port
            await fleet.servers[victim].stop()
            probe = await router.check_health()
            assert probe[victim] is False
            assert not router.shards[victim].alive
            # bring a replacement back on the same name, new port
            server = ScheduleServer(
                SchedulingEngine(EngineConfig(workers=0)), port=0
            )
            await server.start()
            fleet.servers[victim] = server
            router.update_shard(victim, "127.0.0.1", server.bound_port)
            probe = await router.check_health()
            assert probe[victim] is True
            assert router.shards[victim].alive and victim in router.ring
            assert router.stats.readmissions == 1
            assert server.bound_port != port
            await server.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# aggregation surfaces
# ----------------------------------------------------------------------
def test_stats_aggregate_is_client_compatible():
    """``ServiceClient.stats()`` must parse the router's /v1/stats —
    counters summed over shards."""

    async def scenario():
        async with _Fleet(shards=3) as fleet:
            client = fleet.client()
            for seed in range(6):
                await client.schedule(_instance(seed), alg="HEFT")
                await client.schedule(_instance(seed), alg="HEFT")
            stats = await client.stats()
            assert stats.requests == 12
            assert stats.completed == 12
            assert stats.cache_hits == 6
            per_engine = [s.engine.stats().requests
                          for s in fleet.servers.values()]
            assert sum(per_engine) == 12
            # more than one shard actually carried load
            assert sum(1 for c in per_engine if c) >= 2
            await client.close()

    asyncio.run(scenario())


def test_metrics_aggregate_sums_counters_and_reports_shards():
    async def scenario():
        async with _Fleet(shards=2, fail_threshold=1) as fleet:
            client = fleet.client()
            for seed in range(4):
                await client.schedule(_instance(seed), alg="HEFT")
            text = await client.metrics_text()
            lines = dict(
                line.rsplit(" ", 1) for line in text.splitlines() if line
            )
            assert float(lines["repro_fleet_shards"]) == 2
            assert float(lines["repro_fleet_shards_alive"]) == 2
            assert float(lines["repro_fleet_requests_total"]) == 4
            assert float(lines["repro_service_requests_total"]) == 4
            assert float(lines['repro_fleet_shard_up{shard="shard-0"}']) == 1
            # kill one shard: the exposition must reflect survivors
            await fleet.servers["shard-1"].stop()
            await fleet.router.check_health()
            text = await client.metrics_text()
            lines = dict(
                line.rsplit(" ", 1) for line in text.splitlines() if line
            )
            assert float(lines["repro_fleet_shards_alive"]) == 1
            assert float(lines['repro_fleet_shard_up{shard="shard-1"}']) == 0
            assert float(lines["repro_fleet_quarantines_total"]) == 1
            await client.close()

    asyncio.run(scenario())


def test_healthz_reports_fleet_liveness():
    async def scenario():
        async with _Fleet(shards=2, fail_threshold=1) as fleet:
            client = fleet.client()
            assert await client.health() is True
            answer = await client._request_json("GET", "/healthz")
            assert answer["fleet"] == {"shards": 2, "alive": 2}
            for server in fleet.servers.values():
                await server.stop()
            await fleet.router.check_health()
            assert await client.health() is False

    asyncio.run(scenario())


def test_shutdown_broadcasts_to_all_shards():
    async def scenario():
        async with _Fleet(shards=2) as fleet:
            client = fleet.client()
            await client.shutdown()
            assert fleet.router.shutdown_requested
            # every backend was asked to drain too
            for server in fleet.servers.values():
                assert server._shutdown.is_set()

    asyncio.run(scenario())


def test_unknown_route_is_404():
    async def scenario():
        async with _Fleet(shards=1) as fleet:
            client = fleet.client()
            status, _, _ = await client._request("GET", "/v1/nope")
            assert status == 404

    asyncio.run(scenario())
