"""Named benchmark suites: curated DAG collections for evaluation.

The scheduling literature evaluates on (a) parametric random graphs and
(b) a fixed set of application kernels.  This module bundles both as
reusable, seeded suites so downstream users can benchmark their own
schedulers against exactly the workloads this repository uses.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.dag.generators import (
    cholesky_dag,
    fft_dag,
    fork_join_dag,
    gaussian_elimination_dag,
    in_tree_dag,
    laplace_dag,
    mapreduce_dag,
    montage_dag,
    out_tree_dag,
    pipeline_dag,
    random_dag,
    series_parallel_dag,
)
from repro.dag.graph import TaskDAG
from repro.utils.rng import SeedLike, spawn_children


def application_suite(scale: int = 1) -> dict[str, TaskDAG]:
    """The fixed application kernels at a given scale (1 = small).

    Returns a name -> DAG mapping; names are stable across versions so
    results remain comparable.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    s = scale
    return {
        "gauss": gaussian_elimination_dag(5 + 3 * s),
        "fft": fft_dag(2 ** (2 + s)),
        "laplace": laplace_dag(3 + 2 * s),
        "cholesky": cholesky_dag(2 + 2 * s),
        "forkjoin": fork_join_dag(2 + 2 * s, stages=s + 1, chain_length=2),
        "intree": in_tree_dag(2, 2 + s),
        "outtree": out_tree_dag(2, 2 + s),
        "montage": montage_dag(4 + 4 * s, seed=11),
        "mapreduce": mapreduce_dag(3 * s + 2, 2 * s, seed=13),
        "pipeline": pipeline_dag(2 + s, 3 + 2 * s, coupled=True),
    }


def random_suite(
    count: int = 20,
    num_tasks: int = 80,
    ccr: float = 1.0,
    seed: SeedLike = 0,
) -> list[TaskDAG]:
    """``count`` seeded random DAGs under the standard protocol."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    out = []
    for i, rng in enumerate(spawn_children(seed, count)):
        out.append(
            random_dag(
                num_tasks,
                ccr=ccr,
                seed=int(rng.integers(0, 2**62)),
                name=f"random-suite-{i}",
            )
        )
    return out


def mixed_suite(seed: SeedLike = 0) -> dict[str, TaskDAG]:
    """A cross-section of every generator family (smoke/regression set)."""
    streams = spawn_children(seed, 3)
    suite: dict[str, TaskDAG] = dict(application_suite(scale=1))
    suite["random-small"] = random_dag(40, seed=int(streams[0].integers(0, 2**62)))
    suite["random-fat"] = random_dag(60, shape=2.0, seed=int(streams[1].integers(0, 2**62)))
    suite["series-parallel"] = series_parallel_dag(50, seed=int(streams[2].integers(0, 2**62)))
    return suite


#: Registry of suite factories by name (CLI-facing).
SUITES: Mapping[str, Callable[[], Mapping[str, TaskDAG] | list[TaskDAG]]] = {
    "application": application_suite,
    "random": random_suite,
    "mixed": mixed_suite,
}
