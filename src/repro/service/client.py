"""Async (and sync-wrapped) client for the scheduling service.

:class:`ServiceClient` speaks the minimal HTTP/1.1 dialect of
:mod:`repro.service.server`.  Schedule requests default to the binary
wire format (``wire="bin"``): bodies and responses are the packed-array
messages of :mod:`repro.service.wire`, and the connection is kept alive
across requests, which removes JSON encode/decode *and* the per-request
TCP connect from the warm path.  ``wire="json"`` forces the original
one-connection-per-request JSON dialect; a binary client talking to an
old JSON-only server downgrades itself automatically (the server
rejects the unreadable body with 400, which the client recognises and
retries as JSON — once, permanently).  Server-side failures come back
as the same exception types the in-process engine raises — a caller
can move between ``engine.submit(...)`` and ``client.schedule(...)``
without changing its error handling.

Fault tolerance (see :mod:`repro.service.resilience`):

* Every ``schedule`` call carries one :class:`Deadline` for its whole
  life — connect, send, wait, read all spend from the same budget, and
  the server receives it (``X-Repro-Deadline``) so the engine-side wait
  shrinks by the time already burned in transport and queueing.
* With a :class:`RetryPolicy` installed, retryable failures — 429
  backpressure, connection refused/reset, a connection dropped
  mid-response — are retried under decorrelated-jitter backoff,
  honoring the server's ``Retry-After`` hint, within the policy's
  retry count, backoff budget and the request deadline.  Safe by
  construction: the schedule computation is pure and content-addressed,
  so a duplicate submission is at worst a cache hit.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict

from repro.instance import Instance
from repro.instance_io import instance_to_json
from repro.obs import get_tracer
from repro.service.errors import (
    RequestError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    StaleConnectionError,
    TransportError,
    WorkerError,
)
from repro.service.metrics import ServiceStats
from repro.service.protocol import (
    ScheduleResult,
    WireScheduleResult,
    make_request_doc,
)
from repro.service.resilience import Deadline, RetryPolicy, RetryStats, _RetryState
from repro.service.wire import (
    BINARY_CONTENT_TYPE,
    ResponseView,
    encode_instance,
    encode_request,
)

_ERROR_BY_STATUS = {
    400: RequestError,
    404: RequestError,
    405: RequestError,
    413: RequestError,
    429: ServiceOverloadedError,
    503: ServiceClosedError,
    504: ServiceTimeoutError,
}

#: Failures worth retrying: backpressure, refused/reset connections and
#: transport-level breakage.  ``OSError`` covers ``ConnectionRefusedError``
#: and ``TimeoutError`` (both are subclasses in 3.10+).
RETRYABLE = (ServiceOverloadedError, TransportError, OSError)

#: Encoded request bodies memoised per client (instance fingerprint x
#: alg x timeout).  Resubmitting an instance skips re-serialisation and
#: sends byte-identical bodies, which the server's exact-body fast path
#: answers without parsing.
_BODY_CACHE_SIZE = 128


def parse_endpoint(endpoint: str, default_port: int = 8787) -> tuple[str, int]:
    """Parse ``host``, ``host:port`` or ``http://host:port`` strings.

    IPv6 literals use the standard bracket form (``[::1]:8787``); a
    bare multi-colon literal (``::1``) is accepted as a host with the
    default port, since no port split is unambiguous there.
    """
    text = endpoint.strip()
    for prefix in ("http://", "https://"):
        if text.startswith(prefix):
            text = text[len(prefix):]
    text = text.rstrip("/")
    if text.startswith("["):
        # Bracketed IPv6: [host] or [host]:port.
        host, bracket, rest = text[1:].partition("]")
        if not bracket or not host:
            raise RequestError(f"invalid endpoint {endpoint!r}")
        if not rest:
            return host, default_port
        if not rest.startswith(":"):
            raise RequestError(f"invalid endpoint {endpoint!r}")
        port_text = rest[1:]
    elif text.count(":") > 1:
        # Unbracketed IPv6 literal: all host, no port to split off.
        return text, default_port
    else:
        host, _, port_text = text.partition(":")
        if not host:
            host = "127.0.0.1"
        if not port_text:
            return host, default_port
    try:
        port = int(port_text)
    except ValueError:
        raise RequestError(f"invalid endpoint {endpoint!r}") from None
    if not 0 <= port <= 65535:
        raise RequestError(f"invalid endpoint {endpoint!r}: port out of range")
    return host, port


class ServiceClient:
    """Talks to one running :class:`~repro.service.server.ScheduleServer`.

    ``retry_policy=None`` (the default) preserves fail-fast semantics:
    every error surfaces immediately.  Install a
    :class:`~repro.service.resilience.RetryPolicy` to retry retryable
    failures; :attr:`retry_stats` then accounts what the loop did.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 connect_timeout: float = 5.0, request_timeout: float = 120.0,
                 retry_policy: RetryPolicy | None = None,
                 wire: str = "bin") -> None:
        if wire not in ("bin", "json"):
            raise ValueError(f"wire must be 'bin' or 'json', got {wire!r}")
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retry_policy = retry_policy
        self.retry_stats = RetryStats()
        self.wire = wire
        self._body_cache: OrderedDict[tuple, bytes] = OrderedDict()
        # (fingerprint, alg) pairs the server has answered: those go
        # compact (content-addressed, no instance blob) from then on.
        self._acked: OrderedDict[tuple, bool] = OrderedDict()
        # The kept-alive connection of the binary path, tagged with the
        # event loop that owns it: asyncio transports are loop-bound,
        # and the sync wrappers create a fresh loop per call, so a
        # connection must never be reused across loops.
        self._conn: tuple[asyncio.AbstractEventLoop, asyncio.StreamReader,
                          asyncio.StreamWriter] | None = None

    @classmethod
    def at(cls, endpoint: str, **kwargs) -> "ServiceClient":
        """Build a client from an ``host:port`` endpoint string."""
        host, port = parse_endpoint(endpoint)
        return cls(host=host, port=port, **kwargs)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _stage_timeout(self, deadline: Deadline | None, default: float) -> float:
        """Per-I/O-stage timeout: the deadline's remainder when one is
        carried, else the stage default.  Raising here (instead of
        waiting out a doomed stage) is what makes the deadline end-to-end."""
        if deadline is None:
            return default
        remaining = deadline.remaining()
        if remaining <= 0:
            raise ServiceTimeoutError(
                f"request deadline expired ({-remaining:g}s past)"
            )
        return remaining

    def _drop_conn(self) -> None:
        """Discard the kept-alive connection, whatever loop owns it.

        Same-loop: a normal transport close.  Cross-loop (a sync
        wrapper's previous ``asyncio.run`` owned it): the transport API
        is off-limits, so the underlying socket is closed directly —
        its loop is already gone and will never flush anything.
        """
        conn, self._conn = self._conn, None
        if conn is None:
            return
        loop, _, writer = conn
        try:
            same_loop = asyncio.get_running_loop() is loop
        except RuntimeError:
            same_loop = False
        if same_loop:
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already gone
                pass

    async def close(self) -> None:
        """Close the kept-alive connection (if any).  Optional — every
        exchange also survives the server closing it first."""
        self._drop_conn()

    async def _exchange(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter, head: bytes,
                        payload: bytes, deadline: Deadline | None,
                        reused: bool = False,
                        ) -> tuple[int, dict[str, str], bytes]:
        """One write-request/read-response on an open connection.

        ``reused=True`` marks a kept-alive connection from the pool.  A
        failure on such a connection *before any response byte arrives*
        (EOF or reset on the header read, reset on the write) is the
        signature of the server having closed it while it sat idle —
        raised as :class:`StaleConnectionError` so the caller can swap
        in a fresh connection without charging the retry budget.  Once
        a single response byte has been read, failures are real
        :class:`TransportError`\\ s like on any other connection.
        """
        try:
            writer.write(head + payload)
            await writer.drain()
        except ConnectionError as exc:
            if reused:
                raise StaleConnectionError(
                    f"stale keep-alive connection to {self.host}:{self.port} "
                    f"(reset on write)"
                ) from exc
            raise
        # Read headers, then exactly Content-Length body bytes.  Never
        # read-to-EOF: pool workers forked on the server side may hold
        # an inherited copy of this socket, delaying EOF indefinitely.
        try:
            # One timeout scope for the whole response: unlike two
            # ``wait_for`` calls this spawns no wrapper tasks, which is
            # a measurable win on the warm path.
            async with asyncio.timeout(
                self._stage_timeout(deadline, self.request_timeout)
            ):
                try:
                    header = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError as exc:
                    if reused and not exc.partial:
                        raise StaleConnectionError(
                            f"stale keep-alive connection to "
                            f"{self.host}:{self.port} (EOF before any "
                            f"response byte)"
                        ) from None
                    raise
                except ConnectionResetError as exc:
                    if reused:
                        raise StaleConnectionError(
                            f"stale keep-alive connection to "
                            f"{self.host}:{self.port} (reset before any "
                            f"response byte)"
                        ) from exc
                    raise
                headers: dict[str, str] = {}
                for line in header.split(b"\r\n")[1:]:
                    name, _, value = line.decode("latin-1").partition(":")
                    if name:
                        headers[name.strip().lower()] = value.strip()
                try:
                    content_length = int(headers.get("content-length", "0"))
                except ValueError:
                    raise TransportError(
                        f"malformed Content-Length header "
                        f"{headers.get('content-length')!r} from "
                        f"{self.host}:{self.port}"
                    ) from None
                answer = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError as exc:
            raise TransportError(
                f"connection to {self.host}:{self.port} closed mid-response"
            ) from exc
        status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise TransportError(f"malformed status line {status_line!r}") from None
        return status, headers, answer

    async def _request(self, method: str, path: str,
                       body: bytes | None = None,
                       deadline: Deadline | None = None,
                       content_type: str = "application/json",
                       accept: str | None = None,
                       keep_alive: bool = False,
                       fingerprint: str | None = None,
                       ) -> tuple[int, dict[str, str], bytes]:
        payload = body or b""
        deadline_header = (
            f"X-Repro-Deadline: {deadline.at!r}\r\n" if deadline is not None else ""
        )
        accept_header = f"Accept: {accept}\r\n" if accept is not None else ""
        # The instance's content address, as a header: bodies stay
        # byte-identical (the server's exact-body memo keeps working)
        # while a fleet router can pick the owning shard without
        # parsing the body.  Binary bodies already carry it in their
        # prefix; this covers the JSON dialect.
        fingerprint_header = (
            f"X-Repro-Fingerprint: {fingerprint}\r\n" if fingerprint else ""
        )
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{accept_header}"
            f"{deadline_header}"
            f"{fingerprint_header}"
            f"Connection: {connection}\r\n\r\n"
        ).encode("latin-1")

        loop = asyncio.get_running_loop()
        reader = writer = None
        reused = False
        if keep_alive and self._conn is not None:
            if self._conn[0] is loop:
                _, reader, writer = self._conn
                self._conn = None  # in use; one outstanding request per conn
                reused = True
            else:
                self._drop_conn()
        try:
            while True:
                if reader is None:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        self._stage_timeout(deadline, self.connect_timeout),
                    )
                    reused = False
                try:
                    status, headers, answer = await self._exchange(
                        reader, writer, head, payload, deadline, reused=reused
                    )
                    break
                except StaleConnectionError:
                    # The server closed this kept-alive connection while
                    # it sat idle; zero bytes of this exchange ever
                    # happened.  Replace the connection and redo the
                    # exchange — pool hygiene, not a retry, so no retry
                    # budget slot is consumed.
                    writer.close()
                    reader = writer = None
                    reused = False
                    continue
        except BaseException:
            if writer is not None:
                writer.close()
            raise
        if keep_alive and headers.get("connection", "").lower() == "keep-alive":
            self._conn = (loop, reader, writer)
        else:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return status, headers, answer

    @staticmethod
    def _raise_for_status(status: int, headers: dict[str, str],
                          payload: bytes) -> None:
        """Map a non-200 response (always a JSON error doc) to its
        engine-equivalent exception."""
        try:
            answer = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            answer = {"status": "error", "error": payload.decode("latin-1", "replace")}
        exc_type = _ERROR_BY_STATUS.get(status, WorkerError)
        exc = exc_type(answer.get("error", f"HTTP {status}"))
        if status == 429:
            try:
                exc.retry_after = float(headers["retry-after"])
            except (KeyError, ValueError):
                pass
        raise exc

    async def _request_json(self, method: str, path: str,
                            doc: dict | None = None,
                            body: bytes | None = None,
                            deadline: Deadline | None = None,
                            fingerprint: str | None = None) -> dict:
        if body is None and doc is not None:
            body = json.dumps(doc).encode("utf-8")
        status, headers, payload = await self._request(method, path, body,
                                                       deadline=deadline,
                                                       fingerprint=fingerprint)
        if status != 200:
            self._raise_for_status(status, headers, payload)
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise TransportError(
                f"malformed JSON response from {self.host}:{self.port}"
            ) from None

    async def _request_bin(self, body: bytes,
                           deadline: Deadline | None = None) -> ResponseView:
        """One binary schedule exchange; returns the zero-copy view."""
        status, headers, payload = await self._request(
            "POST", "/v1/schedule", body, deadline=deadline,
            content_type=BINARY_CONTENT_TYPE, accept=BINARY_CONTENT_TYPE,
            keep_alive=True,
        )
        if status != 200:
            self._raise_for_status(status, headers, payload)
        content_type = headers.get("content-type", "").split(";", 1)[0].strip().lower()
        if content_type != BINARY_CONTENT_TYPE:
            raise TransportError(
                f"server answered a binary request with {content_type!r}"
            )
        return ResponseView(payload)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def _schedule_body(self, instance: Instance, alg: str,
                       timeout: float | None,
                       trace_id: str | None = None,
                       wire_format: str = "json",
                       compact: bool = False) -> bytes:
        key = (wire_format, compact, instance.fingerprint(), alg, timeout, trace_id)
        body = self._body_cache.get(key)
        if body is None:
            if wire_format == "bin" and compact:
                body = encode_request(None, alg, timeout, trace_id=trace_id,
                                      fingerprint=instance.fingerprint(),
                                      compact=True)
            elif wire_format == "bin":
                # The instance blob dominates the encoding cost and is
                # shared across algorithms, so it gets its own memo slot.
                blob_key = ("bin-instance", instance.fingerprint())
                blob = self._body_cache.get(blob_key)
                if blob is None:
                    blob = encode_instance(instance)
                    self._body_cache[blob_key] = blob
                else:
                    self._body_cache.move_to_end(blob_key)
                body = encode_request(instance, alg, timeout, trace_id=trace_id,
                                      instance_bytes=blob,
                                      fingerprint=instance.fingerprint())
            else:
                doc = make_request_doc(json.loads(instance_to_json(instance)), alg,
                                       timeout, trace_id=trace_id)
                body = json.dumps(doc).encode("utf-8")
            self._body_cache[key] = body
            while len(self._body_cache) > _BODY_CACHE_SIZE:
                self._body_cache.popitem(last=False)
        else:
            self._body_cache.move_to_end(key)
        return body

    async def schedule(self, instance: Instance, alg: str = "IMP",
                       timeout: float | None = None,
                       trace_id: str | None = None) -> ScheduleResult:
        """Submit one instance; returns the placement result.

        ``timeout`` bounds the whole call — including every retry the
        client's :class:`RetryPolicy` takes — via one deadline that is
        also propagated to the server.  ``trace_id`` (optional) is
        echoed back in the result and stamped on every server/worker
        span this request produces.
        """
        deadline = Deadline.after(timeout if timeout is not None else self.request_timeout)
        policy = self.retry_policy
        if policy is None:
            return await self._schedule_once(instance, alg, timeout, trace_id, deadline)
        tracer = get_tracer()
        state = _RetryState(policy, self.retry_stats, deadline)
        while True:
            self.retry_stats.attempts += 1
            try:
                return await self._schedule_once(instance, alg, timeout, trace_id,
                                                 deadline)
            except RETRYABLE as exc:
                retry_after = getattr(exc, "retry_after", None)
                if tracer.enabled:
                    with tracer.span("client.backoff", detach=True, alg=alg,
                                     cause=type(exc).__name__,
                                     retry_after=retry_after or 0.0):
                        retried = await state.backoff(retry_after)
                else:
                    retried = await state.backoff(retry_after)
                if not retried:
                    raise
                if tracer.enabled:
                    tracer.count("client.retries")

    async def _schedule_once(self, instance: Instance, alg: str,
                             timeout: float | None, trace_id: str | None,
                             deadline: Deadline) -> ScheduleResult:
        """One schedule attempt in the client's current wire format.

        A binary request a server answers with "invalid JSON body" is
        the signature of a pre-wire JSON-only server reading binary
        bytes as a document — downgrade to JSON permanently (this
        client keeps talking JSON) and redo the attempt; any other
        error is the request's own problem and surfaces unchanged.
        """
        if self.wire == "bin":
            result = await self._schedule_bin(instance, alg, timeout, trace_id,
                                              deadline)
            if result is not None:
                return result
            # fell through: downgraded to JSON mid-attempt
        body = self._schedule_body(instance, alg, timeout, trace_id)
        answer = await self._request_json("POST", "/v1/schedule", body=body,
                                          deadline=deadline,
                                          fingerprint=instance.fingerprint())
        return ScheduleResult.from_payload(answer["result"])

    async def _schedule_bin(self, instance: Instance, alg: str,
                            timeout: float | None, trace_id: str | None,
                            deadline: Deadline) -> WireScheduleResult | None:
        """One binary attempt; ``None`` means "downgraded, retry as JSON".

        Once the server has answered for an ``(instance, alg)`` pair its
        content-addressed cache holds the result, so subsequent requests
        go *compact* — fingerprint only, no instance blob, a few dozen
        bytes.  A compact miss (eviction, restart without the segment)
        comes back as an ``unknown instance fingerprint`` error and the
        full request is resent once, transparently.
        """
        acked_key = (instance.fingerprint(), alg)
        compact = acked_key in self._acked
        body = self._schedule_body(instance, alg, timeout, trace_id,
                                   wire_format="bin", compact=compact)
        try:
            try:
                view = await self._request_bin(body, deadline=deadline)
            except RequestError as exc:
                if compact and "unknown instance fingerprint" in str(exc):
                    self._acked.pop(acked_key, None)
                    body = self._schedule_body(instance, alg, timeout, trace_id,
                                               wire_format="bin")
                    view = await self._request_bin(body, deadline=deadline)
                else:
                    raise
        except RequestError as exc:
            if "invalid JSON body" not in str(exc):
                raise
            self.wire = "json"
            return None
        self._acked[acked_key] = True
        self._acked.move_to_end(acked_key)
        while len(self._acked) > _BODY_CACHE_SIZE:
            self._acked.popitem(last=False)
        return WireScheduleResult(view)

    async def stats(self) -> ServiceStats:
        """Fetch the server's counter snapshot."""
        answer = await self._request_json("GET", "/v1/stats")
        return ServiceStats(**answer["stats"])

    async def metrics_text(self) -> str:
        """Fetch the Prometheus-style exposition text."""
        status, _, payload = await self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"GET /metrics -> HTTP {status}")
        return payload.decode("utf-8")

    async def health(self) -> bool:
        """True when the daemon is up and not draining."""
        try:
            answer = await self._request_json("GET", "/healthz")
        except (OSError, asyncio.TimeoutError, ServiceError):
            return False
        return answer.get("status") == "ok" and not answer.get("draining", False)

    async def shutdown(self) -> None:
        """Ask the daemon to drain and exit."""
        await self._request_json("POST", "/v1/shutdown")

    # ------------------------------------------------------------------
    # sync conveniences (CLI, scripts)
    # ------------------------------------------------------------------
    def schedule_sync(self, instance: Instance, alg: str = "IMP",
                      timeout: float | None = None,
                      trace_id: str | None = None) -> ScheduleResult:
        return asyncio.run(self.schedule(instance, alg, timeout, trace_id=trace_id))

    def stats_sync(self) -> ServiceStats:
        return asyncio.run(self.stats())

    def health_sync(self) -> bool:
        return asyncio.run(self.health())

    def shutdown_sync(self) -> None:
        asyncio.run(self.shutdown())
