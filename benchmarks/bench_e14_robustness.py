"""E14 — Robustness: simulated makespan under runtime noise.

Expected shape: simulated SLR grows with the noise CV for every
algorithm; the improved scheduler's plans stay at least as good as
HEFT's under moderate noise (its advantage is not an artifact of exact
ETC estimates).
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e14, e14_data
from repro.schedulers.registry import get_scheduler
from repro.sim import MultiplicativeNoise, execute


def test_e14_shape(quick):
    cvs, series = e14_data(quick)
    print("\n" + e14(quick))
    # Noise hurts: the noisiest point is worse than the noise-free one.
    for name, vals in series.items():
        assert vals[-1] > vals[0], name
    # At cv=0 the simulation equals the plan, so IMP <= HEFT exactly.
    assert series["IMP"][0] <= series["HEFT"][0] + 1e-9
    # Under the largest measured noise IMP stays competitive (within 5%).
    assert series["IMP"][-1] <= series["HEFT"][-1] * 1.05


def test_e14_benchmark_simulation(benchmark):
    rng = np.random.default_rng(214)
    inst = W.random_instance(rng, num_tasks=80)
    schedule = get_scheduler("HEFT").schedule(inst)
    noise = MultiplicativeNoise(0.3, seed=42)
    result = benchmark(execute, schedule, inst, noise)
    assert result.makespan > 0
