"""Expected-time-to-compute (ETC) matrices.

The ETC matrix gives the estimated execution time of every task on every
processor and is how the literature expresses *computation*
heterogeneity.  Two generation protocols are provided:

* **range-based** (Topcuoglu et al., TPDS 2002): each task ``i`` has an
  average cost ``w_i`` (taken from the DAG's nominal cost) and
  ``w[i][p]`` is drawn uniformly from ``[w_i*(1-β/2), w_i*(1+β/2)]``
  where ``β`` is the heterogeneity factor.  ``β = 0`` degenerates to a
  homogeneous system.
* **CVB** (coefficient-of-variation based, Ali et al., 2000): gamma
  distributed task and machine factors with coefficients of variation
  ``v_task`` and ``v_machine``.

Both support the three consistency classes of the literature:
``consistent`` (processor ordering identical for every task — i.e. some
machines are uniformly faster), ``inconsistent`` (no structure) and
``partially-consistent`` (consistent on half of the processors).
"""

from __future__ import annotations

import math
from typing import Literal, Mapping, Sequence

import numpy as np

from repro.dag.graph import TaskDAG
from repro.exceptions import CostError, MachineError, UnknownProcessorError, UnknownTaskError
from repro.machine.cluster import Machine
from repro.types import ProcId, TaskId
from repro.utils.rng import SeedLike, as_generator

Consistency = Literal["consistent", "inconsistent", "partially-consistent"]


class ETCMatrix:
    """Dense task x processor execution-time table with id-based access."""

    def __init__(
        self,
        task_ids: Sequence[TaskId],
        proc_ids: Sequence[ProcId],
        values: np.ndarray,
    ) -> None:
        values = np.asarray(values, dtype=float)
        if values.shape != (len(task_ids), len(proc_ids)):
            raise MachineError(
                f"ETC shape {values.shape} does not match "
                f"{len(task_ids)} tasks x {len(proc_ids)} processors"
            )
        if np.any(~np.isfinite(values)) or np.any(values < 0):
            raise CostError("ETC entries must be finite and >= 0")
        self._tasks = list(task_ids)
        self._procs = list(proc_ids)
        self._trow: dict[TaskId, int] = {t: i for i, t in enumerate(self._tasks)}
        self._pcol: dict[ProcId, int] = {p: j for j, p in enumerate(self._procs)}
        if len(self._trow) != len(self._tasks):
            raise MachineError("duplicate task ids in ETC")
        if len(self._pcol) != len(self._procs):
            raise MachineError("duplicate processor ids in ETC")
        self._w = values

    # -- access --------------------------------------------------------
    def time(self, task: TaskId, proc: ProcId) -> float:
        """Execution time of ``task`` on ``proc``."""
        try:
            i = self._trow[task]
        except KeyError:
            raise UnknownTaskError(task) from None
        try:
            j = self._pcol[proc]
        except KeyError:
            raise UnknownProcessorError(proc) from None
        return float(self._w[i, j])

    def row(self, task: TaskId) -> Mapping[ProcId, float]:
        """All per-processor times of one task."""
        try:
            i = self._trow[task]
        except KeyError:
            raise UnknownTaskError(task) from None
        return {p: float(self._w[i, j]) for j, p in enumerate(self._procs)}

    def mean(self, task: TaskId) -> float:
        """Mean execution time of a task across processors (HEFT's w̄)."""
        try:
            i = self._trow[task]
        except KeyError:
            raise UnknownTaskError(task) from None
        return float(self._w[i].mean())

    def median(self, task: TaskId) -> float:
        try:
            i = self._trow[task]
        except KeyError:
            raise UnknownTaskError(task) from None
        return float(np.median(self._w[i]))

    def best(self, task: TaskId) -> float:
        """Minimum (fastest-processor) execution time of a task."""
        try:
            i = self._trow[task]
        except KeyError:
            raise UnknownTaskError(task) from None
        return float(self._w[i].min())

    def worst(self, task: TaskId) -> float:
        """Maximum (slowest-processor) execution time of a task."""
        try:
            i = self._trow[task]
        except KeyError:
            raise UnknownTaskError(task) from None
        return float(self._w[i].max())

    def best_proc(self, task: TaskId) -> ProcId:
        """Processor on which the task runs fastest (deterministic ties)."""
        try:
            i = self._trow[task]
        except KeyError:
            raise UnknownTaskError(task) from None
        return self._procs[int(np.argmin(self._w[i]))]

    @property
    def task_ids(self) -> list[TaskId]:
        return list(self._tasks)

    @property
    def proc_ids(self) -> list[ProcId]:
        return list(self._procs)

    def as_array(self) -> np.ndarray:
        """Copy of the underlying (tasks x procs) array."""
        return self._w.copy()

    def is_consistent(self) -> bool:
        """True if one processor ordering is fastest for every task."""
        if self._w.shape[0] <= 1 or self._w.shape[1] <= 1:
            return True
        order = np.argsort(self._w[0], kind="stable")
        sorted_rows = self._w[:, order]
        return bool(np.all(np.diff(sorted_rows, axis=1) >= -1e-12))

    def heterogeneity(self) -> float:
        """Mean relative spread ``(max-min)/mean`` across tasks.

        0.0 for a homogeneous matrix; grows with β.
        """
        means = self._w.mean(axis=1)
        spread = self._w.max(axis=1) - self._w.min(axis=1)
        mask = means > 0
        if not np.any(mask):
            return 0.0
        return float((spread[mask] / means[mask]).mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ETCMatrix(tasks={len(self._tasks)}, procs={len(self._procs)})"


def etc_from_speeds(dag: TaskDAG, machine: Machine) -> ETCMatrix:
    """Derive a (fully consistent) ETC matrix from processor speeds.

    ``etc[i][p] = cost_i / speed_p`` — the natural model for homogeneous
    machines and speed-scaled heterogeneous ones.
    """
    tasks = list(dag.tasks())
    procs = machine.proc_ids()
    costs = np.array([dag.cost(t) for t in tasks], dtype=float)
    speeds = np.array([machine.speed(p) for p in procs], dtype=float)
    return ETCMatrix(tasks, procs, costs[:, None] / speeds[None, :])


def _apply_consistency(
    w: np.ndarray, consistency: Consistency, rng: np.random.Generator
) -> np.ndarray:
    """Impose a consistency class on an unstructured sample matrix."""
    if consistency == "inconsistent":
        return w
    if consistency == "consistent":
        # Sorting every row by one global processor order makes machine j
        # faster than machine k for *all* tasks.
        return np.sort(w, axis=1)
    if consistency == "partially-consistent":
        # Classic construction: sort only the even-indexed columns.
        out = w.copy()
        even = np.arange(0, w.shape[1], 2)
        out[:, even] = np.sort(w[:, even], axis=1)
        return out
    raise MachineError(f"unknown consistency class {consistency!r}")


def generate_etc(
    dag: TaskDAG,
    machine: Machine,
    heterogeneity: float = 0.5,
    consistency: Consistency = "inconsistent",
    method: Literal["range", "cvb"] = "range",
    v_machine: float | None = None,
    seed: SeedLike = None,
) -> ETCMatrix:
    """Generate an ETC matrix for ``dag`` on ``machine``.

    Parameters
    ----------
    heterogeneity:
        The β factor of the range-based protocol, in [0, 2): entry
        ``w[i][p] ~ U[w_i (1-β/2), w_i (1+β/2)]``.  For the CVB method it
        is interpreted as the task coefficient of variation.  β = 0
        produces a homogeneous matrix equal to the nominal costs.
    consistency:
        Consistency class (see module docstring).
    method:
        ``"range"`` (default, the TPDS-2002 protocol) or ``"cvb"``.
    v_machine:
        CVB machine coefficient of variation (defaults to
        ``heterogeneity``); ignored by the range method.
    seed:
        Seed or generator for reproducibility.
    """
    if heterogeneity < 0:
        raise MachineError(f"heterogeneity must be >= 0, got {heterogeneity}")
    rng = as_generator(seed)
    tasks = list(dag.tasks())
    procs = machine.proc_ids()
    n, q = len(tasks), len(procs)
    costs = np.array([dag.cost(t) for t in tasks], dtype=float)

    if n == 0:
        return ETCMatrix(tasks, procs, np.zeros((0, q)))

    if method == "range":
        if heterogeneity >= 2:
            raise MachineError("range method requires heterogeneity < 2 (else negative times)")
        lo = costs * (1 - heterogeneity / 2)
        hi = costs * (1 + heterogeneity / 2)
        w = rng.uniform(lo[:, None], np.maximum(hi, lo + 1e-300)[:, None], size=(n, q))
        # Zero-cost tasks (virtual endpoints) must stay exactly zero.
        w[costs == 0, :] = 0.0
    elif method == "cvb":
        v_task = heterogeneity
        v_mach = heterogeneity if v_machine is None else v_machine
        if v_task <= 0 or v_mach <= 0:
            # Degenerate CV: no variation on that axis.
            task_factor = np.ones(n) if v_task <= 0 else None
            mach_factor = np.ones(q) if v_mach <= 0 else None
        else:
            task_factor = mach_factor = None
        if task_factor is None:
            alpha_t = 1.0 / (v_task * v_task)
            task_factor = rng.gamma(shape=alpha_t, scale=1.0 / alpha_t, size=n)
        if mach_factor is None:
            alpha_m = 1.0 / (v_mach * v_mach)
            mach_factor = rng.gamma(shape=alpha_m, scale=1.0 / alpha_m, size=(n, q))
        w = costs[:, None] * task_factor[:, None] * mach_factor
        w[costs == 0, :] = 0.0
    else:
        raise MachineError(f"unknown ETC method {method!r}")

    w = _apply_consistency(w, consistency, rng)
    if math.isclose(heterogeneity, 0.0):
        # β = 0 must be *exactly* homogeneous for the homogeneous benches.
        w = np.repeat(costs[:, None], q, axis=1)
    return ETCMatrix(tasks, procs, w)
