"""Online-simulation determinism across interpreter restarts.

The acceptance contract of the online subsystem: the same templates,
arrival stream, seed and knobs must yield a byte-identical
:meth:`OnlineResult.to_json` across processes with different
``PYTHONHASHSEED`` values — no hash-ordered dict or set may leak into
event ordering, policy decisions or metric aggregation.  Three probes:

* the full result JSON across hash-seed restarts (string processor ids
  and string template names stress hash ordering the hardest),
* trace-driven replay of a realized Poisson stream reproduces the
  Poisson run byte for byte,
* the template mapping's *iteration order* is irrelevant.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent

#: Builds a catalogue on a machine with string processor ids, runs every
#: policy (including bounded preemption, whose victim selection is the
#: most ordering-sensitive part) under runtime noise, and prints the
#: canonical JSON of each run.
_PROBE = """
import numpy as np
from repro.dag.generators import random_dag
from repro.instance import Instance
from repro.machine.cluster import Machine
from repro.machine.comm import UniformCommunication
from repro.machine.etc import ETCMatrix
from repro.machine.processor import Processor
from repro.sim import PoissonArrivals, simulate_online

proc_names = ["zeta", "alpha", "omega"]
machine = Machine(
    [Processor(id=n) for n in proc_names],
    UniformCommunication(latency=0.2, bandwidth=2.0),
)
templates = {}
for i, name in enumerate(["omega-job", "alpha-job", "mid-job"]):
    dag = random_dag(10 + 3 * i, ccr=1.0, seed=70 + i)
    tasks = list(dag.tasks())
    vals = np.random.default_rng(500 + i).uniform(2.0, 12.0, size=(len(tasks), 3))
    templates[name] = Instance(
        dag=dag, machine=machine,
        etc=ETCMatrix(tasks, proc_names, vals), name=name,
    )
stream = PoissonArrivals(rate=0.05, jobs=30, seed=13).realize(sorted(templates))
out = []
for policy in ("queue", "replace", "preempt"):
    res = simulate_online(
        templates, stream, alg="HEFT", policy=policy, noise_cv=0.15, seed=5
    )
    out.append(res.to_json())
print("\\n".join(out))
"""


def _run_probe(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=ROOT,
    )
    return out.stdout.strip()


def test_online_json_identical_across_hashseed_restarts():
    reports = {seed: _run_probe(seed) for seed in ("0", "1", "4242")}
    assert reports["0"] == reports["1"] == reports["4242"]
    assert reports["0"].count("\n") == 2  # three policy runs actually emitted


def test_trace_replay_reproduces_poisson_run():
    from repro.sim import (
        PoissonArrivals,
        build_templates,
        simulate_online,
        trace_from_json,
        trace_to_json,
    )

    templates = build_templates(num_templates=3, num_tasks=12, num_procs=4, seed=6)
    poisson = PoissonArrivals(rate=0.07, jobs=35, seed=21)
    realized = poisson.realize(sorted(templates))
    replayed = trace_from_json(trace_to_json(realized)).realize(sorted(templates))
    a = simulate_online(templates, realized, policy="replace", noise_cv=0.1, seed=2)
    b = simulate_online(templates, replayed, policy="replace", noise_cv=0.1, seed=2)
    assert a.to_json() == b.to_json()


def test_template_dict_order_irrelevant():
    from repro.sim import PoissonArrivals, build_templates, simulate_online

    templates = build_templates(num_templates=4, num_tasks=10, num_procs=3, seed=9)
    shuffled = {k: templates[k] for k in reversed(sorted(templates))}
    assert list(shuffled) != list(templates)
    stream = PoissonArrivals(rate=0.08, jobs=25, seed=17)
    a = simulate_online(templates, stream, policy="preempt")
    b = simulate_online(shuffled, stream, policy="preempt")
    assert a.to_json() == b.to_json()
