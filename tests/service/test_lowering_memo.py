"""Worker-side lowered-instance memo: warm requests skip lowering."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import workloads as W
from repro.instance_io import instance_to_json
from repro.service.protocol import (
    clear_lowering_cache,
    compute_schedule_payload,
    lowering_cache_info,
)


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_lowering_cache()
    yield
    clear_lowering_cache()


def _instance(seed: int = 50, num_tasks: int = 20):
    return W.random_instance(np.random.default_rng(seed), num_tasks=num_tasks, num_procs=4)


def test_exact_body_repeat_hits_memo():
    text = instance_to_json(_instance())
    first = compute_schedule_payload(text, "HEFT")
    info = lowering_cache_info()
    assert (info["hits"], info["misses"]) == (0, 1)
    second = compute_schedule_payload(text, "HEFT")
    info = lowering_cache_info()
    assert (info["hits"], info["misses"]) == (1, 1)
    assert first == second


def test_same_instance_different_alg_skips_lowering():
    text = instance_to_json(_instance())
    compute_schedule_payload(text, "HEFT")
    compute_schedule_payload(text, "CPOP")
    compute_schedule_payload(text, "GA")
    info = lowering_cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 2


def test_fingerprint_keyed_across_body_variants():
    """A semantically equal body (re-serialised with a different name)
    still hits the memo — the key is the content fingerprint."""
    inst = _instance()
    text = instance_to_json(inst)
    doc = json.loads(text)
    doc["name"] = "renamed"
    variant = json.dumps(doc)
    assert variant != text
    a = compute_schedule_payload(text, "HEFT")
    b = compute_schedule_payload(variant, "HEFT")
    info = lowering_cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 1
    # Fingerprint-keyed reuse answers for the first-seen body, exactly
    # like the engine's response cache does on a warm hit.
    assert a == b


def test_payloads_identical_with_and_without_memo():
    inst = _instance(seed=51)
    text = instance_to_json(inst)
    warm_twice = [compute_schedule_payload(text, "IMP") for _ in range(2)]
    clear_lowering_cache()
    cold = compute_schedule_payload(text, "IMP")
    assert warm_twice[0] == warm_twice[1] == cold


def test_memo_stays_bounded():
    for seed in range(40):
        compute_schedule_payload(instance_to_json(_instance(seed=seed, num_tasks=6)), "HEFT")
    info = lowering_cache_info()
    assert info["size"] <= info["capacity"]
