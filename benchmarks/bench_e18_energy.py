"""E18 (extension) — DVFS slack reclamation by scheduler.

Expected shape: every scheduler's schedule yields non-negative energy
savings without moving the makespan; *looser* schedules (higher SLR)
own more slack and therefore reclaim more energy — the classic
makespan-vs-reclaimable-energy tension.  The contribution's tighter
schedules save less at the wall socket but far more wall-clock time.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e18, e18_data
from repro.energy import PowerModel, reclaim_slack
from repro.schedulers.registry import get_scheduler


def test_e18_shape(quick):
    data = e18_data(quick)
    print("\n" + e18(quick))
    for name, (s, saved, slowed) in data.items():
        assert 0.0 <= saved < 1.0, name
        assert 0.0 <= slowed <= 1.0, name
    # Looser schedules reclaim at least as much as the tightest one.
    assert data["RoundRobin"][1] >= data["IMP"][1] - 1e-9
    # And ordering by SLR orders savings weakly (the measured tension).
    assert data["CPOP"][1] >= data["HEFT"][1] - 0.05


def test_e18_makespan_invariant(quick):
    # Reclamation must not move the makespan: the frequency map only
    # stretches executions into their own slack windows.
    rng = np.random.default_rng(218)
    inst = W.random_instance(rng, num_tasks=60)
    schedule = get_scheduler("HEFT").schedule(inst)
    span_before = schedule.makespan
    res = reclaim_slack(schedule, inst, PowerModel())
    assert schedule.makespan == span_before  # schedule untouched
    assert res.energy_scaled <= res.energy_nominal


def test_e18_benchmark_reclaim(benchmark):
    rng = np.random.default_rng(218)
    inst = W.random_instance(rng, num_tasks=80)
    schedule = get_scheduler("HEFT").schedule(inst)
    model = PowerModel()
    res = benchmark(reclaim_slack, schedule, inst, model)
    assert res.energy_scaled <= res.energy_nominal
