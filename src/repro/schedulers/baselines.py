"""Naive reference schedulers.

These are not from the literature's comparison tables; they exist to
anchor the experiments from below (any serious heuristic must clearly
beat them) and to exercise the substrate in tests.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import ListScheduler, Placement, placement_on
from repro.types import TaskId
from repro.utils.rng import SeedLike, as_generator


class RoundRobinScheduler(ListScheduler):
    """Topological order, processors assigned cyclically."""

    insertion = True
    name = "RoundRobin"

    def __init__(self) -> None:
        self._next = 0

    def priority_order(self, instance: Instance) -> list[TaskId]:
        self._next = 0
        return instance.dag.topological_order()

    def place(self, schedule: Schedule, instance: Instance, task: TaskId) -> Placement:
        procs = instance.machine.proc_ids()
        proc = procs[self._next % len(procs)]
        self._next += 1
        return placement_on(schedule, instance, task, proc, insertion=True)


class RandomScheduler(ListScheduler):
    """Topological order, processor drawn uniformly at random.

    Deterministic for a given ``seed``; each :meth:`schedule` call
    re-derives its stream from the seed so repeated runs agree.
    """

    insertion = True
    name = "Random"

    def __init__(self, seed: SeedLike = 0) -> None:
        self._seed = seed
        self._rng = None

    def priority_order(self, instance: Instance) -> list[TaskId]:
        # Re-seed per schedule() call so repeated runs on the same
        # instance produce the same placements.
        self._rng = as_generator(self._seed)
        return instance.dag.topological_order()

    def place(self, schedule: Schedule, instance: Instance, task: TaskId) -> Placement:
        procs = instance.machine.proc_ids()
        proc = procs[int(self._rng.integers(0, len(procs)))]
        return placement_on(schedule, instance, task, proc, insertion=True)
