"""Content-addressed LRU cache of computed schedules.

Keys are :func:`request_key` digests — instance fingerprint plus
scheduler name — so *what* was asked, never *when* or *by whom*,
determines the entry.  Values are the immutable response payloads of
:func:`repro.service.protocol.schedule_payload`; a hit returns the
exact object stored by the cold run, which is what makes hit responses
bit-identical to cold responses by construction.

The cache is used from a single event loop, so plain dict operations
need no locking; it still keeps its own hit/miss/eviction counters so a
:class:`ScheduleCache` is observable on its own (the engine-level
metrics aggregate over it).

:class:`SegmentStore` is the disk half: an append-only segment file of
CRC-checked, wire-encoded payload records that a restarted daemon
replays to come back warm.  Content addressing is what makes it this
simple — entries are immutable and keyed by what was asked, so there is
no invalidation, no compaction urgency, and replaying a duplicate
record is harmless (last write wins, both are identical).
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import zlib
from collections import OrderedDict

from repro.instance import Instance


def request_key(instance: Instance, alg: str) -> str:
    """Cache key of one request: content fingerprint x scheduler config."""
    return request_key_from_fingerprint(instance.fingerprint(), alg)


def request_key_from_fingerprint(fingerprint: str, alg: str) -> str:
    """:func:`request_key` from an already-known content fingerprint.

    The binary wire format carries the client's fingerprint in the
    request, so a warm hit derives its cache key without decoding the
    instance at all.  Safe as a *lookup* path because entries are only
    ever stored under keys the server computes from decoded instances.
    """
    digest = hashlib.sha256(fingerprint.encode("ascii"))
    digest.update(b"\x00")
    digest.update(alg.encode("utf-8"))
    return digest.hexdigest()


class ScheduleCache:
    """Bounded LRU mapping request keys to response payloads."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        """Look up a payload; refreshes recency on hit.

        Treat the returned payload as read-only — it is shared with
        every other hit on the same key.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, payload: dict) -> None:
        """Insert (or refresh) an entry, evicting the least recently
        used entries beyond capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduleCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


# ----------------------------------------------------------------------
# persistent segment store
# ----------------------------------------------------------------------
#: Segment file header: magic + format version.
_SEG_MAGIC = b"RPSG"
_SEG_VERSION = 1
_SEG_HEADER = struct.Struct("<4sB")

#: Per-record frame: magic, 32-byte raw request-key digest, payload
#: length, CRC-32 of the payload bytes.  The payload is the wire-encoded
#: form of the cached response payload (``wire.encode_payload``).
_REC_MAGIC = b"RPRC"
_REC_HEADER = struct.Struct("<4s32sII")

#: Refuse to believe a record longer than this — a corrupt length field
#: must not make recovery try to skip gigabytes of nothing.
_MAX_RECORD = 256 * 1024 * 1024


class SegmentStore:
    """Append-only, CRC-checked, crash-tolerant store of cache entries.

    One segment file (``schedules.seg`` under ``cache_dir``) holds every
    payload the daemon has ever computed, framed as::

        file    magic b"RPSG" | version u8 | records...
        record  magic b"RPRC" | key sha-256 (32 raw bytes)
                | length u32 | crc32 u32 | payload bytes

    Writes append one frame and ``fsync`` — a crash can only lose or
    truncate the *tail* record, never corrupt an earlier one.  Recovery
    (:meth:`recover`) maps the file read-only and walks the frames,
    stopping at the first bad magic, short frame, oversized length or
    CRC mismatch; everything before that point is intact by induction.
    The corrupt tail is truncated away so subsequent appends produce a
    well-formed file again.  A file with a bad *header* is rotated to
    ``*.corrupt`` and a fresh segment started — never silently deleted.

    The store does not interpret payload bytes; the engine pairs it with
    a :class:`ScheduleCache` and decodes on recovery.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.dir = os.fspath(cache_dir)
        self.path = os.path.join(self.dir, "schedules.seg")
        os.makedirs(self.dir, exist_ok=True)
        self.appended = 0
        self._fh = None

    # -- writing -------------------------------------------------------
    def _file(self):
        if self._fh is None:
            fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
            self._fh = open(self.path, "ab")
            if fresh:
                self._fh.write(_SEG_HEADER.pack(_SEG_MAGIC, _SEG_VERSION))
                self._fh.flush()
                os.fsync(self._fh.fileno())
        return self._fh

    def append(self, key: str, payload_bytes: bytes) -> None:
        """Durably append one entry (``key`` is a :func:`request_key` hex
        digest, ``payload_bytes`` its wire-encoded payload)."""
        fh = self._file()
        frame = _REC_HEADER.pack(
            _REC_MAGIC, bytes.fromhex(key), len(payload_bytes),
            zlib.crc32(payload_bytes),
        )
        fh.write(frame)
        fh.write(payload_bytes)
        fh.flush()
        os.fsync(fh.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- recovery ------------------------------------------------------
    def recover(self) -> tuple[dict[str, bytes], dict[str, int]]:
        """Replay the segment into ``{key_hex: payload_bytes}``.

        Returns ``(entries, report)`` where the report counts
        ``recovered`` records, ``skipped`` bad tail records (0 or 1 —
        the scan stops at the first), whether the file was
        ``truncated`` back to its last good frame, and ``rotated`` when
        the whole file header was unusable.  Duplicate keys keep the
        last record, matching append order.
        """
        report = {"recovered": 0, "skipped": 0, "truncated": 0, "rotated": 0}
        entries: dict[str, bytes] = {}
        if not os.path.exists(self.path):
            return entries, report
        size = os.path.getsize(self.path)
        if size < _SEG_HEADER.size:
            if size:
                self._rotate(report)
            return entries, report
        with open(self.path, "rb") as fh:
            with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
                view = memoryview(mapped)
                try:
                    magic, version = _SEG_HEADER.unpack_from(view, 0)
                    if magic != _SEG_MAGIC or version != _SEG_VERSION:
                        raise ValueError("bad segment header")
                except (struct.error, ValueError):
                    view.release()
                    self._rotate(report)
                    return entries, report
                off = _SEG_HEADER.size
                good_end = off
                while off + _REC_HEADER.size <= size:
                    rec_magic, raw_key, length, crc = _REC_HEADER.unpack_from(view, off)
                    body_start = off + _REC_HEADER.size
                    if (
                        rec_magic != _REC_MAGIC
                        or length > _MAX_RECORD
                        or body_start + length > size
                    ):
                        break
                    body = view[body_start:body_start + length]
                    if zlib.crc32(body) != crc:
                        body.release()
                        break
                    entries[raw_key.hex()] = bytes(body)
                    body.release()
                    report["recovered"] += 1
                    off = body_start + length
                    good_end = off
                view.release()
        if good_end < size:
            report["skipped"] = 1
            report["truncated"] = 1
            self.close()
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
        return entries, report

    def _rotate(self, report: dict[str, int]) -> None:
        """Move an unusable segment aside and note it in the report."""
        self.close()
        os.replace(self.path, self.path + ".corrupt")
        report["rotated"] = 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SegmentStore({self.path!r}, appended={self.appended})"
