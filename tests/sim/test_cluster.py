"""ClusterState: occupancy, release, prefix compaction, accounting."""

import pytest

from repro.exceptions import ConfigurationError
from repro.machine.cluster import Machine
from repro.sim.cluster import ClusterState


def make_cluster(q: int = 2) -> ClusterState:
    return ClusterState(Machine.homogeneous(q, name=f"q{q}"))


class TestOccupyRelease:
    def test_occupy_sorted_insert(self):
        c = make_cluster()
        c.occupy("a", [(0, 5.0, 7.0)])
        c.occupy("b", [(0, 1.0, 2.0), (1, 0.0, 3.0)])
        starts, ends = c.seeded_timelines()
        assert starts[0] == [1.0, 5.0] and ends[0] == [2.0, 7.0]
        assert starts[1] == [0.0] and ends[1] == [3.0]

    def test_duplicate_job_rejected(self):
        c = make_cluster()
        c.occupy("a", [(0, 0.0, 1.0)])
        with pytest.raises(ConfigurationError):
            c.occupy("a", [(1, 0.0, 1.0)])

    def test_invalid_interval_rejected(self):
        c = make_cluster()
        with pytest.raises(ConfigurationError):
            c.occupy("a", [(0, 2.0, 1.0)])  # end < start
        with pytest.raises(ConfigurationError):
            c.occupy("b", [(5, 0.0, 1.0)])  # proc out of range

    def test_release_removes_all_intervals(self):
        c = make_cluster()
        c.occupy("a", [(0, 0.0, 1.0), (1, 2.0, 3.0)])
        c.occupy("b", [(0, 1.0, 2.0)])
        removed = c.release("a")
        assert sorted(removed) == [(0, 0.0, 1.0), (1, 2.0, 3.0)]
        starts, _ = c.seeded_timelines()
        assert starts[0] == [1.0] and starts[1] == []

    def test_release_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster().release("ghost")

    def test_release_distinguishes_same_start(self):
        # Two jobs may share a start on *different* procs; on the same
        # proc starts are unique, but equal starts of zero-width slots
        # must resolve by job id.
        c = make_cluster()
        c.occupy("a", [(0, 1.0, 1.0)])
        c.occupy("b", [(0, 1.0, 1.0)])
        c.release("a")
        starts, ends = c.seeded_timelines()
        assert starts[0] == [1.0] and c._jobs[0] == ["b"]


class TestAdvance:
    def test_drops_only_finished_prefix(self):
        c = make_cluster(1)
        c.occupy("a", [(0, 0.0, 1.0)])
        c.occupy("b", [(0, 1.0, 2.0)])
        c.occupy("c", [(0, 3.0, 4.0)])
        assert c.advance(2.0) == 2
        starts, ends = c.seeded_timelines()
        assert starts[0] == [3.0] and ends[0] == [4.0]
        assert c.frontier == 2.0

    def test_busy_time_exact_across_compaction(self):
        c = make_cluster(2)
        c.occupy("a", [(0, 0.0, 2.0), (1, 1.0, 4.0)])
        before = c.busy_time()
        c.advance(2.5)
        assert c.busy_time() == before == 5.0

    def test_utilization(self):
        c = make_cluster(2)
        c.occupy("a", [(0, 0.0, 2.0), (1, 0.0, 2.0)])
        assert c.utilization() == pytest.approx(1.0)
        assert c.utilization(horizon=4.0) == pytest.approx(0.5)
        c.advance(2.0)
        assert c.utilization(horizon=4.0) == pytest.approx(0.5)

    def test_advance_backwards_rejected(self):
        c = make_cluster()
        c.advance(5.0)
        with pytest.raises(ConfigurationError):
            c.advance(4.0)

    def test_released_job_fully_compacted_disappears(self):
        c = make_cluster(1)
        c.occupy("a", [(0, 0.0, 1.0)])
        c.advance(1.0)
        # All of a's intervals were compacted; it is no longer placed.
        with pytest.raises(ConfigurationError):
            c.release("a")

    def test_empty_cluster_queries(self):
        c = make_cluster()
        assert c.live_intervals() == 0
        assert c.busy_time() == 0.0
        assert c.horizon() == 0.0
        assert c.utilization() == 0.0
