"""Fast-Fourier-transform task graph (the genre's second application DAG).

The published FFT graph has two parts for an input of ``p = 2^m``
points:

1. a binary tree of *recursive-call* tasks of depth ``m`` (``2p - 1``
   tasks): the root splits the input, every node feeds its two halves,
2. ``m`` layers of ``p`` *butterfly* tasks; a butterfly task ``(s, i)``
   at stage ``s`` consumes the stage-``s-1`` outputs of positions ``i``
   and ``i XOR 2^(s-1)`` (the leaves of the call tree act as stage 0).

Total tasks: ``(2p - 1) + p·m``.  All tasks cost ``cost_scale``
(butterflies are constant work) and every edge carries ``data_scale``
units, matching the uniform-cost convention of the published graph.
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError


def fft_dag(
    points: int,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    name: str | None = None,
) -> TaskDAG:
    """Build the FFT DAG for ``points`` input points (a power of two)."""
    p = points
    if p < 2 or (p & (p - 1)) != 0:
        raise ConfigurationError(f"points must be a power of two >= 2, got {p}")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")
    m = p.bit_length() - 1

    dag = TaskDAG(name or f"fft-p{p}")

    # Part 1: recursive-call tree, depth 0 (root) .. m (leaves).
    for d in range(m + 1):
        for i in range(1 << d):
            dag.add_task(
                Task(id=("call", d, i), cost=cost_scale, name=f"c{d},{i}",
                     attrs={"kind": "call", "depth": d})
            )
    for d in range(m):
        for i in range(1 << d):
            dag.add_edge(("call", d, i), ("call", d + 1, 2 * i), data=data_scale)
            dag.add_edge(("call", d, i), ("call", d + 1, 2 * i + 1), data=data_scale)

    # Part 2: butterfly stages 1 .. m over p positions.
    for s in range(1, m + 1):
        for i in range(p):
            dag.add_task(
                Task(id=("bfly", s, i), cost=cost_scale, name=f"b{s},{i}",
                     attrs={"kind": "butterfly", "stage": s})
            )
    for i in range(p):
        partner = i ^ 1
        dag.add_edge(("call", m, i), ("bfly", 1, i), data=data_scale)
        dag.add_edge(("call", m, partner), ("bfly", 1, i), data=data_scale)
    for s in range(2, m + 1):
        stride = 1 << (s - 1)
        for i in range(p):
            dag.add_edge(("bfly", s - 1, i), ("bfly", s, i), data=data_scale)
            dag.add_edge(("bfly", s - 1, i ^ stride), ("bfly", s, i), data=data_scale)
    return dag
