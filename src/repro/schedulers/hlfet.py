"""HLFET — Highest Level First with Estimated Times (Adam et al., 1974).

The oldest list-scheduling baseline in the comparison: tasks are
prioritised by decreasing static level (no communication in the rank)
and placed on the processor that allows the earliest start, without
idle-gap insertion.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import ListScheduler, Placement, est_placement
from repro.schedulers.ranking import machine_static_levels
from repro.types import TaskId


class HLFET(ListScheduler):
    """Highest Level First with Estimated Times."""

    insertion = False
    name = "HLFET"
    compiled_policy = "est"

    def priority_order(self, instance: Instance) -> list[TaskId]:
        sl = machine_static_levels(instance, agg="mean")
        pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
        # Static level strictly decreases along edges with positive
        # weights; the positional tie-break covers zero-cost chains.
        return sorted(instance.dag.tasks(), key=lambda t: (-sl[t], pos[t]))

    def place(self, schedule: Schedule, instance: Instance, task: TaskId) -> Placement:
        return est_placement(schedule, instance, task, insertion=False)
