"""Built-in service metrics: counters, gauges and latency percentiles.

Everything is process-local and loop-thread-only (no locks), updated by
the engine and the server, and exposed two ways:

* :meth:`ServiceMetrics.snapshot` — a frozen :class:`ServiceStats`
  dataclass, the programmatic API used by tests and the in-process
  client;
* :meth:`ServiceMetrics.render` — a Prometheus-style text exposition
  served under ``GET /metrics``.

Latency percentiles come from a sliding reservoir of the most recent
completions (default 2048), which bounds memory while tracking the
distribution the operator actually cares about: *recent* tail latency.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import asdict, dataclass


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of raw samples.

    Nearest-rank is defined with a *ceiling*: the result is the smallest
    sample such that at least ``q`` percent of the data is <= to it,
    i.e. ``ordered[ceil(q/100 * n)]`` (1-based).  Banker's ``round()``
    here would under-report by one rank whenever the fractional rank
    falls below .5 (e.g. p95 of 99 samples is rank 95, not 94).

    Returns 0.0 on an empty sample set — a metrics endpoint should
    render before the first request, not raise.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of the service counters."""

    requests: int = 0
    completed: int = 0
    errors: int = 0
    rejected: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_size: int = 0
    cache_evictions: int = 0
    coalesced: int = 0
    retries: int = 0
    respawns: int = 0
    batches: int = 0
    batched_jobs: int = 0
    lowering_hits: int = 0
    lowering_misses: int = 0
    compiled_schedules: int = 0
    compiled_fallbacks: int = 0
    queue_depth: int = 0
    inflight: int = 0
    workers: int = 0
    uptime_s: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over all lookups (0.0 before any lookup)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class ServiceMetrics:
    """Mutable counter bundle behind :class:`ServiceStats` snapshots."""

    def __init__(self, reservoir_size: int = 2048) -> None:
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.timeouts = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.retries = 0
        self.respawns = 0
        self.batches = 0
        self.batched_jobs = 0
        self.lowering_hits = 0
        self.lowering_misses = 0
        self.compiled_schedules = 0
        self.compiled_fallbacks = 0
        self._latencies_ms: deque[float] = deque(maxlen=reservoir_size)
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def request(self) -> None:
        self.requests += 1

    def complete(self, latency_ms: float) -> None:
        self.completed += 1
        self._latencies_ms.append(latency_ms)

    def error(self) -> None:
        self.errors += 1

    def reject(self) -> None:
        self.rejected += 1

    def timeout(self) -> None:
        self.timeouts += 1

    def cache_hit(self) -> None:
        self.cache_hits += 1

    def cache_miss(self) -> None:
        self.cache_misses += 1

    def coalesce(self) -> None:
        self.coalesced += 1

    def retry(self) -> None:
        """One transparent re-execution of an in-flight job (pool heal)."""
        self.retries += 1

    def respawn(self) -> None:
        """One successful worker-pool respawn."""
        self.respawns += 1

    def batch(self, size: int) -> None:
        self.batches += 1
        self.batched_jobs += size

    def worker_stats(self, deltas: dict) -> None:
        """Fold one batched worker call's counter deltas into the totals.

        Workers are separate processes, so their lowering-memo and
        compiled-executor counters can't be read directly; each batched
        cold call ships its deltas back with the results and the engine
        accumulates them here for ``/metrics``.
        """
        self.lowering_hits += int(deltas.get("lowering_hits", 0))
        self.lowering_misses += int(deltas.get("lowering_misses", 0))
        self.compiled_schedules += int(deltas.get("compiled_schedules", 0))
        self.compiled_fallbacks += int(deltas.get("compiled_fallbacks", 0))

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(
        self,
        queue_depth: int = 0,
        inflight: int = 0,
        workers: int = 0,
        cache_size: int = 0,
        cache_evictions: int = 0,
    ) -> ServiceStats:
        lat = list(self._latencies_ms)
        return ServiceStats(
            requests=self.requests,
            completed=self.completed,
            errors=self.errors,
            rejected=self.rejected,
            timeouts=self.timeouts,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_size=cache_size,
            cache_evictions=cache_evictions,
            coalesced=self.coalesced,
            retries=self.retries,
            respawns=self.respawns,
            batches=self.batches,
            batched_jobs=self.batched_jobs,
            lowering_hits=self.lowering_hits,
            lowering_misses=self.lowering_misses,
            compiled_schedules=self.compiled_schedules,
            compiled_fallbacks=self.compiled_fallbacks,
            queue_depth=queue_depth,
            inflight=inflight,
            workers=workers,
            uptime_s=time.monotonic() - self._started,
            p50_ms=percentile(lat, 50),
            p95_ms=percentile(lat, 95),
            p99_ms=percentile(lat, 99),
        )

    def render(self, extra: str = "", **gauges) -> str:
        """Prometheus-style text form of :meth:`snapshot`.

        Counter names carry the conventional ``_total`` suffix; gauges
        and summaries keep their snapshot names.  ``extra`` is appended
        verbatim — the engine uses it to unify its tracer's counters
        (:func:`repro.obs.to_prometheus`) into the same exposition.
        """
        stats = self.snapshot(**gauges)
        counters = {
            "requests",
            "completed",
            "errors",
            "rejected",
            "timeouts",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "coalesced",
            "retries",
            "respawns",
            "batches",
            "batched_jobs",
            "lowering_hits",
            "lowering_misses",
            "compiled_schedules",
            "compiled_fallbacks",
        }
        lines = []
        for name, value in stats.as_dict().items():
            metric = f"repro_service_{name}" + ("_total" if name in counters else "")
            lines.append(f"{metric} {value:g}")
        text = "\n".join(lines) + "\n"
        if extra:
            text += extra if extra.endswith("\n") else extra + "\n"
        return text
