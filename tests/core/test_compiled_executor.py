"""Differential suite for the compiled list-scheduling executor.

``repro.compiled`` gives every production scheduler a flat-array cold
path (``CompiledInstance.schedule_list`` / ``schedule_dls`` /
``schedule_improved``).  The object path through
:class:`~repro.schedule.schedule.Schedule` is the specification; this
suite asserts the compiled executor reproduces it *bit for bit* — full
JSON payloads, not just makespans — across the seeded 56-instance
population, and that the routing layer falls back to the object path
exactly when it must (per-link communication models, tracing, kernels
off).
"""

from __future__ import annotations

import json

import pytest

from repro import compiled
from repro.compiled import compile_instance, use_executor
from repro.dag.generators import random_dag
from repro.instance import Instance
from repro.kernels import use_kernels
from repro.machine.cluster import Machine
from repro.machine.comm import LinkCommunication
from repro.machine.etc import generate_etc
from repro.schedule.validation import validate
from repro.schedulers.base import compiled_for
from repro.schedulers.registry import get_scheduler
from repro.service.protocol import schedule_payload
from tests.population import build_population

#: Every scheduler routed through the compiled executor.
ROUTED = ["HEFT", "HEFT-median", "HEFT-best", "HEFT-worst",
          "CPOP", "HCPT", "PETS", "DLS", "HLFET", "MCP", "IMP"]


@pytest.fixture(scope="module")
def population():
    return build_population()


def _payload(schedule, instance, alg) -> str:
    return json.dumps(schedule_payload(schedule, instance, alg), sort_keys=True)


def test_full_corpus_payloads_bit_identical(population):
    """Compiled vs object path over the whole population, all routed
    schedulers, comparing the complete serialized payload (placements,
    duplicates, makespan — everything a service response carries)."""
    for label, inst in population:
        for alg in ROUTED:
            scheduler = get_scheduler(alg)
            fast = scheduler.schedule(inst)
            with use_executor(False):
                ref = scheduler.schedule(inst)
            assert _payload(fast, inst, alg) == _payload(ref, inst, alg), (label, alg)


def test_three_way_equivalence_on_slice(population):
    """Compiled == object-with-kernels == fully scalar on a corpus
    slice (the scalar leg is slow, hence the slice)."""
    for label, inst in population[::7]:
        for alg in ("HEFT", "CPOP", "DLS", "IMP"):
            scheduler = get_scheduler(alg)
            fast = scheduler.schedule(inst)
            with use_executor(False):
                kernel_ref = scheduler.schedule(inst)
            with use_kernels(False):
                scalar_ref = scheduler.schedule(inst)
            validate(fast, inst)
            assert _payload(fast, inst, alg) == _payload(kernel_ref, inst, alg), (label, alg)
            assert _payload(fast, inst, alg) == _payload(scalar_ref, inst, alg), (label, alg)


def test_duplication_schedules_materialize_duplicates(population):
    """IMP duplication actually fires somewhere on the corpus and the
    compiled path reproduces the duplicate placements exactly."""
    total_dups = 0
    for label, inst in population[::5]:
        fast = get_scheduler("IMP").schedule(inst)
        with use_executor(False):
            ref = get_scheduler("IMP").schedule(inst)
        assert fast.num_duplicates() == ref.num_duplicates(), label
        total_dups += fast.num_duplicates()
    assert total_dups > 0, "duplication never fired; corpus slice too easy"


def _per_link_instance(seed: int = 3) -> Instance:
    from repro.machine.processor import Processor

    dag = random_dag(24, seed=seed)
    ids = [0, 1, 2]
    lat = {p: {q: 0.1 * (1 + (p + q) % 3) for q in ids if q != p} for p in ids}
    bw = {p: {q: 1.0 + ((p * 7 + q) % 5) for q in ids if q != p} for p in ids}
    machine = Machine(
        [Processor(id=i, speed=1.0) for i in ids],
        comm=LinkCommunication(ids, lat, bw),
        name="links",
    )
    etc = generate_etc(dag, machine, heterogeneity=0.6, seed=seed)
    return Instance(dag=dag, machine=machine, etc=etc)


def test_per_link_comm_falls_back_to_object_path():
    """Per-link machines have no pair-independent edge constant: the
    lowering refuses, the routing layer records a fallback, and the
    schedulers still produce kernels-on/off-identical schedules."""
    inst = _per_link_instance()
    assert compile_instance(inst) is None
    before = compiled.schedule_counters()["fallbacks"]
    assert compiled_for(inst) is None
    assert compiled.schedule_counters()["fallbacks"] == before + 1
    for alg in ("HEFT", "CPOP", "DLS", "IMP"):
        fast = get_scheduler(alg).schedule(inst)
        with use_kernels(False):
            ref = get_scheduler(alg).schedule(inst)
        validate(fast, inst)
        assert _payload(fast, inst, alg) == _payload(ref, inst, alg), alg


def test_executor_counters_increment(population):
    _, inst = population[0]
    compiled.reset_schedule_counters()
    get_scheduler("HEFT").schedule(inst)
    get_scheduler("DLS").schedule(inst)
    get_scheduler("IMP").schedule(inst)
    counts = compiled.schedule_counters()
    assert counts["list_schedules"] >= 1
    assert counts["dls_schedules"] >= 1
    assert counts["improved_passes"] >= 1


def test_routing_disabled_under_tracer(population):
    """Traced runs must keep the object path (golden span shapes)."""
    from repro.obs import Tracer, use_tracer

    _, inst = population[0]
    with use_tracer(Tracer(name="t")):
        assert compiled_for(inst) is None


def test_routing_disabled_with_kernels_off(population):
    _, inst = population[0]
    with use_kernels(False):
        assert compiled_for(inst) is None
    with use_executor(False):
        assert compiled_for(inst) is None
    assert compiled_for(inst) is not None


def test_insertion_off_matches_object_path(population):
    """The non-insertion policy (ablation path) replays end-append
    placement identically."""
    from repro.core import ImprovedConfig, ImprovedScheduler

    cfg = ImprovedConfig(insertion=False)
    for label, inst in population[::9]:
        scheduler = ImprovedScheduler(cfg)
        fast = scheduler.schedule(inst)
        with use_executor(False):
            ref = ImprovedScheduler(cfg).schedule(inst)
        assert _payload(fast, inst, "IMP") == _payload(ref, inst, "IMP"), label
