"""Chrome-trace export of simulation results.

Writes a :class:`~repro.sim.executor.SimulationResult` as the Trace
Event Format consumed by ``chrome://tracing`` / Perfetto — each
processor becomes a "thread", each executed copy a complete event, so a
simulated schedule can be inspected with production-grade tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.sim.executor import SimulationResult

PathLike = Union[str, Path]

#: Microseconds per simulated time unit in the exported trace (the
#: format requires integer-ish microsecond timestamps to render well).
_SCALE = 1000.0


def to_chrome_trace(result: SimulationResult, process_name: str = "simulation") -> str:
    """Serialise a simulation result as Trace Event Format JSON."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    procs = sorted({str(c.proc) for c in result.copies})
    tid_of = {p: i + 1 for i, p in enumerate(procs)}
    for p, tid in tid_of.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": f"P{p}"}}
        )
    for copy in sorted(result.copies, key=lambda c: (str(c.proc), c.start)):
        events.append(
            {
                "name": str(copy.task),
                "cat": "duplicate" if copy.planned.duplicate else "task",
                "ph": "X",
                "pid": 1,
                "tid": tid_of[str(copy.proc)],
                "ts": copy.start * _SCALE,
                "dur": max(copy.end - copy.start, 0.0) * _SCALE,
                "args": {
                    "planned_start": copy.planned.start,
                    "planned_end": copy.planned.end,
                },
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}, indent=1)


def save_chrome_trace(result: SimulationResult, path: PathLike, **kwargs) -> None:
    """Write the trace JSON to disk (open with chrome://tracing)."""
    Path(path).write_text(to_chrome_trace(result, **kwargs))
