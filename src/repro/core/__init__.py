"""The paper's (reconstructed) contribution: improved static list
scheduling for heterogeneous *and* homogeneous systems.

Four individually toggleable improvements over HEFT-style scheduling —
rank-variant search, one-level lookahead processor selection, idle-slot
parent duplication, and a makespan-monotone refinement post-pass — are
combined by :class:`ImprovedScheduler`.  See DESIGN.md §2 for the
reconstruction rationale.
"""

from repro.core.config import ImprovedConfig
from repro.core.placement import PlacementEngine
from repro.core.lookahead import LookaheadScheduler
from repro.core.duplication import DuplicationScheduler
from repro.core.refinement import refine_schedule
from repro.core.improved import ImprovedScheduler

__all__ = [
    "ImprovedConfig",
    "PlacementEngine",
    "LookaheadScheduler",
    "DuplicationScheduler",
    "refine_schedule",
    "ImprovedScheduler",
]
