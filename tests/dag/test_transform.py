"""Tests for graph transformations (merge, prune, extract, summarize)."""

import pytest

from repro.dag.generators import random_dag
from repro.dag.graph import TaskDAG
from repro.dag.transform import extract_subgraph, merge_tasks, summarize, zero_small_edges
from repro.exceptions import CycleError, GraphError, UnknownTaskError


@pytest.fixture
def dag(diamond_dag) -> TaskDAG:
    return diamond_dag  # a -> {b, c} -> d


class TestMergeTasks:
    def test_cost_aggregated(self, dag):
        merged = merge_tasks(dag, ["b", "c"], "bc")
        assert merged.cost("bc") == pytest.approx(7.0)
        assert merged.num_tasks == 3

    def test_edges_aggregated(self, dag):
        merged = merge_tasks(dag, ["b", "c"], "bc")
        # a -> bc aggregates the two fan-out edges (3 + 1).
        assert merged.data("a", "bc") == pytest.approx(4.0)
        # bc -> d aggregates the two fan-in edges (2 + 2).
        assert merged.data("bc", "d") == pytest.approx(4.0)

    def test_internal_edges_vanish(self, dag):
        merged = merge_tasks(dag, ["a", "b"], "ab")
        assert merged.num_edges == 3  # ab->c? no: a->c becomes ab->c; b->d becomes ab->d; c->d
        assert merged.has_edge("ab", "c")
        assert merged.has_edge("ab", "d")
        assert merged.has_edge("c", "d")

    def test_acyclic_result_validates(self, dag):
        merged = merge_tasks(dag, ["b", "c"], "bc")
        merged.validate()

    def test_cycle_detected(self):
        # a -> b -> c, a -> c: merging {a, c} would need c -> b -> a.
        d = TaskDAG.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        with pytest.raises(CycleError):
            merge_tasks(d, ["a", "c"], "ac")

    def test_whole_graph_merge(self, dag):
        merged = merge_tasks(dag, ["a", "b", "c", "d"], "all")
        assert merged.num_tasks == 1
        assert merged.num_edges == 0
        assert merged.cost("all") == pytest.approx(11.0)

    def test_unknown_member(self, dag):
        with pytest.raises(UnknownTaskError):
            merge_tasks(dag, ["zzz"], "z")

    def test_empty_group(self, dag):
        with pytest.raises(GraphError):
            merge_tasks(dag, [], "z")

    def test_id_collision(self, dag):
        with pytest.raises(GraphError):
            merge_tasks(dag, ["b", "c"], "a")

    def test_reuse_of_member_id_allowed(self, dag):
        merged = merge_tasks(dag, ["b", "c"], "b")
        assert merged.has_task("b")
        assert merged.cost("b") == pytest.approx(7.0)

    def test_original_untouched(self, dag):
        merge_tasks(dag, ["b", "c"], "bc")
        assert dag.num_tasks == 4


class TestZeroSmallEdges:
    def test_thresholding(self, dag):
        out = zero_small_edges(dag, threshold=2.5)
        assert out.data("a", "c") == 0.0   # was 1
        assert out.data("b", "d") == 0.0   # was 2
        assert out.data("a", "b") == 3.0   # kept

    def test_structure_preserved(self, dag):
        out = zero_small_edges(dag, threshold=100.0)
        assert set(out.edges()) == set(dag.edges())
        assert out.total_data() == 0.0

    def test_negative_threshold(self, dag):
        with pytest.raises(GraphError):
            zero_small_edges(dag, -1.0)


class TestExtractSubgraph:
    def test_induced_edges(self, dag):
        sub = extract_subgraph(dag, ["a", "b", "d"])
        assert sub.num_tasks == 3
        assert sub.has_edge("a", "b") and sub.has_edge("b", "d")
        assert not sub.has_task("c")

    def test_costs_preserved(self, dag):
        sub = extract_subgraph(dag, ["b"])
        assert sub.cost("b") == 4.0

    def test_unknown_rejected(self, dag):
        with pytest.raises(UnknownTaskError):
            extract_subgraph(dag, ["nope"])

    def test_valid_dag(self):
        big = random_dag(50, seed=1)
        keep = list(big.tasks())[:20]
        sub = extract_subgraph(big, keep)
        sub.validate()


class TestSummarize:
    def test_contains_stats(self, dag):
        text = summarize(dag)
        assert "4 tasks" in text
        assert "CCR" in text
        assert "critical path" in text
        assert "entries 1, exits 1" in text

    def test_merge_reduces_depth_statistics(self):
        big = random_dag(60, seed=2)
        text = summarize(big)
        assert "60 tasks" in text
