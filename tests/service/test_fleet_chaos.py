"""Fleet chaos: SIGKILL a backend mid-load, lose nothing.

One manager, three real daemon subprocesses, ``respawn=False`` so the
test exercises the *rehash* path (keys re-home to surviving shards and
re-warm there), not the respawn path — that one is covered in
``test_fleet_manager.py``.  Four concurrent clients hammer a fixed
instance set while one shard is SIGKILLed mid-flight; every request
must complete, every payload must be bit-identical to the locally
computed reference, and the aggregated ``/metrics`` must reflect only
the survivors.
"""

from __future__ import annotations

import asyncio
import json

from repro.bench import workloads as W
from repro.instance_io import instance_to_json
from repro.service import ServiceClient
from repro.service.fleet import FleetManager
from repro.service.protocol import compute_schedule_payload
from repro.utils.encoding import decode_id
from repro.utils.rng import as_generator

NUM_INSTANCES = 10
ROUNDS = 3
CLIENTS = 4


def _instances():
    return [
        W.random_instance(as_generator(seed), num_tasks=8, num_procs=3)
        for seed in range(NUM_INSTANCES)
    ]


def _canonical_result(result) -> str:
    return json.dumps(
        [result.makespan, result.num_duplicates,
         sorted((str(t), str(p), s, e, bool(d))
                for t, p, s, e, d in result.placements)],
        sort_keys=True,
    )


def _canonical_payload(payload: dict) -> str:
    return json.dumps(
        [payload["makespan"], payload["num_duplicates"],
         sorted((str(decode_id(r["task"])), str(decode_id(r["proc"])),
                 r["start"], r["end"], bool(r["duplicate"]))
                for r in payload["placements"])],
        sort_keys=True,
    )


def test_backend_sigkill_mid_load_loses_nothing():
    instances = _instances()
    expected = {
        inst.fingerprint(): _canonical_payload(
            compute_schedule_payload(instance_to_json(inst), "HEFT")
        )
        for inst in instances
    }

    async def scenario():
        manager = FleetManager(shards=3, workers=0, respawn=False,
                               health_interval=0.2, fail_threshold=1)
        await manager.start()
        try:
            # Warm phase: every fingerprint cached at its ring owner.
            warmer = ServiceClient.at(manager.endpoint)
            for inst in instances:
                result = await warmer.schedule(inst, alg="HEFT")
                assert _canonical_result(result) == expected[inst.fingerprint()]
            await warmer.close()

            # The victim owns at least one warm key, so its death forces
            # rehash + re-warm on a surviving owner, not just rerouting.
            victim = manager.router.ring.owner(instances[0].fingerprint())
            kill_gate = asyncio.Event()
            killed = asyncio.Event()

            async def assassin():
                await kill_gate.wait()
                manager.kill_shard(victim)
                killed.set()

            async def hammer(worker: int) -> int:
                client = ServiceClient.at(manager.endpoint,
                                          request_timeout=60.0)
                done = 0
                for round_no in range(ROUNDS):
                    for inst in instances:
                        result = await client.schedule(inst, alg="HEFT")
                        assert _canonical_result(result) == (
                            expected[inst.fingerprint()]
                        ), f"payload drifted for {inst.fingerprint()[:12]}"
                        done += 1
                        if worker == 0 and round_no == 0 and done == 3:
                            kill_gate.set()  # mid-load, requests in flight
                await client.close()
                return done

            counts = await asyncio.gather(
                assassin(), *(hammer(i) for i in range(CLIENTS))
            )
            assert killed.is_set()
            assert counts[1:] == [ROUNDS * NUM_INSTANCES] * CLIENTS

            router = manager.router
            assert not router.shards[victim].alive
            assert router.stats.quarantines >= 1
            # the dead shard's keys were re-homed and answered by survivors
            assert router.ring.owner(instances[0].fingerprint()) != victim

            # aggregated metrics reflect exactly the survivors
            client = ServiceClient.at(manager.endpoint)
            lines = dict(
                line.rsplit(" ", 1)
                for line in (await client.metrics_text()).splitlines() if line
            )
            assert float(lines["repro_fleet_shards"]) == 3
            assert float(lines["repro_fleet_shards_alive"]) == 2
            assert float(lines[f'repro_fleet_shard_up{{shard="{victim}"}}']) == 0
            assert float(lines["repro_fleet_quarantines_total"]) >= 1
            # the exposition sums only live shards' counters, and they
            # carried the whole post-kill load
            assert float(lines["repro_service_requests_total"]) > 0
            await client.close()
        finally:
            await manager.stop()

    asyncio.run(scenario())
