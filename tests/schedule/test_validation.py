"""Tests for schedule feasibility validation."""

import pytest

from repro.exceptions import ValidationError
from repro.instance import homogeneous_instance
from repro.schedule.schedule import Schedule
from repro.schedule.validation import validate, violations


@pytest.fixture
def instance(diamond_dag):
    # 2 identical procs, bandwidth 1, latency 0: comm time == data volume.
    return homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)


def feasible_schedule(instance) -> Schedule:
    s = Schedule(instance.machine)
    s.add("a", 0, 0.0, 2.0)
    s.add("b", 0, 2.0, 4.0)           # local: no comm
    s.add("c", 1, 3.0, 3.0)           # remote: a ends 2 + data 1 = 3
    s.add("d", 0, 8.0, 2.0)           # b local (6), c remote 6+2=8
    return s


class TestFeasible:
    def test_valid_passes(self, instance):
        validate(feasible_schedule(instance), instance)

    def test_violations_empty(self, instance):
        assert violations(feasible_schedule(instance), instance) == []

    def test_exact_boundary_ok(self, instance):
        # d starts exactly when the last message arrives — legal.
        s = feasible_schedule(instance)
        assert s.start_of("d") == 8.0
        validate(s, instance)


class TestViolations:
    def test_missing_task(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        found = violations(s, instance)
        assert any("not scheduled" in v for v in found)

    def test_wrong_duration(self, instance):
        s = feasible_schedule(instance)
        s.remove("d")
        s.add("d", 0, 8.0, 99.0)
        found = violations(s, instance)
        assert any("ETC says" in v for v in found)

    def test_precedence_violation(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("b", 0, 2.0, 4.0)
        s.add("c", 1, 0.0, 3.0)  # starts before a's data can arrive
        s.add("d", 0, 8.0, 2.0)
        found = violations(s, instance)
        assert any("before data" in v for v in found)

    def test_comm_delay_enforced(self, instance):
        # b on another processor must wait for the 3-unit transfer.
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("b", 1, 2.0, 4.0)  # needs start >= 2 + 3 = 5
        s.add("c", 1, 6.0, 3.0)
        s.add("d", 1, 9.0, 2.0)
        found = violations(s, instance)
        assert any("'b'" in v and "before data" in v for v in found)

    def test_validate_raises_with_details(self, instance):
        s = Schedule(instance.machine)
        with pytest.raises(ValidationError) as e:
            validate(s, instance)
        assert len(e.value.violations) == 4  # all four tasks missing


class TestDuplicationAware:
    def test_duplicate_satisfies_child(self, instance):
        # c reads a's data from a local duplicate instead of waiting.
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("a", 1, 0.0, 2.0, duplicate=True)
        s.add("b", 0, 2.0, 4.0)
        s.add("c", 1, 2.0, 3.0)  # legal only thanks to the duplicate
        s.add("d", 0, 8.0, 2.0)
        validate(s, instance)

    def test_duplicate_itself_needs_parents(self, instance):
        # A duplicate of d placed before b's data reaches P1 is a violation
        # (b ends at 6 on P0, transfer 2 -> earliest feasible start is 8).
        s = feasible_schedule(instance)
        s.add("d", 1, 6.0, 2.0, duplicate=True)
        found = violations(s, instance)
        assert any("'d'" in v and "before data" in v for v in found)

    def test_overlap_detected_even_for_duplicates(self, instance):
        s = feasible_schedule(instance)
        # Build a hand-rolled overlapping state by bypassing Timeline:
        # instead just verify Timeline rejects it at add time.
        import pytest as _pytest
        from repro.exceptions import ScheduleError

        with _pytest.raises(ScheduleError):
            s.add("a", 0, 1.0, 1.0, duplicate=True)
