"""Property-based tests for metrics, ETC generation and serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.machine.cluster import Machine
from repro.machine.etc import generate_etc
from repro.schedule.io import schedule_from_json, schedule_to_json
from repro.schedule.metrics import (
    efficiency,
    load_balance,
    pairwise_comparison,
    slr,
    speedup,
    total_idle_time,
)
from repro.schedule.validation import violations
from repro.schedulers.heft import HEFT
from repro.schedulers.registry import get_scheduler

instance_params = st.tuples(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=0.0, max_value=5.0),
    st.integers(min_value=0, max_value=5000),
)


def build(params):
    n, q, ccr, seed = params
    dag = random_dag(n, ccr=ccr, seed=seed)
    return make_instance(dag, num_procs=q, heterogeneity=0.6, seed=seed)


@given(instance_params)
@settings(max_examples=80, deadline=None)
def test_metric_relationships(params):
    inst = build(params)
    s = HEFT().schedule(inst)
    assert slr(s, inst) >= 1.0 - 1e-9
    assert speedup(s, inst) > 0
    assert abs(efficiency(s, inst) - speedup(s, inst) / inst.num_procs) < 1e-12
    assert 0 < load_balance(s) <= 1.0 + 1e-12
    assert total_idle_time(s) >= -1e-9


@given(instance_params)
@settings(max_examples=60, deadline=None)
def test_schedule_json_round_trip(params):
    inst = build(params)
    s = get_scheduler("DUP-HEFT").schedule(inst)
    back = schedule_from_json(schedule_to_json(s), inst.machine)
    assert violations(back, inst) == []
    assert abs(back.makespan - s.makespan) < 1e-9
    assert back.num_duplicates() == s.num_duplicates()


@given(
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=0.0, max_value=1.9, exclude_max=True),
    st.sampled_from(["consistent", "inconsistent", "partially-consistent"]),
    st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=100, deadline=None)
def test_etc_generation_bounds(n, q, beta, consistency, seed):
    dag = random_dag(n, seed=seed)
    machine = Machine.homogeneous(q)
    etc = generate_etc(dag, machine, heterogeneity=beta, consistency=consistency, seed=seed)
    arr = etc.as_array()
    assert arr.shape == (n, q)
    assert (arr >= 0).all() and np.isfinite(arr).all()
    # Range protocol: every entry within [w(1-b/2), w(1+b/2)].
    costs = np.array([dag.cost(t) for t in dag.tasks()])
    lo = costs * (1 - beta / 2) - 1e-9
    hi = costs * (1 + beta / 2) + 1e-9
    assert (arr >= lo[:, None]).all()
    assert (arr <= hi[:, None]).all()
    if consistency == "consistent":
        assert etc.is_consistent()


@given(
    st.lists(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=8),
        min_size=2,
        max_size=4,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)
)
@settings(max_examples=100)
def test_pairwise_comparison_properties(rows):
    results = {f"s{i}": row for i, row in enumerate(rows)}
    pairs = pairwise_comparison(results)
    names = list(results)
    for a in names:
        for b in names:
            if a == b:
                continue
            x, y, z = pairs[(a, b)]
            assert abs(x + y + z - 100.0) < 1e-6
            rx, ry, rz = pairs[(b, a)]
            assert abs(x - rz) < 1e-9
            assert abs(y - ry) < 1e-9
