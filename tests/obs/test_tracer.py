"""Tracer core behaviour: nesting, exceptions, threads, bounds, merging."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    span_tree,
    use_tracer,
    validate_trace,
)


def _by_name(tracer, name):
    return [s for s in tracer.spans() if s["name"] == name]


# ----------------------------------------------------------------------
# nesting and ordering
# ----------------------------------------------------------------------
def test_span_nesting_and_completion_order():
    tracer = Tracer()
    with tracer.span("outer", alg="X"):
        with tracer.span("inner"):
            pass
        with tracer.span("sibling"):
            pass
    spans = tracer.spans()
    # Completion order: children finish before the parent.
    assert [s["name"] for s in spans] == ["inner", "sibling", "outer"]
    outer = spans[2]
    assert outer["parent"] is None
    assert outer["attrs"] == {"alg": "X"}
    assert spans[0]["parent"] == outer["id"]
    assert spans[1]["parent"] == outer["id"]
    assert validate_trace(tracer) == []


def test_deep_nesting_parents_chain():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            with tracer.span("c"):
                pass
    c, b, a = tracer.spans()
    assert c["parent"] == b["id"] and b["parent"] == a["id"] and a["parent"] is None
    tree = span_tree(tracer)
    assert [s["name"] for s in tree[None]] == ["a"]
    assert [s["name"] for s in tree[a["id"]]] == ["b"]


def test_explicit_parent_and_detach_skip_the_stack():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("linked", parent=root.sid):
            # An explicit-parent span is not on the stack: a nested
            # implicit span attaches to "root", not to "linked".
            with tracer.span("implicit"):
                pass
        with tracer.span("free", detach=True):
            pass
    by = {s["name"]: s for s in tracer.spans()}
    assert by["linked"]["parent"] == by["root"]["id"]
    assert by["implicit"]["parent"] == by["root"]["id"]
    assert by["free"]["parent"] is None


def test_set_attaches_attributes():
    tracer = Tracer()
    with tracer.span("work") as span:
        span.set(makespan=12.5, alg="HEFT")
    (entry,) = tracer.spans()
    assert entry["attrs"] == {"makespan": 12.5, "alg": "HEFT"}


def test_record_span_retroactive_interval():
    tracer = Tracer(clock=lambda: 100.0)
    sid = tracer.record_span("queue.wait", 1.0, 3.5, alg="IMP")
    (entry,) = tracer.spans()
    assert entry["id"] == sid
    assert (entry["t0"], entry["t1"]) == (1.0, 3.5)
    assert entry["attrs"] == {"alg": "IMP"}


# ----------------------------------------------------------------------
# exception safety
# ----------------------------------------------------------------------
def test_exception_records_span_with_error_attr():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    (entry,) = tracer.spans()
    assert entry["attrs"]["error"] == "ValueError"
    # The stack was unwound: the next span is a root again.
    with tracer.span("after"):
        pass
    assert _by_name(tracer, "after")[0]["parent"] is None


def test_exception_does_not_override_explicit_error_attr():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom") as span:
            span.set(error="custom")
            raise RuntimeError
    assert tracer.spans()[0]["attrs"]["error"] == "custom"


def test_use_tracer_restores_previous_on_exception():
    tracer = Tracer()
    before = get_tracer()
    with pytest.raises(KeyError):
        with use_tracer(tracer):
            assert get_tracer() is tracer
            raise KeyError
    assert get_tracer() is before


# ----------------------------------------------------------------------
# counters, gauges, bounds
# ----------------------------------------------------------------------
def test_counters_aggregate_and_gauges_overwrite():
    tracer = Tracer()
    tracer.count("decodes")
    tracer.count("decodes", 4)
    tracer.gauge("depth", 3.0)
    tracer.gauge("depth", 1.0)
    assert tracer.counters() == {"decodes": 5}
    assert tracer.gauges() == {"depth": 1.0}


def test_max_spans_bound_drops_oldest():
    tracer = Tracer(max_spans=3)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert [s["name"] for s in tracer.spans()] == ["s2", "s3", "s4"]
    assert tracer.dropped_spans == 2


def test_clear_resets_everything():
    tracer = Tracer(max_spans=1)
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    tracer.count("c")
    tracer.clear()
    assert tracer.spans() == [] and tracer.counters() == {}
    assert tracer.dropped_spans == 0


# ----------------------------------------------------------------------
# thread safety
# ----------------------------------------------------------------------
def test_threads_record_independent_subtrees():
    tracer = Tracer()
    n_threads, n_spans = 8, 25

    def work(k: int) -> None:
        with tracer.span(f"root-{k}"):
            for i in range(n_spans):
                with tracer.span(f"leaf-{k}"):
                    tracer.count("leaves")

    threads = [threading.Thread(target=work, args=(k,)) for k in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    spans = tracer.spans()
    assert len(spans) == n_threads * (n_spans + 1)
    assert tracer.counters() == {"leaves": n_threads * n_spans}
    roots = {s["name"]: s["id"] for s in spans if s["parent"] is None}
    assert len(roots) == n_threads
    # Every leaf nests under its own thread's root, never a foreign one.
    for s in spans:
        if s["name"].startswith("leaf-"):
            k = s["name"].split("-")[1]
            assert s["parent"] == roots[f"root-{k}"]
    assert validate_trace(tracer) == []


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def test_absorb_remaps_ids_and_reparents_roots():
    worker = Tracer(name="worker")
    with worker.span("w.outer"):
        with worker.span("w.inner"):
            pass
    worker.count("decodes", 7)
    worker.gauge("depth", 2.0)

    main = Tracer(name="main")
    with main.span("host") as host:
        pass
    main.count("decodes", 3)
    id_map = main.absorb(worker.export(), parent=host.sid)

    by = {s["name"]: s for s in main.spans()}
    assert by["w.outer"]["parent"] == by["host"]["id"]
    assert by["w.inner"]["parent"] == by["w.outer"]["id"]
    assert by["w.outer"]["id"] == id_map[worker.spans()[1]["id"]]
    assert len({s["id"] for s in main.spans()}) == 3  # ids stay unique
    assert main.counters() == {"decodes": 10}
    assert main.gauges() == {"depth": 2.0}


def test_absorb_without_parent_keeps_foreign_roots_as_roots():
    worker = Tracer()
    with worker.span("w"):
        pass
    main = Tracer()
    main.absorb(worker.export())
    assert main.spans()[0]["parent"] is None


# ----------------------------------------------------------------------
# the no-op default
# ----------------------------------------------------------------------
def test_null_tracer_is_inert_and_shared():
    assert isinstance(NULL_TRACER, NullTracer)
    assert NULL_TRACER.enabled is False
    a = NULL_TRACER.span("x", parent=3, detach=True, alg="HEFT")
    b = NULL_TRACER.span("y")
    assert a is b  # one preallocated handle, no per-span allocation
    with a as span:
        span.set(ignored=True)
    assert span.sid is None
    NULL_TRACER.count("n")
    NULL_TRACER.gauge("g", 1.0)
    assert NULL_TRACER.spans() == [] and NULL_TRACER.counters() == {}
    assert NULL_TRACER.export()["spans"] == []
    assert NULL_TRACER.absorb({"spans": [{"id": 1}]}) == {}


def test_module_default_is_null_and_resettable():
    set_tracer(None)
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    set_tracer(tracer)
    assert get_tracer() is tracer
    set_tracer(None)
    assert get_tracer() is NULL_TRACER


def test_max_spans_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(max_spans=0)
