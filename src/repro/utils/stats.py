"""Descriptive statistics used by metrics and the bench harness.

These are intentionally dependency-light (plain ``math``/``numpy``) and
defined once so every experiment reports averages the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def _as_array(values: Iterable[float]) -> np.ndarray:
    arr = np.asarray(list(values), dtype=float)
    if arr.ndim != 1:
        raise ValueError("expected a 1-D sequence of numbers")
    return arr


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    arr = _as_array(values)
    if arr.size == 0:
        raise ValueError("mean of empty sequence")
    return float(arr.mean())


def median(values: Iterable[float]) -> float:
    """Median; raises on an empty sequence."""
    arr = _as_array(values)
    if arr.size == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(arr))


def stdev(values: Iterable[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for a single value."""
    arr = _as_array(values)
    if arr.size == 0:
        raise ValueError("stdev of empty sequence")
    if arr.size == 1:
        return 0.0
    return float(arr.std(ddof=1))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The canonical aggregate for ratio metrics such as SLR across
    heterogeneous workloads.
    """
    arr = _as_array(values)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def confidence_interval95(values: Iterable[float]) -> tuple[float, float]:
    """Normal-approximation 95% confidence interval of the mean.

    Returns ``(lo, hi)``.  With fewer than two samples the interval
    degenerates to the point estimate.
    """
    arr = _as_array(values)
    if arr.size == 0:
        raise ValueError("confidence interval of empty sequence")
    m = float(arr.mean())
    if arr.size < 2:
        return (m, m)
    half = 1.96 * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return (m - half, m + half)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample used in experiment reports."""

    n: int
    mean: float
    stdev: float
    min: float
    max: float
    median: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} sd={self.stdev:.4g} "
            f"min={self.min:.4g} med={self.median:.4g} max={self.max:.4g}"
        )


def describe(values: Sequence[float]) -> Summary:
    """Summarise a sample into a :class:`Summary`."""
    arr = _as_array(values)
    if arr.size == 0:
        raise ValueError("describe of empty sequence")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        stdev=0.0 if arr.size == 1 else float(arr.std(ddof=1)),
        min=float(arr.min()),
        max=float(arr.max()),
        median=float(np.median(arr)),
    )
