"""Client transport edges: endpoint parsing (including IPv6 literals)
and defensive handling of malformed HTTP responses.

The malformed-response tests run a tiny hand-rolled asyncio server that
speaks deliberately broken HTTP — every defect must surface as a typed
:class:`TransportError` (retryable, mapped like any other ServiceError),
never as a naked ``ValueError`` from ``int()`` or a stray
``IncompleteReadError``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.client import ServiceClient, parse_endpoint
from repro.service.errors import (
    RequestError,
    ServiceError,
    StaleConnectionError,
    TransportError,
)


# ----------------------------------------------------------------------
# endpoint parsing
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("endpoint", "expected"),
    [
        ("localhost", ("localhost", 8787)),
        ("localhost:123", ("localhost", 123)),
        (":9999", ("127.0.0.1", 9999)),
        ("http://127.0.0.1:8787/", ("127.0.0.1", 8787)),
        ("https://scheduler.internal", ("scheduler.internal", 8787)),
        ("  10.0.0.7:80  ", ("10.0.0.7", 80)),
        # Regression: "[::1]:8787".partition(":") used to yield host "[".
        ("[::1]:8787", ("::1", 8787)),
        ("[::1]", ("::1", 8787)),
        ("http://[fe80::1%eth0]:9000/", ("fe80::1%eth0", 9000)),
        ("::1", ("::1", 8787)),
        ("2001:db8::42", ("2001:db8::42", 8787)),
    ],
)
def test_parse_endpoint(endpoint, expected):
    assert parse_endpoint(endpoint) == expected


@pytest.mark.parametrize(
    "endpoint",
    [
        "[::1",            # unclosed bracket
        "[]:8787",         # empty bracketed host
        "[::1]8787",       # junk after bracket
        "host:port",       # non-numeric port
        "host:70000",      # port out of range
        "host:-1",
    ],
)
def test_parse_endpoint_rejects(endpoint):
    with pytest.raises(RequestError):
        parse_endpoint(endpoint)


def test_client_at_uses_parsed_endpoint():
    client = ServiceClient.at("[::1]:9000")
    assert (client.host, client.port) == ("::1", 9000)


# ----------------------------------------------------------------------
# malformed responses
# ----------------------------------------------------------------------
async def _misbehaving_server(raw_response: bytes) -> tuple[asyncio.Server, int]:
    """A server that answers every connection with ``raw_response``."""

    async def handle(reader, writer):
        await reader.readline()  # wait for the request to start
        writer.write(raw_response)
        await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def _fetch_with(raw_response: bytes):
    async def scenario():
        server, port = await _misbehaving_server(raw_response)
        try:
            client = ServiceClient(port=port, request_timeout=5.0)
            await client._request("GET", "/healthz")
        finally:
            server.close()
            await server.wait_closed()

    return scenario


def test_malformed_content_length_is_transport_error():
    # Regression: int("banana") used to escape as a raw ValueError.
    with pytest.raises(TransportError, match="malformed Content-Length"):
        asyncio.run(
            _fetch_with(
                b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n{}"
            )()
        )


def test_connection_closed_mid_response_is_transport_error():
    # Headers promise 9999 bytes, the peer hangs up after two.
    with pytest.raises(TransportError, match="closed mid-response"):
        asyncio.run(
            _fetch_with(
                b"HTTP/1.1 200 OK\r\nContent-Length: 9999\r\n\r\n{}"
            )()
        )


def test_malformed_status_line_is_transport_error():
    with pytest.raises(TransportError, match="malformed status line"):
        asyncio.run(_fetch_with(b"HTTP/1.1\r\n\r\n")())


def test_transport_error_is_a_service_error():
    """Callers that already catch ServiceError keep working."""
    assert issubclass(TransportError, ServiceError)
    assert TransportError("x").status == 502


def test_missing_content_length_defaults_to_empty_body():
    async def scenario():
        server, port = await _misbehaving_server(b"HTTP/1.1 200 OK\r\n\r\n")
        try:
            client = ServiceClient(port=port)
            status, headers, body = await client._request("GET", "/healthz")
            assert status == 200
            assert body == b""
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# stale pooled connections vs real transport failures
# ----------------------------------------------------------------------
_KEEPALIVE_OK = (
    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
    b"Content-Length: 2\r\nConnection: keep-alive\r\n\r\n{}"
)


async def _read_one_request(reader) -> bool:
    """Consume one framed request; False when the client hung up."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return False
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    if length:
        await reader.readexactly(length)
    return True


def test_stale_pooled_connection_is_replaced_without_a_retry():
    """Regression: a kept-alive connection the server closed while it
    sat idle must be replaced silently — not surface as a retryable
    failure.  Before the fix, the EOF consumed a retry budget slot (and
    broke fail-fast clients outright).  The server below advertises
    keep-alive but drops every connection after one response, so every
    pooled reuse is stale; a policy-free (fail-fast) client must still
    complete every request."""

    connections = 0

    async def handle(reader, writer):
        nonlocal connections
        connections += 1
        if await _read_one_request(reader):
            writer.write(_KEEPALIVE_OK)
            await writer.drain()
        writer.close()  # lie about keep-alive: next reuse is stale

    async def scenario():
        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = ServiceClient(port=port)  # no RetryPolicy: fail fast
            for _ in range(3):
                status, _, _ = await client._request(
                    "POST", "/v1/schedule", b"{}", keep_alive=True
                )
                assert status == 200
            await client.close()
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())
    # one fresh connection per request (each pooled one was stale) —
    # and zero errors along the way
    assert connections == 3


def test_partial_response_on_reused_connection_is_a_real_failure():
    """A reused connection that dies *mid-response* is not stale — bytes
    of this exchange were lost, so it must surface as a retryable
    TransportError (consuming retry budget), never be silently redone."""

    async def handle(reader, writer):
        if await _read_one_request(reader):
            writer.write(_KEEPALIVE_OK)
            await writer.drain()
            if await _read_one_request(reader):
                writer.write(b"HTTP/1.1 200 OK\r\nContent-Le")  # then hang up
                await writer.drain()
        writer.close()

    async def scenario():
        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = ServiceClient(port=port)
            status, _, _ = await client._request(
                "POST", "/v1/schedule", b"{}", keep_alive=True
            )
            assert status == 200
            with pytest.raises(TransportError) as excinfo:
                await client._request("POST", "/v1/schedule", b"{}",
                                      keep_alive=True)
            assert not isinstance(excinfo.value, StaleConnectionError)
            await client.close()
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


def test_stale_connection_error_stays_retryable():
    """If it ever escapes the transport layer it must still look like a
    transport failure to retry loops and status mapping."""
    assert issubclass(StaleConnectionError, TransportError)
    assert StaleConnectionError("x").status == 502
