"""Shared machinery of clustering schedulers.

A clustering scheduler runs three phases:

1. **cluster** (subclass-specific): partition the task set into clusters
   under the unbounded-processor assumption;
2. **map**: fold clusters onto the ``q`` real processors — clusters are
   taken in decreasing total-work order and each goes to the currently
   least-loaded processor (the standard load-balancing fold, cf. the
   "cluster merging" step of the literature);
3. **order & place**: tasks are placed in decreasing upward-rank order,
   each on its assigned processor at the earliest insertion slot, which
   yields a feasible schedule and concrete start times.

Phases 2 and 3 are shared here so DSC and linear clustering differ only
in the clustering policy — mirroring how this library isolates the
placement substrate for list schedulers.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, placement_on
from repro.schedulers.ranking import upward_ranks
from repro.types import ProcId, TaskId


class ClusteringScheduler(Scheduler):
    """Template: subclasses implement :meth:`clusters` only."""

    @abstractmethod
    def clusters(self, instance: Instance) -> list[list[TaskId]]:
        """Partition the tasks into disjoint clusters.

        Every task must appear in exactly one cluster; order within a
        cluster is irrelevant (phase 3 re-orders globally by rank).
        """

    def map_clusters(
        self, instance: Instance, clusters: list[list[TaskId]]
    ) -> dict[TaskId, ProcId]:
        """Fold clusters onto processors, largest work first onto the
        least-loaded processor (ties by processor order)."""
        procs = instance.machine.proc_ids()
        load: dict[ProcId, float] = {p: 0.0 for p in procs}
        assignment: dict[TaskId, ProcId] = {}

        def work(cluster: list[TaskId]) -> float:
            return sum(instance.avg_exec_time(t) for t in cluster)

        for cluster in sorted(clusters, key=lambda c: (-work(c), str(c[:1]))):
            target = min(procs, key=lambda p: (load[p], str(p)))
            for t in cluster:
                assignment[t] = target
            load[target] += work(cluster)
        return assignment

    def schedule(self, instance: Instance) -> Schedule:
        clusters = self.clusters(instance)
        seen: set[TaskId] = set()
        for cluster in clusters:
            for t in cluster:
                if t in seen:
                    raise SchedulingError(f"{self.name}: task {t!r} in two clusters")
                seen.add(t)
        missing = set(instance.dag.tasks()) - seen
        if missing:
            raise SchedulingError(
                f"{self.name}: {len(missing)} tasks unclustered, e.g. "
                f"{sorted(map(str, missing))[:3]}"
            )

        assignment = self.map_clusters(instance, clusters)
        ranks = upward_ranks(instance)
        pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
        order = sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))

        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        for task in order:
            placed = placement_on(schedule, instance, task, assignment[task], insertion=True)
            schedule.add(task, placed.proc, placed.start, placed.end - placed.start)
        return schedule
