"""Tests for schedule metrics (SLR, speedup, efficiency, pairwise)."""

import pytest

from repro.exceptions import ScheduleError
from repro.instance import homogeneous_instance
from repro.schedule.metrics import (
    efficiency,
    load_balance,
    makespan,
    num_duplicates,
    pairwise_comparison,
    slr,
    speedup,
    total_idle_time,
)
from repro.schedule.schedule import Schedule
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.instance import Instance
from repro.machine.cluster import Machine
from repro.machine.etc import etc_from_speeds


@pytest.fixture
def instance(diamond_dag):
    return homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)


@pytest.fixture
def schedule(instance) -> Schedule:
    s = Schedule(instance.machine)
    s.add("a", 0, 0.0, 2.0)
    s.add("b", 0, 2.0, 4.0)
    s.add("c", 1, 3.0, 3.0)
    s.add("d", 0, 8.0, 2.0)
    return s


class TestBasicMetrics:
    def test_makespan(self, schedule):
        assert makespan(schedule) == 10.0

    def test_slr(self, schedule, instance):
        # cp_min = a+b+d = 8
        assert slr(schedule, instance) == pytest.approx(10.0 / 8.0)

    def test_speedup(self, schedule, instance):
        # sequential = total work 11
        assert speedup(schedule, instance) == pytest.approx(1.1)

    def test_efficiency(self, schedule, instance):
        assert efficiency(schedule, instance) == pytest.approx(0.55)

    def test_idle_time(self, schedule):
        # P0: busy 8 over [0,10) -> idle 2; P1: busy 3 over [0,6) -> idle 3.
        assert total_idle_time(schedule) == pytest.approx(5.0)

    def test_load_balance(self, schedule):
        # busy: P0=8, P1=3 -> mean 5.5 / max 8
        assert load_balance(schedule) == pytest.approx(5.5 / 8.0)

    def test_load_balance_empty(self, instance):
        assert load_balance(Schedule(instance.machine)) == 1.0

    def test_num_duplicates(self, schedule):
        assert num_duplicates(schedule) == 0
        schedule.add("a", 1, 0.0, 2.0, duplicate=True)
        assert num_duplicates(schedule) == 1


class TestDegenerateCases:
    def test_slr_zero_bound_rejected(self):
        dag = TaskDAG()
        dag.add_task(Task("v", cost=0.0))
        machine = Machine.homogeneous(1)
        inst = Instance(dag, machine, etc_from_speeds(dag, machine))
        s = Schedule(machine)
        s.add("v", 0, 0.0, 0.0)
        with pytest.raises(ScheduleError):
            slr(s, inst)

    def test_speedup_empty_rejected(self, instance):
        with pytest.raises(ScheduleError):
            speedup(Schedule(instance.machine), instance)


class TestSlrProperties:
    def test_slr_at_least_one_for_valid_schedules(self, instance):
        from repro.schedulers import HEFT

        s = HEFT().schedule(instance)
        assert slr(s, instance) >= 1.0 - 1e-9

    def test_speedup_bounded_by_procs(self, instance):
        from repro.schedulers import HEFT

        s = HEFT().schedule(instance)
        assert speedup(s, instance) <= instance.num_procs + 1e-9


class TestPairwise:
    def test_basic_percentages(self):
        res = pairwise_comparison({"A": [1.0, 2.0, 3.0], "B": [2.0, 2.0, 2.0]})
        better, equal, worse = res[("A", "B")]
        assert (better, equal, worse) == (pytest.approx(100 / 3), pytest.approx(100 / 3), pytest.approx(100 / 3))

    def test_symmetry(self):
        res = pairwise_comparison({"A": [1.0, 3.0], "B": [2.0, 2.0]})
        ab = res[("A", "B")]
        ba = res[("B", "A")]
        assert ab[0] == ba[2] and ab[2] == ba[0] and ab[1] == ba[1]

    def test_sums_to_100(self):
        res = pairwise_comparison({"A": [1.0, 2.0, 2.0, 5.0], "B": [2.0, 2.0, 1.0, 4.0]})
        for triple in res.values():
            assert sum(triple) == pytest.approx(100.0)

    def test_near_equal_counts_equal(self):
        res = pairwise_comparison({"A": [1.0], "B": [1.0 + 1e-12]})
        assert res[("A", "B")][1] == 100.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pairwise_comparison({"A": [1.0], "B": [1.0, 2.0]})

    def test_empty_results(self):
        res = pairwise_comparison({"A": [], "B": []})
        assert res[("A", "B")] == (0.0, 0.0, 0.0)
