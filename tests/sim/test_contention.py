"""Tests for the link-contention simulation mode."""

import pytest

from repro.dag.graph import TaskDAG
from repro.dag.generators import random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.schedule import Schedule
from repro.schedulers.heft import HEFT
from repro.sim import execute


class TestContentionSemantics:
    def test_serialises_same_link(self):
        # Two transfers over the same directed link must queue.
        dag = TaskDAG.from_edges(
            [("a", "x", 10.0), ("b", "y", 10.0)],
            costs={"a": 1.0, "b": 1.0, "x": 1.0, "y": 1.0},
        )
        inst = homogeneous_instance(dag, num_procs=2, bandwidth=1.0)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 1.0)
        s.add("b", 0, 1.0, 1.0)
        s.add("x", 1, 11.0, 1.0)   # a ends 1 + 10 transfer
        s.add("y", 1, 12.0, 1.0)   # b ends 2 + 10 transfer
        free = execute(s, inst, link_contention=False)
        busy = execute(s, inst, link_contention=True)
        # Contention-free: y's data lands at 12; with contention the
        # 0->1 link is busy until 11, so b's transfer lands at 21.
        assert free.makespan == pytest.approx(13.0)
        y = next(c for c in busy.copies if c.task == "y")
        assert y.start == pytest.approx(21.0)

    def test_distinct_links_parallel(self):
        # Transfers to different destinations do not queue on each other.
        dag = TaskDAG.from_edges(
            [("a", "x", 10.0), ("a", "y", 10.0)],
            costs={"a": 1.0, "x": 1.0, "y": 1.0},
        )
        inst = homogeneous_instance(dag, num_procs=3, bandwidth=1.0)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 1.0)
        s.add("x", 1, 11.0, 1.0)
        s.add("y", 2, 11.0, 1.0)
        busy = execute(s, inst, link_contention=True)
        assert busy.makespan == pytest.approx(12.0)

    def test_local_transfers_never_queue(self):
        dag = TaskDAG.from_edges([("a", "b", 10.0)], costs={"a": 1.0, "b": 1.0})
        inst = homogeneous_instance(dag, num_procs=2, bandwidth=1.0)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 1.0)
        s.add("b", 0, 1.0, 1.0)
        busy = execute(s, inst, link_contention=True)
        assert busy.makespan == pytest.approx(2.0)

    @pytest.mark.parametrize("seed", range(3))
    def test_contention_never_faster(self, seed):
        dag = random_dag(40, ccr=3.0, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = HEFT().schedule(inst)
        free = execute(s, inst, link_contention=False)
        busy = execute(s, inst, link_contention=True)
        assert busy.makespan >= free.makespan - 1e-9

    def test_low_ccr_nearly_exact(self):
        dag = random_dag(40, ccr=0.01, seed=5)
        inst = make_instance(dag, num_procs=4, seed=5)
        s = HEFT().schedule(inst)
        busy = execute(s, inst, link_contention=True)
        assert busy.makespan <= s.makespan * 1.05

    def test_all_tasks_still_complete(self):
        dag = random_dag(50, ccr=8.0, seed=6)
        inst = make_instance(dag, num_procs=4, seed=6)
        s = HEFT().schedule(inst)
        busy = execute(s, inst, link_contention=True)
        assert len(busy.copies) == 50
