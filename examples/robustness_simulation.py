#!/usr/bin/env python3
"""Executing static schedules under runtime uncertainty with the
discrete-event simulator.

A static scheduler plans against ETC *estimates*.  This example builds
schedules with three algorithms, then replays each schedule while task
durations deviate (lognormal multiplicative noise and per-processor
drift), measuring how much each plan degrades.

Run:  python examples/robustness_simulation.py
"""

import numpy as np

from repro import make_instance, validate
from repro.dag.generators import random_dag
from repro.schedulers import get_scheduler
from repro.sim import MultiplicativeNoise, NoNoise, PerProcessorDrift, execute
from repro.utils.tables import format_series

ALGORITHMS = ["IMP", "HEFT", "CPOP"]
CVS = [0.0, 0.1, 0.3, 0.6]
INSTANCES = 10

instances = []
for seed in range(INSTANCES):
    dag = random_dag(80, ccr=1.0, seed=seed)
    instances.append(make_instance(dag, num_procs=6, heterogeneity=0.5, seed=seed))

schedules = {}
for a in ALGORITHMS:
    schedules[a] = []
    for instance in instances:
        schedule = get_scheduler(a).schedule(instance)
        validate(schedule, instance)
        # Sanity: the no-noise simulation reproduces the plan exactly.
        assert abs(execute(schedule, instance, NoNoise()).makespan - schedule.makespan) < 1e-6
        schedules[a].append(schedule)

series: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
for cv in CVS:
    for a in ALGORITHMS:
        degradations = []
        for k, (instance, schedule) in enumerate(zip(instances, schedules[a])):
            noise = MultiplicativeNoise(cv, seed=10_000 + 100 * k + int(cv * 10))
            simulated = execute(schedule, instance, noise).makespan
            degradations.append(simulated / schedule.makespan)
        series[a].append(float(np.mean(degradations)))

print(format_series(
    "cv",
    CVS,
    series,
    title="simulated / planned makespan vs execution-time noise (1.0 = plan held)",
))

# Systematic bias: one machine is 30% slower than the ETC promised.
print("\nper-processor drift (30%):")
for a in ALGORITHMS:
    ratios = []
    for k, (instance, schedule) in enumerate(zip(instances, schedules[a])):
        drift = PerProcessorDrift(0.3, seed=777 + k)
        ratios.append(execute(schedule, instance, drift).makespan / schedule.makespan)
    print(f"  {a:5} mean degradation {float(np.mean(ratios)):.3f}x "
          f"(worst {float(np.max(ratios)):.3f}x)")
