"""Fault-tolerant (k-backup) scheduling and deadline schedulability.

FEST-style active replication on top of any base scheduler: every task
receives ``k + 1`` copies on distinct processors, placed append-only in
a topological order that follows the base scheduler's decisions.  All
copies always run (active replication — no failure detector in the
loop), so killing any ``<= k`` processors leaves at least one live copy
of every task, and because each processor's planned sequence agrees
with the topological placement order, the fault-time wait-for graph is
acyclic: every copy on a surviving processor completes.  Resilience is
pay-for-what-you-use: ``k = 0`` returns the base scheduler's schedule
object untouched.

The module also owns the *analysis* side of the contract:

* :func:`predict_degraded` — an independent heap-based replay of a
  schedule under a fail-stop fault plan.  It re-derives the degraded
  timeline from first principles (head-of-line processor queues +
  message arrivals) with the exact float operations of
  :func:`repro.sim.executor.execute`, so predicted and realised times
  agree bit-for-bit — asserted by the kill-k differential suite.
* :func:`schedulability_report` — worst-case analysis over every kill
  set of size ``k``.  Killing earlier and killing more is monotonically
  worse (fewer completed copies can only delay or starve consumers), so
  enumerating size-``k`` kill sets at time 0 covers all kill sets of
  size ``<= k`` at any time.
* :func:`schedulability_doc` — the structured planned-schedule verdict
  (met/missed, slack per task) the service attaches to results of
  deadline-annotated instances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import combinations
from typing import Mapping, Sequence

from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.obs import get_tracer
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler, eft_placement, topological_by_priority
from repro.types import ProcId, TaskId


class ResilientScheduler(Scheduler):
    """Wrap a base scheduler with k-backup active replication.

    For ``k >= 1`` the schedule is rebuilt from scratch: tasks are taken
    in a topological order that follows the base schedule's start times
    (so the base scheduler's priority decisions survive), and each task
    receives a primary plus ``k`` backups on pairwise-distinct
    processors, every copy placed by the *non-insertion* EFT rule (ties
    broken by processor order, as everywhere else).

    Append-only placement is load-bearing, not a simplification.  The
    simulator executes each processor's copies head-of-line in planned
    start order; a copy slotted into an idle gap *before* copies of
    topologically-earlier tasks can deadlock under faults — the
    surviving copy of a parent ends up queued behind a consumer that is
    waiting for that very parent.  Placing all copies of task ``i``
    before any copy of task ``i + 1``, append-only, makes every
    processor's sequence consistent with one global topological
    placement order, so the worst-case wait-for graph (any kill set,
    any kill times) is acyclic: every copy on a live processor runs,
    and with at most ``k`` dead processors every task — which owns
    ``k + 1`` copies on distinct processors — still completes.

    Placement goes through the shared ``ready_time``/``find_slot``
    primitives, so copies respect duplication-aware precedence and the
    result passes :func:`repro.schedule.validation.validate`.
    """

    def __init__(self, base: Scheduler | str, k: int = 1, strict: bool = False) -> None:
        if isinstance(base, str):
            from repro.schedulers.registry import get_scheduler  # lazy: avoids import cycle

            base = get_scheduler(base)
        if k < 0:
            raise SchedulingError(f"backup count k must be >= 0, got {k}")
        self.base = base
        self.k = k
        self.strict = strict
        self.name = f"FT-{base.name}-k{k}"

    def effective_k(self, instance: Instance) -> int:
        """Replication degree actually applied to ``instance``.

        ``k + 1`` disjoint copies need ``k + 1`` processors; no schedule
        can survive losing *every* processor, so on smaller machines the
        degree is capped at ``num_procs - 1`` (``strict=True`` raises
        instead — for callers that treat an unsatisfiable tolerance
        request as an error rather than a best-effort target).
        """
        if instance.num_procs < self.k + 1:
            if self.strict:
                raise SchedulingError(
                    f"{self.name}: {self.k + 1} disjoint copies need at least "
                    f"{self.k + 1} processors, machine has {instance.num_procs}"
                )
            return max(0, instance.num_procs - 1)
        return self.k

    def schedule(self, instance: Instance) -> Schedule:
        base = self.base.schedule(instance)
        k = self.effective_k(instance)
        if k == 0:
            # Bit-identical to the base scheduler: same object, same
            # floats, same fingerprintable payload.
            return base
        tracer = get_tracer()
        all_procs = instance.machine.proc_ids()
        # Follow the base scheduler's realised start order, repaired to a
        # valid topological order (start times can tie across an edge on
        # zero-cost chains).
        order = topological_by_priority(instance.dag, key=base.start_of)
        out = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        with tracer.span("sched.backup", alg=self.name, k=k):
            for task in order:
                hosting: set[ProcId] = set()
                for _ in range(k + 1):
                    candidates = [p for p in all_procs if p not in hosting]
                    placed = eft_placement(
                        out, instance, task, insertion=False, procs=candidates
                    )
                    out.add(
                        task, placed.proc, placed.start, placed.end - placed.start,
                        duplicate=bool(hosting),
                    )
                    hosting.add(placed.proc)
        return out


# ----------------------------------------------------------------------
# degraded-timeline prediction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DegradedPrediction:
    """Predicted outcome of running a schedule under a fault plan."""

    makespan: float
    task_ends: dict[TaskId, float]
    completed_copies: int
    aborted_copies: int
    unstarted_copies: int
    faults: dict[ProcId, float] = field(default_factory=dict)

    def completed(self, task: TaskId) -> bool:
        return task in self.task_ends

    def all_completed(self, instance: Instance) -> bool:
        return all(t in self.task_ends for t in instance.dag.tasks())

    def meets_deadline(self, instance: Instance, deadline: float) -> bool:
        """Every task completes no later than ``deadline``."""
        return self.all_completed(instance) and all(
            end <= deadline for end in self.task_ends.values()
        )


def predict_degraded(
    schedule: Schedule,
    instance: Instance,
    faults: Mapping[ProcId, float] | None = None,
) -> DegradedPrediction:
    """Replay ``schedule`` under fail-stop ``faults`` analytically.

    An independent heap-based implementation of the simulator's
    semantics (planned per-processor sequences, head-of-line starts at
    ``max(now, proc_free)``, a consumer waits for *some* copy of each
    parent to arrive locally) under nominal durations and contention-free
    links.  The float sequence matches
    :func:`repro.sim.executor.execute` operation for operation, so the
    returned times equal the realised times bit-for-bit; the kill-k
    differential suite holds the two implementations against each other.
    """
    kill_at = {p: float(t) for p, t in (faults or {}).items()}
    dag = instance.dag
    sequences = {p: schedule.proc_entries(p) for p in schedule.machine.proc_ids()}
    key = lambda c: (c.task, c.proc, c.start)  # noqa: E731 - copy identity

    waiting: dict[tuple, set[TaskId]] = {}
    total_copies = 0
    for seq in sequences.values():
        for copy in seq:
            waiting[key(copy)] = set(dag.predecessors(copy.task))
            total_copies += 1
    queue_index = {p: 0 for p in sequences}
    proc_free_at = {p: 0.0 for p in sequences}
    started: set[tuple] = set()
    ends: dict[tuple, float] = {}
    aborted = 0

    heap: list[tuple] = []
    counter = 0

    def push(time: float, kind: str, payload) -> None:
        nonlocal counter
        heapq.heappush(heap, (time, counter, kind, payload))
        counter += 1

    def try_start(proc: ProcId, now: float) -> None:
        idx = queue_index[proc]
        seq = sequences[proc]
        if idx >= len(seq):
            return
        copy = seq[idx]
        k = key(copy)
        if k in started or waiting[k]:
            return
        start = max(now, proc_free_at[proc])
        kill = kill_at.get(proc)
        if kill is not None and start >= kill:
            return  # head-of-line: nothing behind it runs either
        started.add(k)
        queue_index[proc] += 1
        duration = copy.end - copy.start
        proc_free_at[proc] = start + duration
        push(start + duration, "finish", (copy, start))

    for p in sequences:
        try_start(p, 0.0)
    while heap:
        now, _, kind, payload = heapq.heappop(heap)
        if kind == "finish":
            copy, _start = payload
            kill = kill_at.get(copy.proc)
            if kill is not None and now > kill:
                aborted += 1
            else:
                ends[key(copy)] = now
                for child in dag.successors(copy.task):
                    dests = {c.proc for c in schedule.copies(child)}
                    for dest in sorted(dests, key=lambda p: (str(type(p)), str(p))):
                        delay = instance.comm_time(copy.task, child, copy.proc, dest)
                        push(now + delay, "arrive", (copy.task, child, dest))
            try_start(copy.proc, now)
        else:
            parent, child, dest = payload
            for child_copy in schedule.copies(child):
                if child_copy.proc == dest:
                    waiting[key(child_copy)].discard(parent)
            try_start(dest, now)

    task_ends: dict[TaskId, float] = {}
    for (task, _proc, _start), end in ends.items():
        prev = task_ends.get(task)
        if prev is None or end < prev:
            task_ends[task] = end
    return DegradedPrediction(
        makespan=max(ends.values(), default=0.0),
        task_ends=task_ends,
        completed_copies=len(ends),
        aborted_copies=aborted,
        unstarted_copies=total_copies - len(started),
        faults=kill_at,
    )


# ----------------------------------------------------------------------
# worst-case schedulability analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulabilityReport:
    """Worst-case verdict of a schedule over all size-k kill sets."""

    k: int
    deadline: float | None
    schedulable: bool
    fault_free_makespan: float
    worst_makespan: float
    worst_task_ends: dict[TaskId, float]
    witness: tuple[ProcId, ...] | None

    def slack(self, task: TaskId) -> float:
        """Worst-case slack of one task (negative = deadline miss;
        ``-inf`` when some kill set starves the task entirely)."""
        if self.deadline is None:
            raise SchedulingError("instance has no deadline: slack is undefined")
        return self.deadline - self.worst_task_ends[task]


def schedulability_report(
    schedule: Schedule,
    instance: Instance,
    k: int,
    procs: Sequence[ProcId] | None = None,
) -> SchedulabilityReport:
    """Analyse ``schedule`` against every kill set of ``k`` processors.

    Fail-stop faults are monotone: killing a processor earlier, or
    killing more processors, removes completed copies and can only
    delay or starve downstream tasks.  The worst case over all kill
    sets of size ``<= k`` at any time is therefore attained by some
    size-``k`` set killed at time 0 — the finite family enumerated
    here.  ``schedulable`` means every such kill set leaves all tasks
    completed and (when the instance carries a deadline) all of them
    finished by it; ``witness`` is the first violating kill set in
    processor order, which the property suite replays through the
    simulator to confirm the miss is real.
    """
    if k < 0:
        raise SchedulingError(f"kill-set size k must be >= 0, got {k}")
    pool = list(procs) if procs is not None else instance.machine.proc_ids()
    if k > len(pool):
        raise SchedulingError(f"cannot kill {k} of {len(pool)} processors")
    deadline = instance.deadline
    baseline = predict_degraded(schedule, instance)
    worst_ends = dict(baseline.task_ends)
    worst_makespan = baseline.makespan
    schedulable = True
    witness: tuple[ProcId, ...] | None = None

    def violates(pred: DegradedPrediction) -> bool:
        if not pred.all_completed(instance):
            return True
        return deadline is not None and any(
            end > deadline for end in pred.task_ends.values()
        )

    if violates(baseline):
        schedulable = False
        witness = ()
    kill_sets = combinations(pool, k) if k > 0 else iter(())
    for kill_set in kill_sets:
        pred = predict_degraded(schedule, instance, {p: 0.0 for p in kill_set})
        worst_makespan = max(worst_makespan, pred.makespan)
        for t in instance.dag.tasks():
            end = pred.task_ends.get(t, float("inf"))
            if end > worst_ends.get(t, float("-inf")):
                worst_ends[t] = end
        if schedulable and violates(pred):
            schedulable = False
            witness = tuple(kill_set)
    return SchedulabilityReport(
        k=k,
        deadline=deadline,
        schedulable=schedulable,
        fault_free_makespan=baseline.makespan,
        worst_makespan=worst_makespan,
        worst_task_ends=worst_ends,
        witness=witness,
    )


# ----------------------------------------------------------------------
# planned-schedule verdict (the structured field on results)
# ----------------------------------------------------------------------
def schedulability_doc(schedule: Schedule, instance: Instance) -> dict:
    """Structured deadline verdict of a planned schedule.

    Per task: earliest planned finish over its copies, whether it meets
    the instance deadline, and the slack.  Keys are emitted in
    alphabetical order so the JSON wire path (which preserves insertion
    order) and the binary wire path (which stores the canonical
    sorted-keys JSON encoding) decode to byte-identical payloads.
    """
    deadline = instance.deadline
    if deadline is None:
        raise SchedulingError("instance has no deadline: schedulability is undefined")
    ends = {
        t: min(c.end for c in schedule.copies(t)) for t in instance.dag.tasks()
    }
    tasks = []
    for t in sorted(ends, key=lambda t: (str(type(t)), str(t))):
        end = ends[t]
        tasks.append({
            "end": end,
            "met": bool(end <= deadline),
            "slack": deadline - end,
            "task": str(t),
        })
    finish = max(ends.values(), default=0.0)
    return {
        "deadline": deadline,
        "makespan": finish,
        "schedulable": all(rec["met"] for rec in tasks),
        "slack": deadline - finish,
        "tasks": tasks,
    }
