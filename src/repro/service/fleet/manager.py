"""Fleet lifecycle: spawn, supervise, and re-home N ``repro serve`` daemons.

:class:`FleetManager` owns the processes behind a
:class:`~repro.service.fleet.router.FleetRouter`.  It launches each
shard as a real ``repro serve`` daemon on an ephemeral port (``--port
0``) and discovers where the kernel put it by parsing the daemon's
startup line — the one place a child's bound port is authoritative —
then registers the shard on the router's ring.

Two properties make supervision safe and cheap:

* **Stable names, moving addresses.**  The ring hashes shard *names*
  (``shard-0`` … ``shard-N``), never addresses.  A respawned shard
  comes back on a new port but keeps its name, so its keyspace never
  moves and no sibling's cache is disturbed.
* **Per-shard cache segments.**  Each shard gets its own
  ``--cache-dir`` subdirectory.  Because the keyspace is pinned to the
  name, a restarted shard recovers exactly the segment it wrote before
  dying — it comes back *warm* for precisely the keys it owns.

Respawns draw on a sliding-window budget (the same shape as the
engine's pool-heal budget): at most ``max_respawns`` within
``respawn_window`` seconds per shard.  A shard that exhausts its budget
stays quarantined; the ring re-homes its keys to the surviving shards
and the fleet keeps serving.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.errors import ServiceError
from repro.service.fleet.router import FleetRouter

__all__ = ["FleetManager", "FleetSpawnError", "ShardProcess"]

#: The daemon's startup line.  ``--port 0`` means only the child knows
#: its port; this line is the contract for discovering it.
_LISTEN_RE = re.compile(r"listening on http://[^\s:]+:(\d+)\b")

#: Kept lines of each shard's recent output, for crash diagnostics.
_LOG_TAIL = 50


class FleetSpawnError(ServiceError):
    """A backend daemon failed to come up (or never printed its port)."""

    status = 503


@dataclass
class ShardProcess:
    """One supervised backend daemon."""

    name: str
    index: int
    cache_dir: str | None
    process: asyncio.subprocess.Process | None = None
    port: int = 0
    respawns: int = 0
    respawn_times: deque = field(default_factory=deque)
    log_tail: deque = field(default_factory=lambda: deque(maxlen=_LOG_TAIL))
    gave_up: bool = False

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class FleetManager:
    """Spawns N scheduling daemons and keeps a router pointed at them."""

    def __init__(self, shards: int = 2, *, host: str = "127.0.0.1",
                 port: int = 0, workers: int = 1, cache_size: int = 256,
                 queue_depth: int = 64, cache_dir: str | os.PathLike | None = None,
                 vnodes: int = 128, health_interval: float = 0.5,
                 fail_threshold: int = 2, spawn_timeout: float = 30.0,
                 max_respawns: int = 3, respawn_window: float = 30.0,
                 respawn: bool = True, serve_args: tuple[str, ...] = (),
                 python: str = sys.executable, tracer=None) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.num_shards = shards
        self.host = host
        self.workers = workers
        self.cache_size = cache_size
        self.queue_depth = queue_depth
        self.cache_root = Path(cache_dir) if cache_dir is not None else None
        self.spawn_timeout = spawn_timeout
        self.max_respawns = max_respawns
        self.respawn_window = respawn_window
        self.respawn = respawn
        self.serve_args = tuple(serve_args)
        self.python = python
        self.router = FleetRouter(
            host=host, port=port, vnodes=vnodes,
            health_interval=health_interval, fail_threshold=fail_threshold,
            tracer=tracer,
        )
        self._procs: dict[str, ShardProcess] = {}
        self._monitors: list[asyncio.Task] = []
        self._drains: list[asyncio.Task] = []
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        """``host:port`` of the router — what clients connect to."""
        return f"{self.router.host}:{self.router.port}"

    @property
    def shard_processes(self) -> dict[str, ShardProcess]:
        return dict(self._procs)

    async def serve_until_shutdown(self) -> None:
        """Block until someone posts ``/v1/shutdown`` (or the router is
        stopped), then drain the whole fleet."""
        await self.router.wait_shutdown()
        await self.stop()

    async def start(self) -> None:
        """Boot the router, then bring up every shard and ring it."""
        await self.router.start()
        try:
            spawned = await asyncio.gather(
                *(self._boot_shard(i) for i in range(self.num_shards))
            )
        except BaseException:
            await self.stop()
            raise
        for shard in spawned:
            self.router.add_shard(shard.name, self.host, shard.port)
            self._watch(shard)

    async def _boot_shard(self, index: int) -> ShardProcess:
        name = f"shard-{index}"
        cache_dir = None
        if self.cache_root is not None:
            seg = self.cache_root / name
            seg.mkdir(parents=True, exist_ok=True)
            cache_dir = str(seg)
        shard = ShardProcess(name=name, index=index, cache_dir=cache_dir)
        self._procs[name] = shard
        await self._spawn(shard)
        return shard

    async def _spawn(self, shard: ShardProcess) -> None:
        """Launch one daemon and parse its bound port from stdout."""
        argv = [
            self.python, "-m", "repro.cli", "serve",
            "--host", self.host, "--port", "0",
            "--workers", str(self.workers),
            "--cache-size", str(self.cache_size),
            "--queue-depth", str(self.queue_depth),
        ]
        if shard.cache_dir is not None:
            argv += ["--cache-dir", shard.cache_dir]
        argv += list(self.serve_args)
        shard.process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            start_new_session=True,
        )
        try:
            async with asyncio.timeout(self.spawn_timeout):
                shard.port = await self._await_port(shard)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
            tail = "\n".join(shard.log_tail)
            with _suppress_oserror():
                shard.process.kill()
            raise FleetSpawnError(
                f"{shard.name} did not report a bound port within "
                f"{self.spawn_timeout:g}s; last output:\n{tail}"
            ) from exc
        self._drains.append(asyncio.create_task(
            self._drain_output(shard), name=f"fleet-drain-{shard.name}"
        ))

    async def _await_port(self, shard: ShardProcess) -> int:
        assert shard.process is not None and shard.process.stdout is not None
        while True:
            raw = await shard.process.stdout.readline()
            if not raw:
                raise asyncio.IncompleteReadError(partial=b"", expected=None)
            line = raw.decode("utf-8", "replace").rstrip()
            shard.log_tail.append(line)
            match = _LISTEN_RE.search(line)
            if match:
                return int(match.group(1))

    async def _drain_output(self, shard: ShardProcess) -> None:
        """Keep the child's pipe from filling; remember a tail for crashes."""
        proc = shard.process
        if proc is None or proc.stdout is None:
            return
        try:
            while True:
                raw = await proc.stdout.readline()
                if not raw:
                    return
                shard.log_tail.append(raw.decode("utf-8", "replace").rstrip())
        except asyncio.CancelledError:
            pass

    def _watch(self, shard: ShardProcess) -> None:
        self._monitors.append(asyncio.create_task(
            self._monitor(shard), name=f"fleet-monitor-{shard.name}"
        ))

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    async def _monitor(self, shard: ShardProcess) -> None:
        """Wait for a shard to die; quarantine and (maybe) respawn it."""
        while True:
            proc = shard.process
            if proc is None:
                return
            returncode = await proc.wait()
            if self._stopping or self.router.shutdown_requested:
                # A fleet-wide shutdown drains the shards on purpose;
                # their exits are not crashes to respawn from.
                return
            self.router.quarantine(shard.name,
                                   cause=f"exited rc={returncode}")
            if not self.respawn or not self._respawn_budget(shard):
                shard.gave_up = not self.respawn or shard.gave_up
                return
            shard.respawns += 1
            try:
                await self._spawn(shard)
            except FleetSpawnError:
                shard.gave_up = True
                return
            # Same name -> same keyspace -> same cache segment: the
            # replacement recovers its own segment and comes back warm.
            self.router.update_shard(shard.name, self.host, shard.port)
            await self.router.check_health()

    def _respawn_budget(self, shard: ShardProcess) -> bool:
        """Sliding-window budget, same shape as the engine's pool heal."""
        now = time.monotonic()
        window = shard.respawn_times
        while window and now - window[0] > self.respawn_window:
            window.popleft()
        if len(window) >= self.max_respawns:
            shard.gave_up = True
            return False
        window.append(now)
        return True

    def kill_shard(self, name: str, sig: int = signal.SIGKILL) -> int:
        """Hard-kill one shard (chaos testing hook).  Returns its pid."""
        shard = self._procs[name]
        if shard.process is None or shard.process.returncode is not None:
            raise FleetSpawnError(f"{name} is not running")
        pid = shard.process.pid
        os.kill(pid, sig)
        return pid

    async def stop(self) -> None:
        """Drain the fleet: stop supervision, terminate shards, stop router."""
        self._stopping = True
        for task in self._monitors:
            task.cancel()
        for task in self._monitors:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._monitors = []
        procs = [s.process for s in self._procs.values()
                 if s.process is not None and s.process.returncode is None]
        for proc in procs:
            with _suppress_oserror():
                proc.terminate()
        if procs:
            results = await asyncio.gather(
                *(asyncio.wait_for(p.wait(), timeout=10.0) for p in procs),
                return_exceptions=True,
            )
            for proc, result in zip(procs, results):
                if isinstance(result, BaseException):
                    with _suppress_oserror():
                        proc.kill()
                    await proc.wait()
        for task in self._drains:
            task.cancel()
        for task in self._drains:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drains = []
        await self.router.stop()


class _suppress_oserror:
    """``contextlib.suppress(OSError, ProcessLookupError)`` with a name
    that says why: the child may already be gone when we signal it."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (OSError, ProcessLookupError)
        )
