"""Persistent cluster occupancy for the online multi-tenant simulator.

A :class:`ClusterState` tracks, per processor, the busy intervals of
every job placed so far — the "pre-occupied timeline" each arriving job
is scheduled against.  It is deliberately flat (parallel start/end/job
lists per processor, sorted by start) so the compiled core can seed its
scratch timelines from it without any object translation
(:meth:`~repro.compiled.CompiledInstance.schedule_onto`).

Two operations keep steady-state arrivals cheap and bounded:

* :meth:`advance` compacts the *clean prefix*: intervals that finished
  at or before the current simulation time can never interact with a
  future placement (placements are floored at the arrival time), so
  they are dropped from the live lists and folded into aggregate busy
  accounting.  Only the **dirty suffix** — work still running or not
  yet started — is copied into per-arrival scheduling state.
* :meth:`release` pulls a *pending* job (no task started yet) back off
  the timelines, which is how rescheduling policies re-place or preempt
  queued work.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.exceptions import ConfigurationError
from repro.machine.cluster import Machine

#: Float tolerance shared with the timeline layer.
_EPS = 1e-9


class ClusterState:
    """Mutable per-processor occupancy of one shared machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.procs = machine.proc_ids()
        q = len(self.procs)
        self.num_procs = q
        self._starts: list[list[float]] = [[] for _ in range(q)]
        self._ends: list[list[float]] = [[] for _ in range(q)]
        self._jobs: list[list[str]] = [[] for _ in range(q)]
        #: job id -> list of (proc index, start, end) placements
        self._placements: dict[str, list[tuple[int, float, float]]] = {}
        #: busy time of intervals already compacted away
        self._done_busy = 0.0
        #: simulation time the prefix has been compacted up to
        self.frontier = 0.0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def occupy(self, job_id: str, placements: list[tuple[int, float, float]]) -> None:
        """Record one job's placements: ``(proc index, start, end)`` each.

        Intervals are inserted in start-sorted position; the caller (the
        online scheduler) guarantees non-overlap because every start
        came from a gap scan over these same lists.
        """
        if job_id in self._placements:
            raise ConfigurationError(f"job {job_id!r} is already placed")
        for j, start, end in placements:
            if not (0 <= j < self.num_procs):
                raise ConfigurationError(f"processor index {j} out of range")
            if not (end >= start >= 0.0):
                raise ConfigurationError(
                    f"invalid interval [{start}, {end}) for job {job_id!r}"
                )
            starts = self._starts[j]
            i = bisect_left(starts, start)
            starts.insert(i, start)
            self._ends[j].insert(i, end)
            self._jobs[j].insert(i, job_id)
        self._placements[job_id] = list(placements)

    def release(self, job_id: str) -> list[tuple[int, float, float]]:
        """Remove every interval of ``job_id``; returns what was removed.

        Only valid for jobs whose intervals are all still live (the
        policies only pull *pending* jobs, whose intervals all start in
        the future and therefore can never have been compacted).
        """
        placements = self._placements.pop(job_id, None)
        if placements is None:
            raise ConfigurationError(f"job {job_id!r} is not placed")
        for j, start, _end in placements:
            starts = self._starts[j]
            jobs = self._jobs[j]
            i = bisect_left(starts, start)
            while i < len(starts) and not (jobs[i] == job_id and abs(starts[i] - start) <= _EPS):
                i += 1
            if i >= len(starts):
                raise ConfigurationError(
                    f"interval of {job_id!r} at {start} not found (already compacted?)"
                )
            del starts[i]
            del self._ends[j][i]
            del jobs[i]
        return placements

    def advance(self, now: float) -> int:
        """Compact the clean prefix up to ``now``; returns intervals dropped.

        Drops the maximal *leading* run of intervals per processor whose
        end is ``<= now`` — they are strictly in the past, so no future
        placement (all floored at ``now`` or later) can ever probe them.
        Their busy time is folded into the aggregate so utilization
        accounting is exact regardless of when compaction runs.
        """
        if now < self.frontier:
            raise ConfigurationError(
                f"cannot advance to {now} behind frontier {self.frontier}"
            )
        dropped = 0
        for j in range(self.num_procs):
            ends = self._ends[j]
            cut = 0
            while cut < len(ends) and ends[cut] <= now:
                cut += 1
            if cut:
                starts = self._starts[j]
                jobs = self._jobs[j]
                for i in range(cut):
                    self._done_busy += ends[i] - starts[i]
                    plist = self._placements.get(jobs[i])
                    if plist is not None:
                        entry = (j, starts[i], ends[i])
                        if entry in plist:
                            plist.remove(entry)
                            if not plist:
                                del self._placements[jobs[i]]
                del starts[:cut]
                del ends[:cut]
                del jobs[:cut]
                dropped += cut
        self.frontier = now
        return dropped

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def seeded_timelines(self) -> tuple[list[list[float]], list[list[float]]]:
        """The live (dirty-suffix) busy lists, per processor.

        Returned lists are the internal state — callers must copy
        before mutating (``schedule_onto`` does).
        """
        return self._starts, self._ends

    def live_intervals(self) -> int:
        """Number of busy intervals still on the live timelines."""
        return sum(len(s) for s in self._starts)

    def busy_time(self) -> float:
        """Total busy time ever placed (compacted prefix included)."""
        live = 0.0
        for j in range(self.num_procs):
            starts = self._starts[j]
            ends = self._ends[j]
            for i in range(len(starts)):
                live += ends[i] - starts[i]
        return self._done_busy + live

    def horizon(self) -> float:
        """Latest busy end still visible (>= frontier once advanced)."""
        latest = self.frontier
        for ends in self._ends:
            for e in ends:
                if e > latest:
                    latest = e
        return latest

    def utilization(self, horizon: float | None = None) -> float:
        """Busy fraction of ``num_procs * horizon`` (0.0 on empty span)."""
        h = self.horizon() if horizon is None else float(horizon)
        if h <= 0.0:
            return 0.0
        return self.busy_time() / (self.num_procs * h)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterState(procs={self.num_procs}, jobs={len(self._placements)}, "
            f"live={self.live_intervals()}, frontier={self.frontier:g})"
        )
