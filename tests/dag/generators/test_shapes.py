"""Tests for fork-join, trees, series-parallel, layered and workflow
generators."""

import pytest

from repro.dag.analysis import graph_levels
from repro.dag.generators import (
    fork_join_dag,
    in_tree_dag,
    layered_dag,
    mapreduce_dag,
    montage_dag,
    out_tree_dag,
    pipeline_dag,
    series_parallel_dag,
)
from repro.exceptions import ConfigurationError


class TestForkJoin:
    def test_task_count(self):
        dag = fork_join_dag(width=4, stages=2, chain_length=3)
        # per stage: fork + join + width*chain
        assert dag.num_tasks == 2 * (2 + 4 * 3)

    def test_single_entry_exit(self):
        dag = fork_join_dag(width=3, stages=2)
        assert dag.entry_tasks() == [("fork", 0)]
        assert dag.exit_tasks() == [("join", 1)]

    def test_stages_serialise(self):
        dag = fork_join_dag(width=2, stages=3)
        assert dag.has_edge(("join", 0), ("fork", 1))

    def test_jitter_seeded(self):
        a = fork_join_dag(4, jitter=0.5, seed=1)
        b = fork_join_dag(4, jitter=0.5, seed=1)
        assert [a.cost(t) for t in a.tasks()] == [b.cost(t) for t in b.tasks()]

    def test_no_jitter_uniform_costs(self):
        dag = fork_join_dag(4, cost_scale=7.0)
        assert {dag.cost(t) for t in dag.tasks()} == {7.0}

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            fork_join_dag(0)
        with pytest.raises(ConfigurationError):
            fork_join_dag(2, jitter=1.0)


class TestTrees:
    def test_out_tree_count(self):
        assert out_tree_dag(2, 3).num_tasks == 15
        assert out_tree_dag(3, 2).num_tasks == 13

    def test_out_tree_root_entry(self):
        dag = out_tree_dag(2, 3)
        assert dag.entry_tasks() == [(0, 0)]
        assert len(dag.exit_tasks()) == 8

    def test_in_tree_root_exit(self):
        dag = in_tree_dag(2, 3)
        assert dag.exit_tasks() == [(0, 0)]
        assert len(dag.entry_tasks()) == 8

    def test_in_tree_is_out_tree_reversed(self):
        out_t = out_tree_dag(2, 2)
        in_t = in_tree_dag(2, 2)
        assert set(in_t.edges()) == {(v, u) for u, v in out_t.edges()}

    def test_depth_zero(self):
        assert out_tree_dag(3, 0).num_tasks == 1

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            out_tree_dag(0, 2)
        with pytest.raises(ConfigurationError):
            in_tree_dag(2, -1)


class TestSeriesParallel:
    def test_roughly_requested_size(self):
        dag = series_parallel_dag(50, seed=1)
        assert 40 <= dag.num_tasks <= 70

    def test_valid_and_deterministic(self):
        a = series_parallel_dag(30, seed=2)
        b = series_parallel_dag(30, seed=2)
        a.validate()
        assert set(a.edges()) == set(b.edges())

    def test_ccr_exact(self):
        dag = series_parallel_dag(40, ccr=2.5, seed=3)
        assert dag.ccr() == pytest.approx(2.5)

    def test_series_only(self):
        dag = series_parallel_dag(20, parallel_bias=0.0, seed=4)
        # Pure series composition: a chain, every degree <= 1.
        assert all(dag.out_degree(t) <= 1 for t in dag.tasks())

    def test_single_task(self):
        assert series_parallel_dag(1, seed=0).num_tasks == 1

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            series_parallel_dag(0)
        with pytest.raises(ConfigurationError):
            series_parallel_dag(10, parallel_bias=1.5)


class TestLayered:
    def test_shape(self):
        dag = layered_dag(5, 6, seed=1)
        assert dag.num_tasks == 30
        levels = graph_levels(dag)
        assert max(levels.values()) == 4

    def test_entries_only_in_layer_zero(self):
        dag = layered_dag(4, 5, edge_probability=0.1, seed=2)
        for t in dag.entry_tasks():
            assert t < 5  # ids of layer 0

    def test_edges_adjacent_layers_only(self):
        dag = layered_dag(4, 5, seed=3)
        for u, v in dag.edges():
            assert v // 5 - u // 5 == 1

    def test_probability_extremes(self):
        full = layered_dag(3, 4, edge_probability=1.0, seed=4)
        assert full.num_edges == 2 * 16
        sparse = layered_dag(3, 4, edge_probability=0.0, seed=4)
        assert sparse.num_edges == 2 * 4  # mandatory parents only

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            layered_dag(0, 5)
        with pytest.raises(ConfigurationError):
            layered_dag(3, 5, edge_probability=1.5)


class TestMontage:
    def test_structure(self):
        dag = montage_dag(8, seed=0)
        dag.validate()
        # entries are exactly the projections
        assert set(dag.entry_tasks()) == {("project", i) for i in range(8)}
        assert dag.exit_tasks() == ["jpeg"]

    def test_task_count(self):
        imgs = 8
        dag = montage_dag(imgs, seed=0)
        assert dag.num_tasks == imgs + (imgs - 1) + 1 + 1 + imgs + 1 + 1 + 1

    def test_projection_expensive(self):
        dag = montage_dag(6, cost_scale=10.0, seed=0)
        assert dag.cost(("project", 0)) > dag.cost(("difffit", 0))

    def test_rejects_single_image(self):
        with pytest.raises(ConfigurationError):
            montage_dag(1)


class TestMapReduce:
    def test_shuffle_complete_bipartite(self):
        dag = mapreduce_dag(4, 3, seed=0)
        for i in range(4):
            for j in range(3):
                assert dag.has_edge(("map", i), ("reduce", j))

    def test_single_entry_exit(self):
        dag = mapreduce_dag(4, 3, seed=0)
        assert dag.entry_tasks() == ["split"]
        assert dag.exit_tasks() == ["collect"]

    def test_counts(self):
        dag = mapreduce_dag(5, 2, seed=0)
        assert dag.num_tasks == 5 + 2 + 2

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            mapreduce_dag(0, 3)


class TestPipeline:
    def test_uncoupled_chains(self):
        dag = pipeline_dag(3, 4)
        assert dag.num_tasks == 12
        assert dag.num_edges == 3 * 3
        assert len(dag.entry_tasks()) == 3

    def test_coupled_adds_halo(self):
        plain = pipeline_dag(3, 4)
        coupled = pipeline_dag(3, 4, coupled=True)
        assert coupled.num_edges > plain.num_edges
        assert coupled.has_edge((0, 0), (1, 1))

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            pipeline_dag(0, 3)
