"""Tests for JSON-safe id encoding."""

import json

import pytest

from repro.exceptions import ParseError
from repro.utils.encoding import decode_id, encode_id


class TestEncodeDecode:
    @pytest.mark.parametrize("value", ["a", 0, 3.5, True, None])
    def test_primitives_pass_through(self, value):
        assert encode_id(value) == value
        assert decode_id(encode_id(value)) == value

    def test_tuple_tagged(self):
        enc = encode_id(("piv", 0))
        assert enc == {"__tuple__": ["piv", 0]}
        assert decode_id(enc) == ("piv", 0)

    def test_nested_tuples(self):
        value = (("a", 1), ("b", (2, 3)))
        assert decode_id(encode_id(value)) == value

    def test_json_round_trip(self):
        value = ("upd", 2, 5)
        text = json.dumps(encode_id(value))
        assert decode_id(json.loads(text)) == value

    def test_unsupported_type_rejected(self):
        with pytest.raises(ParseError):
            encode_id(object())
        with pytest.raises(ParseError):
            encode_id(frozenset({1}))

    def test_decode_leaves_plain_dicts(self):
        # Only the tagged form is interpreted.
        assert decode_id({"x": 1}) == {"x": 1}
