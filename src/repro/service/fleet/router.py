"""Consistent-hash front door: one endpoint, N scheduling daemons.

:class:`FleetRouter` is the fleet's single client-facing listener.  It
speaks exactly the HTTP/1.1 dialect of
:mod:`repro.service.server` — the JSON *and* binary wire protocols pass
through byte-for-byte unchanged — and proxies every schedule request to
the backend shard that owns the instance's fingerprint on a
:class:`~repro.service.fleet.ring.HashRing`.  Ownership is the whole
design: every fingerprint has exactly one cache owner, so a warm hit is
warm *fleet-wide* — no shard ever recomputes what a sibling already
holds, and the aggregate cache is the sum of the shards' caches.

Routing never decodes an instance:

* binary requests carry the fingerprint in their fixed prefix
  (:func:`repro.service.wire.peek_request_fingerprint` reads it without
  touching the instance blob);
* JSON requests from this library's client carry it in the
  ``X-Repro-Fingerprint`` header;
* anything else (curl, foreign clients) falls back to the SHA-256 of
  the request body — still deterministic, so byte-identical resubmits
  keep one owner and the shard's exact-body fast path answers them.

Failure handling is layered.  Every proxy attempt that dies in
transport (refused connection, reset, mid-response EOF) is retried
transparently on the key's *next* ring owner — safe because scheduling
is pure and content-addressed, and exactly where the key re-homes once
the dead shard leaves the ring.  Repeated failures quarantine the shard
(ring rehash); an active health-check loop probes every registered
shard and re-admits it when it answers again, warm cache and all.
Non-schedule surfaces are fleet-aware: ``/metrics`` and ``/v1/stats``
aggregate over the live shards (sums for counters and gauges, maxima
for latency percentiles), ``/healthz`` reports fleet liveness, and
``/v1/shutdown`` drains every shard.

The router holds no schedule state — only sockets and the ring — so it
stays I/O-bound: per request it parses one header block, one SHA-256 at
worst, a bisect, and two socket round trips over pooled keep-alive
backend connections.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.obs import NullTracer, Tracer, get_tracer
from repro.service import wire
from repro.service.fleet.ring import HashRing
from repro.service.server import MAX_BODY, _REASONS

__all__ = ["FleetRouter", "FleetStats", "Shard"]

#: Headers copied verbatim from the client request to the backend (the
#: ones that change what the backend computes or how it answers).
_FORWARD_HEADERS = (
    ("content-type", "Content-Type"),
    ("accept", "Accept"),
    ("x-repro-deadline", "X-Repro-Deadline"),
    ("x-repro-fingerprint", "X-Repro-Fingerprint"),
)

#: Headers copied verbatim from the backend response to the client.
_RELAY_HEADERS = (
    ("content-type", "Content-Type"),
    ("retry-after", "Retry-After"),
)


@dataclass
class Shard:
    """One registered backend daemon and its routing state."""

    name: str
    host: str
    port: int
    alive: bool = True          #: currently on the ring
    failures: int = 0           #: consecutive proxy/health failures
    proxied: int = 0            #: requests answered by this shard
    quarantines: int = 0        #: times this shard was taken off the ring

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class FleetStats:
    """Router-side counters (shard counters live in the shards)."""

    requests: int = 0           #: schedule requests routed
    proxied: int = 0            #: proxy attempts that returned a response
    retries: int = 0            #: attempts re-routed to a next owner
    quarantines: int = 0        #: shards taken off the ring
    readmissions: int = 0       #: shards health-checked back onto the ring
    no_backend: int = 0         #: requests failed with no live shard
    key_sources: dict = field(default_factory=dict)  #: header/wire/body counts

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "proxied": self.proxied,
            "retries": self.retries,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "no_backend": self.no_backend,
            "key_sources": dict(self.key_sources),
        }


class FleetRouter:
    """Routes one service endpoint across N backend shards."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8800,
                 vnodes: int = 128, fail_threshold: int = 2,
                 health_interval: float = 0.5,
                 probe_timeout: float = 2.0,
                 backend_timeout: float = 300.0,
                 tracer: Tracer | NullTracer | None = None) -> None:
        if fail_threshold < 1:
            raise ValueError(f"fail_threshold must be >= 1, got {fail_threshold}")
        self.host = host
        self._port = port
        self.ring = HashRing(vnodes=vnodes)
        self.stats = FleetStats()
        self.fail_threshold = fail_threshold
        self.health_interval = health_interval
        self.probe_timeout = probe_timeout
        self.backend_timeout = backend_timeout
        self._tracer = tracer
        self._shards: dict[str, Shard] = {}
        # Idle keep-alive connections per shard, reused across requests.
        self._pools: dict[str, list[tuple[asyncio.StreamReader,
                                          asyncio.StreamWriter]]] = {}
        self._server: asyncio.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        self._conns: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Tracer | NullTracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def shards(self) -> dict[str, Shard]:
        """Registered shards by name (live and quarantined)."""
        return dict(self._shards)

    def alive_shards(self) -> list[Shard]:
        return [s for s in self._shards.values() if s.alive]

    def add_shard(self, name: str, host: str, port: int) -> None:
        """Register a backend and put it on the ring."""
        self._shards[name] = Shard(name=name, host=host, port=port)
        self._pools.setdefault(name, [])
        self.ring.add(name)

    def remove_shard(self, name: str) -> None:
        """Deregister a backend entirely (quarantine keeps it registered)."""
        self._shards.pop(name, None)
        self.ring.remove(name)
        self._drain_pool(name)

    def update_shard(self, name: str, host: str, port: int) -> None:
        """Point a registered shard at a new address (post-respawn).

        The ring hashes the shard *name*, not the address, so the
        shard's keyspace — and its on-disk cache segment — survives the
        address change; only the connection pool is dropped.
        """
        shard = self._shards.get(name)
        if shard is None:
            self.add_shard(name, host, port)
            return
        shard.host = host
        shard.port = port
        self._drain_pool(name)

    def quarantine(self, name: str, cause: str = "") -> None:
        """Take a shard off the ring; its keys re-home to ring successors."""
        shard = self._shards.get(name)
        if shard is None or not shard.alive:
            return
        shard.alive = False
        shard.quarantines += 1
        self.stats.quarantines += 1
        self.ring.remove(name)
        self._drain_pool(name)
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("fleet.quarantines")
            with tracer.span("fleet.quarantine", detach=True, shard=name,
                             cause=cause or "proxy-failure"):
                pass

    def readmit(self, name: str) -> None:
        """Put a health-checked shard back on the ring."""
        shard = self._shards.get(name)
        if shard is None or shard.alive:
            return
        shard.alive = True
        shard.failures = 0
        self.stats.readmissions += 1
        self.ring.add(name)
        if self.tracer.enabled:
            self.tracer.count("fleet.readmissions")

    def _drain_pool(self, name: str) -> None:
        for _, writer in self._pools.get(name, []):
            writer.close()
        self._pools[name] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self._port)
        if self.health_interval > 0:
            self._health_task = asyncio.create_task(
                self._health_loop(), name="fleet-health"
            )

    @property
    def bound_port(self) -> int | None:
        """The actually-bound listener port (``None`` before start)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return None

    @property
    def port(self) -> int:
        return self.bound_port if self.bound_port is not None else self._port

    def request_shutdown(self) -> None:
        self._shutdown.set()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conns):
            writer.close()
        for name in list(self._pools):
            self._drain_pool(name)
        self._shutdown.set()

    # ------------------------------------------------------------------
    # health checks
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.check_health()

    async def check_health(self) -> dict[str, bool]:
        """Probe every registered shard once; quarantine/readmit.

        Returns ``{shard_name: healthy}`` — callable directly by tests
        and by the manager after a respawn, without waiting a cycle.
        """
        results: dict[str, bool] = {}
        for shard in list(self._shards.values()):
            healthy = await self._probe(shard)
            results[shard.name] = healthy
            if healthy:
                if not shard.alive:
                    self.readmit(shard.name)
                shard.failures = 0
            else:
                shard.failures += 1
                if shard.alive and shard.failures >= self.fail_threshold:
                    self.quarantine(shard.name, cause="health-check")
        return results

    async def _probe(self, shard: Shard) -> bool:
        """One ``GET /healthz`` against a shard; healthy = ok + not draining."""
        try:
            async with asyncio.timeout(self.probe_timeout):
                reader, writer = await asyncio.open_connection(shard.host, shard.port)
                try:
                    writer.write(
                        b"GET /healthz HTTP/1.1\r\nHost: fleet\r\n"
                        b"Connection: close\r\n\r\n"
                    )
                    await writer.drain()
                    status, _, body = await _read_http_response(reader)
                finally:
                    writer.close()
            if status != 200:
                return False
            doc = json.loads(body.decode("utf-8"))
            return doc.get("status") == "ok" and not doc.get("draining", False)
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
                ValueError):
            return False

    # ------------------------------------------------------------------
    # connection handling (client side)
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._conns.add(writer)
        try:
            while True:
                request = await _read_http_request(reader)
                if request is None:
                    return
                method, path, body, headers = request
                status, ctype, payload, extra = await self._route(
                    method, path, body, headers
                )
                keep_alive = (
                    headers.get("connection", "").lower() == "keep-alive"
                    and self._server is not None
                )
                _write_http_response(writer, status, ctype, payload, extra,
                                     keep_alive=keep_alive)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     headers: dict[str, str]):
        if body.startswith(b"\x00too-large"):
            return _json_response(413, {"status": "error",
                                        "error": "request body too large"})
        path = path.split("?", 1)[0]
        if path == "/healthz":
            alive = len(self.alive_shards())
            return _json_response(200, {
                "status": "ok" if alive else "error",
                "draining": alive == 0,
                "fleet": {"shards": len(self._shards), "alive": alive},
            })
        if path == "/metrics":
            return (200, "text/plain; version=0.0.4",
                    (await self.render_metrics()).encode(), {})
        if path == "/v1/stats":
            return await self._aggregate_stats()
        if path == "/v1/shutdown":
            if method != "POST":
                return _json_response(405, {"status": "error", "error": "use POST"})
            await self._broadcast_shutdown()
            asyncio.get_running_loop().call_soon(self.request_shutdown)
            return _json_response(200, {"status": "ok", "shutting_down": True})
        if path == "/v1/schedule":
            if method != "POST":
                return _json_response(405, {"status": "error", "error": "use POST"})
            return await self._route_schedule(body, headers)
        return _json_response(404, {"status": "error", "error": f"no such route {path}"})

    # ------------------------------------------------------------------
    # schedule routing
    # ------------------------------------------------------------------
    def routing_key(self, body: bytes, headers: dict[str, str]) -> tuple[str, str]:
        """The ``(key, source)`` a schedule request routes by.

        Preference order: the ``X-Repro-Fingerprint`` header, the
        fingerprint in a binary request's fixed prefix, then the SHA-256
        of the body.  All are deterministic, so one request body always
        has one owner; the first two are *content* addresses, so every
        serialisation of the same instance shares that owner.
        """
        fp = headers.get("x-repro-fingerprint", "").strip()
        if fp:
            return fp, "header"
        if wire.is_wire(body):
            try:
                fp = wire.peek_request_fingerprint(body)
            except Exception:
                fp = ""
            if fp:
                return fp, "wire"
        return hashlib.sha256(body).hexdigest(), "body"

    async def _route_schedule(self, body: bytes, headers: dict[str, str]):
        self.stats.requests += 1
        tracer = self.tracer
        key, source = self.routing_key(body, headers)
        self.stats.key_sources[source] = self.stats.key_sources.get(source, 0) + 1
        with tracer.span("fleet.route", detach=True, key=key[:12],
                         source=source) as route_span:
            attempts = 0
            tried: set[str] = set()
            while True:
                shard = self._next_owner(key, tried)
                if shard is None:
                    self.stats.no_backend += 1
                    if tracer.enabled:
                        tracer.count("fleet.no_backend")
                    return _json_response(503, {
                        "status": "error",
                        "error": "no live backend shard for this request; "
                                 "fleet is rebuilding, retry later",
                    }, {"Retry-After": f"{max(self.health_interval, 0.1):g}"})
                tried.add(shard.name)
                try:
                    with tracer.span("fleet.proxy", parent=route_span.sid,
                                     shard=shard.name, attempt=attempts):
                        status, resp_headers, payload = await self._proxy(
                            shard, body, headers
                        )
                except (OSError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError):
                    # Transport failure: safe to re-route (scheduling is
                    # pure and content-addressed), and the next ring
                    # owner is where the key re-homes anyway.
                    shard.failures += 1
                    if shard.failures >= self.fail_threshold:
                        self.quarantine(shard.name, cause="proxy-failure")
                    attempts += 1
                    self.stats.retries += 1
                    if tracer.enabled:
                        tracer.count("fleet.proxy_retries")
                    continue
                shard.failures = 0
                shard.proxied += 1
                self.stats.proxied += 1
                route_span.set(shard=shard.name, attempts=attempts)
                extra = {
                    out: resp_headers[name]
                    for name, out in _RELAY_HEADERS[1:] if name in resp_headers
                }
                ctype = resp_headers.get("content-type", "application/json")
                return status, ctype, payload, extra

    def _next_owner(self, key: str, tried: set[str]) -> Shard | None:
        """The first live, untried shard in the key's failover sequence."""
        if not self.ring:
            return None
        for name in self.ring.owners(key):
            shard = self._shards.get(name)
            if shard is not None and shard.alive and name not in tried:
                return shard
        return None

    async def _proxy(self, shard: Shard, body: bytes,
                     headers: dict[str, str]) -> tuple[int, dict[str, str], bytes]:
        """One request/response exchange with a backend shard.

        Backend connections are kept alive and pooled per shard.  A
        pooled connection the backend closed while idle fails with zero
        response bytes — that stale case gets one fresh connection, not
        a shard-failure mark (mirrors the client's stale-reuse rule).
        """
        forward = "".join(
            f"{out}: {headers[name]}\r\n"
            for name, out in _FORWARD_HEADERS if name in headers
        )
        head = (
            f"POST /v1/schedule HTTP/1.1\r\n"
            f"Host: {shard.endpoint}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{forward}"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        pool = self._pools.setdefault(shard.name, [])
        reused = bool(pool)
        if reused:
            reader, writer = pool.pop()
        else:
            reader, writer = await asyncio.open_connection(shard.host, shard.port)
        while True:
            try:
                async with asyncio.timeout(self.backend_timeout):
                    writer.write(head + body)
                    await writer.drain()
                    got_first = False
                    try:
                        status, resp_headers, payload = await _read_http_response(
                            reader
                        )
                        got_first = True
                    except asyncio.IncompleteReadError as exc:
                        if reused and not exc.partial and not got_first:
                            raise _StaleBackendConn() from None
                        raise
                    except ConnectionError:
                        if reused:
                            raise _StaleBackendConn() from None
                        raise
                break
            except _StaleBackendConn:
                writer.close()
                reader, writer = await asyncio.open_connection(shard.host, shard.port)
                reused = False
                continue
            except BaseException:
                writer.close()
                raise
        if resp_headers.get("connection", "").lower() == "keep-alive":
            pool.append((reader, writer))
        else:
            writer.close()
        return status, resp_headers, payload

    # ------------------------------------------------------------------
    # aggregation surfaces
    # ------------------------------------------------------------------
    async def _backend_get(self, shard: Shard, path: str) -> bytes | None:
        """Fetch one GET endpoint from a shard; ``None`` when unreachable."""
        try:
            async with asyncio.timeout(self.probe_timeout):
                reader, writer = await asyncio.open_connection(shard.host, shard.port)
                try:
                    writer.write(
                        f"GET {path} HTTP/1.1\r\nHost: fleet\r\n"
                        f"Connection: close\r\n\r\n".encode("latin-1")
                    )
                    await writer.drain()
                    status, _, body = await _read_http_response(reader)
                finally:
                    writer.close()
            return body if status == 200 else None
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            return None

    async def _aggregate_stats(self):
        """Summed :class:`~repro.service.metrics.ServiceStats` across the
        live shards, shaped exactly like a single daemon's ``/v1/stats``
        (so :meth:`ServiceClient.stats` keeps working), plus a ``fleet``
        section with the router's own counters and per-shard detail."""
        from repro.service.metrics import ServiceStats

        totals: dict[str, float] = {}
        per_shard: dict[str, dict] = {}
        for shard in self.alive_shards():
            raw = await self._backend_get(shard, "/v1/stats")
            if raw is None:
                continue
            try:
                stats = json.loads(raw.decode("utf-8"))["stats"]
            except (ValueError, KeyError):
                continue
            per_shard[shard.name] = stats
            for name, value in stats.items():
                if not isinstance(value, (int, float)):
                    continue
                if name.endswith("_ms") or name == "uptime_s":
                    totals[name] = max(totals.get(name, 0.0), value)
                else:
                    totals[name] = totals.get(name, 0) + value
        fields = set(ServiceStats.__dataclass_fields__)
        merged = ServiceStats(**{k: v for k, v in totals.items() if k in fields})
        return _json_response(200, {
            "status": "ok",
            "stats": merged.as_dict(),
            "fleet": {
                "router": self.stats.as_dict(),
                "shards": {
                    name: {
                        "alive": s.alive,
                        "endpoint": s.endpoint,
                        "proxied": s.proxied,
                        "quarantines": s.quarantines,
                    }
                    for name, s in self._shards.items()
                },
                "per_shard_stats": per_shard,
            },
        })

    async def render_metrics(self) -> str:
        """One Prometheus-style exposition for the whole fleet.

        Shard counters and gauges are summed; latency percentiles and
        uptime take the max (a sum of percentiles means nothing).  The
        router prepends its own ``repro_fleet_*`` series, including one
        labelled ``repro_fleet_shard_up`` per registered shard, so a
        scrape shows exactly which shards are carrying the ring.
        """
        sums: dict[str, float] = {}
        maxes: dict[str, float] = {}
        order: list[str] = []
        for shard in self.alive_shards():
            raw = await self._backend_get(shard, "/metrics")
            if raw is None:
                continue
            for line in raw.decode("utf-8", "replace").splitlines():
                parts = line.split()
                if len(parts) != 2 or line.startswith("#"):
                    continue
                name, text = parts
                try:
                    value = float(text)
                except ValueError:
                    continue
                target = maxes if (
                    name.endswith("_ms") or name.endswith("uptime_s")
                ) else sums
                if name not in sums and name not in maxes:
                    order.append(name)
                target[name] = (
                    max(target.get(name, 0.0), value) if target is maxes
                    else target.get(name, 0.0) + value
                )
        lines = [
            f"repro_fleet_shards {len(self._shards):g}",
            f"repro_fleet_shards_alive {len(self.alive_shards()):g}",
            f"repro_fleet_requests_total {self.stats.requests:g}",
            f"repro_fleet_proxied_total {self.stats.proxied:g}",
            f"repro_fleet_proxy_retries_total {self.stats.retries:g}",
            f"repro_fleet_quarantines_total {self.stats.quarantines:g}",
            f"repro_fleet_readmissions_total {self.stats.readmissions:g}",
            f"repro_fleet_no_backend_total {self.stats.no_backend:g}",
        ]
        for name, shard in sorted(self._shards.items()):
            lines.append(
                f'repro_fleet_shard_up{{shard="{name}"}} {1 if shard.alive else 0}'
            )
            lines.append(
                f'repro_fleet_shard_proxied_total{{shard="{name}"}} {shard.proxied:g}'
            )
        for name in order:
            value = sums.get(name, maxes.get(name, 0.0))
            lines.append(f"{name} {value:g}")
        return "\n".join(lines) + "\n"

    async def _broadcast_shutdown(self) -> None:
        """Ask every registered shard to drain (best effort)."""
        for shard in list(self._shards.values()):
            try:
                async with asyncio.timeout(self.probe_timeout):
                    reader, writer = await asyncio.open_connection(
                        shard.host, shard.port
                    )
                    try:
                        writer.write(
                            b"POST /v1/shutdown HTTP/1.1\r\nHost: fleet\r\n"
                            b"Content-Length: 0\r\nConnection: close\r\n\r\n"
                        )
                        await writer.drain()
                        await _read_http_response(reader)
                    finally:
                        writer.close()
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                pass


class _StaleBackendConn(Exception):
    """Internal: a pooled backend connection was dead on arrival."""


# ----------------------------------------------------------------------
# shared HTTP/1.1 framing helpers (the dialect of repro.service.server)
# ----------------------------------------------------------------------
async def _read_http_request(reader: asyncio.StreamReader):
    """Parse one request; mirrors ``ScheduleServer._read_request``."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except (asyncio.LimitOverrunError, ValueError):
        return None
    lines = head[:-4].decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        content_length = int(headers.get("content-length", 0))
    except ValueError:
        content_length = 0
    if content_length > MAX_BODY:
        return method, path, b"\x00too-large", headers
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body, headers


async def _read_http_response(reader: asyncio.StreamReader,
                              ) -> tuple[int, dict[str, str], bytes]:
    """Read one framed response: status, lowercase headers, exact body."""
    header = await reader.readuntil(b"\r\n\r\n")
    headers: dict[str, str] = {}
    for line in header.split(b"\r\n")[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        if name:
            headers[name.strip().lower()] = value.strip()
    status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
    try:
        status = int(status_line.split()[1])
    except (IndexError, ValueError):
        raise asyncio.IncompleteReadError(partial=header, expected=None) from None
    try:
        content_length = int(headers.get("content-length", "0"))
    except ValueError:
        content_length = 0
    body = await reader.readexactly(content_length) if content_length else b""
    return status, headers, body


def _write_http_response(writer: asyncio.StreamWriter, status: int,
                         content_type: str, payload: bytes,
                         extra_headers: dict[str, str] | None = None,
                         keep_alive: bool = False) -> None:
    reason = _REASONS.get(status, "Unknown")
    extras = "".join(
        f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
    )
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"{extras}"
        f"Connection: {connection}\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + payload)


def _json_response(status: int, doc: dict,
                   extra_headers: dict[str, str] | None = None):
    return (status, "application/json", json.dumps(doc).encode("utf-8"),
            extra_headers or {})


# Re-export for the manager and tests; time is used by the manager too.
_ = time
