"""Parameter-sensitivity analysis around a workload operating point.

Answers "which knob hurts most?": for a chosen scheduler and a base
workload configuration, each parameter (CCR, heterogeneity, processor
count, graph size) is varied by a relative step while the others stay
fixed, and the induced relative change in mean SLR is reported as an
elasticity (d log SLR / d log param).  A deployment whose network is the
bottleneck shows CCR elasticity dominating; one starved for processors
shows q elasticity strongly negative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench import workloads as W
from repro.exceptions import ConfigurationError
from repro.schedule.metrics import slr
from repro.schedule.validation import validate
from repro.schedulers.registry import get_scheduler
from repro.utils.rng import spawn_children
from repro.utils.tables import format_table


@dataclass(frozen=True)
class OperatingPoint:
    """The base workload configuration being analysed."""

    num_tasks: int = 100
    num_procs: int = 8
    ccr: float = 1.0
    heterogeneity: float = 0.5


@dataclass
class SensitivityResult:
    """Per-parameter elasticities of mean SLR."""

    scheduler: str
    base: OperatingPoint
    base_slr: float
    elasticities: dict[str, float] = field(default_factory=dict)

    def dominant(self) -> str:
        """Parameter with the largest absolute elasticity."""
        return max(self.elasticities, key=lambda k: abs(self.elasticities[k]))

    def table(self) -> str:
        rows = [
            [param, f"{value:+.4f}"]
            for param, value in sorted(
                self.elasticities.items(), key=lambda kv: -abs(kv[1])
            )
        ]
        return format_table(
            ["parameter", "elasticity d(ln SLR)/d(ln p)"],
            rows,
            title=(
                f"sensitivity of {self.scheduler} at n={self.base.num_tasks}, "
                f"q={self.base.num_procs}, CCR={self.base.ccr}, "
                f"beta={self.base.heterogeneity} (base SLR {self.base_slr:.4f})"
            ),
        )


def _mean_slr(scheduler_name: str, point: OperatingPoint, reps: int, seed: int) -> float:
    scheduler = get_scheduler(scheduler_name)
    values = []
    for rng in spawn_children(seed, reps):
        inst = W.random_instance(
            rng,
            num_tasks=point.num_tasks,
            num_procs=point.num_procs,
            ccr=point.ccr,
            heterogeneity=point.heterogeneity,
        )
        schedule = scheduler.schedule(inst)
        validate(schedule, inst)
        values.append(slr(schedule, inst))
    return float(np.mean(values))


def analyze_sensitivity(
    scheduler_name: str = "IMP",
    base: OperatingPoint | None = None,
    step: float = 0.25,
    reps: int = 5,
    seed: int = 0,
) -> SensitivityResult:
    """Estimate the elasticity of mean SLR to each workload parameter.

    ``step`` is the relative perturbation (0.25 = +25%); integer
    parameters are rounded up to guarantee an actual change.  The same
    seed streams are used at the base and at each perturbed point so
    differences are paired, not resampled.
    """
    if not (0.0 < step < 1.0):
        raise ConfigurationError(f"step must be in (0, 1), got {step}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    base = base or OperatingPoint()

    base_slr = _mean_slr(scheduler_name, base, reps, seed)
    if base_slr <= 0:
        raise ConfigurationError("degenerate base point: SLR <= 0")

    perturbed = {
        "ccr": OperatingPoint(base.num_tasks, base.num_procs,
                              base.ccr * (1 + step), base.heterogeneity),
        "heterogeneity": OperatingPoint(base.num_tasks, base.num_procs, base.ccr,
                                        base.heterogeneity * (1 + step)),
        "num_procs": OperatingPoint(base.num_tasks,
                                    max(base.num_procs + 1,
                                        int(np.ceil(base.num_procs * (1 + step)))),
                                    base.ccr, base.heterogeneity),
        "num_tasks": OperatingPoint(max(base.num_tasks + 1,
                                        int(np.ceil(base.num_tasks * (1 + step)))),
                                    base.num_procs, base.ccr, base.heterogeneity),
    }

    result = SensitivityResult(scheduler=scheduler_name, base=base, base_slr=base_slr)
    for param, point in perturbed.items():
        new_slr = _mean_slr(scheduler_name, point, reps, seed)
        if param == "num_procs":
            rel = point.num_procs / base.num_procs - 1.0
        elif param == "num_tasks":
            rel = point.num_tasks / base.num_tasks - 1.0
        else:
            rel = step
        result.elasticities[param] = float(
            np.log(new_slr / base_slr) / np.log(1.0 + rel)
        )
    return result
