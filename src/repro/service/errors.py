"""Service-layer exception hierarchy.

Every serving failure derives from :class:`ServiceError` (itself a
:class:`~repro.exceptions.ReproError`) and carries the HTTP status code
the server maps it to, so the transport layer never needs a big
``isinstance`` ladder.
"""

from __future__ import annotations

from repro.exceptions import ReproError


class ServiceError(ReproError):
    """Base class for serving-layer failures."""

    #: HTTP status the server responds with for this error class.
    status = 500


class RequestError(ServiceError):
    """The request document is malformed (bad JSON, unknown scheduler,
    invalid instance)."""

    status = 400


class WireFormatError(RequestError):
    """A binary wire blob is malformed (bad magic, wrong kind, short
    buffer, corrupt section).  A :class:`RequestError` — the server maps
    it to 400 — but typed so codec callers can tell framing problems
    from semantic ones."""


class WireVersionError(WireFormatError):
    """The blob's wire version byte is not the one this build speaks.

    Raised *before* any section is decoded, so an old-format blob is
    rejected loudly instead of being garbage-decoded."""


class ServiceOverloadedError(ServiceError):
    """The bounded request queue is full — backpressure, retry later.

    ``retry_after`` (seconds) is the server's load-aware backoff hint;
    the server surfaces it as a ``Retry-After`` header on the 429 and
    the client's :class:`~repro.service.resilience.RetryPolicy` treats
    it as a floor under its jittered delay.
    """

    status = 429
    retry_after: float | None = None


class TransportError(ServiceError):
    """The connection failed mid-exchange (closed early, malformed
    framing).  Client-side only — safe to retry, since the schedule
    computation is pure and content-addressed."""

    status = 502


class StaleConnectionError(TransportError):
    """A pooled keep-alive connection was dead on first use — zero
    response bytes read (the server closed it while it sat idle:
    restart, idle timeout).  Not a real transport failure: nothing was
    ever exchanged on this attempt, so the client replaces the
    connection and redoes the exchange *without* spending a retry
    budget slot.  Distinct from :class:`TransportError` precisely so
    the retry loop can tell the two apart; still a subclass, so it
    stays retryable if it ever escapes."""


class ServiceTimeoutError(ServiceError):
    """The per-request deadline elapsed before a result was ready."""

    status = 504


class ServiceClosedError(ServiceError):
    """The engine is draining or stopped and accepts no new work."""

    status = 503


class WorkerError(ServiceError):
    """The scheduling computation itself raised in the worker."""

    status = 500
