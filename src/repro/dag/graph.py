"""Validated weighted task DAG built on :class:`networkx.DiGraph`.

:class:`TaskDAG` is the single graph type used throughout the library.
It enforces the invariants every scheduler relies on:

* the graph is directed and acyclic (checked on demand and incrementally
  on edge insertion),
* every node carries a :class:`~repro.dag.task.Task` with a finite,
  non-negative cost,
* every edge carries a finite, non-negative ``data`` volume (the amount
  of data the child reads from the parent).

Iteration orders (``tasks()``, ``topological_order()``) are deterministic
for a given construction sequence so that scheduling runs are exactly
reproducible.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.dag.task import Task
from repro.exceptions import (
    CostError,
    CycleError,
    DuplicateTaskError,
    GraphError,
    UnknownTaskError,
)
from repro.types import Edge, TaskId


class TaskDAG:
    """A weighted directed acyclic task graph.

    Examples
    --------
    >>> dag = TaskDAG("demo")
    >>> dag.add_task(Task("a", cost=2.0))
    >>> dag.add_task(Task("b", cost=3.0))
    >>> dag.add_edge("a", "b", data=4.0)
    >>> dag.num_tasks, dag.num_edges
    (2, 1)
    """

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self._g = nx.DiGraph()
        self._topo_cache: list[TaskId] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task | TaskId, cost: float | None = None) -> Task:
        """Add a task node.

        Accepts either a prepared :class:`Task` or a bare id plus optional
        ``cost`` (defaulting to 1.0).  Returns the stored task.  Adding an
        id twice raises :class:`DuplicateTaskError`.
        """
        if not isinstance(task, Task):
            task = Task(id=task, cost=1.0 if cost is None else cost)
        elif cost is not None:
            raise ValueError("pass cost either inside Task or as argument, not both")
        if task.id in self._g:
            raise DuplicateTaskError(task.id)
        self._g.add_node(task.id, task=task)
        self._topo_cache = None
        return task

    def add_edge(self, parent: TaskId, child: TaskId, data: float = 0.0) -> None:
        """Add a dependency edge ``parent -> child`` carrying ``data`` units.

        Both endpoints must already exist.  An edge that would create a
        cycle (including a self-loop) raises :class:`CycleError`; a
        repeated edge raises :class:`GraphError` (costs on a dependency
        are not silently overwritten).
        """
        for tid in (parent, child):
            if tid not in self._g:
                raise UnknownTaskError(tid)
        if parent == child:
            raise CycleError(f"self-loop on task {parent!r}")
        if self._g.has_edge(parent, child):
            raise GraphError(f"duplicate edge {parent!r} -> {child!r}")
        data = float(data)
        if math.isnan(data) or math.isinf(data) or data < 0:
            raise CostError(f"edge {parent!r}->{child!r}: data must be finite and >= 0")
        # Cheap incremental cycle check: a new edge u->v creates a cycle
        # iff v already reaches u.
        if nx.has_path(self._g, child, parent):
            raise CycleError(f"edge {parent!r} -> {child!r} would create a cycle")
        self._g.add_edge(parent, child, data=data)
        self._topo_cache = None

    def remove_task(self, task_id: TaskId) -> None:
        """Remove a task and all incident edges."""
        if task_id not in self._g:
            raise UnknownTaskError(task_id)
        self._g.remove_node(task_id)
        self._topo_cache = None

    def set_cost(self, task_id: TaskId, cost: float) -> None:
        """Replace the nominal cost of an existing task."""
        self._g.nodes[self._require(task_id)]["task"] = self.task(task_id).with_cost(cost)

    def set_data(self, parent: TaskId, child: TaskId, data: float) -> None:
        """Replace the data volume of an existing edge."""
        if not self._g.has_edge(parent, child):
            raise GraphError(f"no edge {parent!r} -> {child!r}")
        data = float(data)
        if math.isnan(data) or math.isinf(data) or data < 0:
            raise CostError(f"edge {parent!r}->{child!r}: data must be finite and >= 0")
        self._g.edges[parent, child]["data"] = data

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge | tuple[TaskId, TaskId, float]],
        costs: Mapping[TaskId, float] | None = None,
        name: str = "dag",
    ) -> "TaskDAG":
        """Build a DAG from an edge list, creating tasks on first mention.

        ``edges`` items are ``(parent, child)`` or ``(parent, child, data)``.
        ``costs`` overrides the default task cost of 1.0.
        """
        dag = cls(name)
        costs = dict(costs or {})
        edge_list: list[tuple[TaskId, TaskId, float]] = []
        for item in edges:
            if len(item) == 2:
                u, v = item  # type: ignore[misc]
                d = 0.0
            else:
                u, v, d = item  # type: ignore[misc]
            for tid in (u, v):
                if not dag.has_task(tid):
                    dag.add_task(Task(id=tid, cost=costs.get(tid, 1.0)))
            edge_list.append((u, v, float(d)))
        for tid, cost in costs.items():
            if not dag.has_task(tid):
                dag.add_task(Task(id=tid, cost=cost))
        for u, v, d in edge_list:
            dag.add_edge(u, v, data=d)
        return dag

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self._g.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def __len__(self) -> int:
        return self.num_tasks

    def __contains__(self, task_id: TaskId) -> bool:
        return task_id in self._g

    def has_task(self, task_id: TaskId) -> bool:
        return task_id in self._g

    def has_edge(self, parent: TaskId, child: TaskId) -> bool:
        return self._g.has_edge(parent, child)

    def _require(self, task_id: TaskId) -> TaskId:
        if task_id not in self._g:
            raise UnknownTaskError(task_id)
        return task_id

    def task(self, task_id: TaskId) -> Task:
        """Return the :class:`Task` stored under ``task_id``."""
        return self._g.nodes[self._require(task_id)]["task"]

    def cost(self, task_id: TaskId) -> float:
        """Nominal computation cost of a task."""
        return self.task(task_id).cost

    def data(self, parent: TaskId, child: TaskId) -> float:
        """Data volume carried by the edge ``parent -> child``."""
        try:
            return self._g.edges[parent, child]["data"]
        except KeyError:
            raise GraphError(f"no edge {parent!r} -> {child!r}") from None

    def tasks(self) -> Iterator[TaskId]:
        """Iterate task ids in insertion order."""
        return iter(self._g.nodes)

    def task_objects(self) -> Iterator[Task]:
        """Iterate stored :class:`Task` records in insertion order."""
        return (self._g.nodes[n]["task"] for n in self._g.nodes)

    def edges(self) -> Iterator[Edge]:
        """Iterate edges as ``(parent, child)`` pairs."""
        return iter(self._g.edges)

    def predecessors(self, task_id: TaskId) -> list[TaskId]:
        return list(self._g.predecessors(self._require(task_id)))

    def successors(self, task_id: TaskId) -> list[TaskId]:
        return list(self._g.successors(self._require(task_id)))

    def in_degree(self, task_id: TaskId) -> int:
        return self._g.in_degree(self._require(task_id))

    def out_degree(self, task_id: TaskId) -> int:
        return self._g.out_degree(self._require(task_id))

    def entry_tasks(self) -> list[TaskId]:
        """Tasks with no predecessors."""
        return [n for n in self._g.nodes if self._g.in_degree(n) == 0]

    def exit_tasks(self) -> list[TaskId]:
        """Tasks with no successors."""
        return [n for n in self._g.nodes if self._g.out_degree(n) == 0]

    def topological_order(self) -> list[TaskId]:
        """A deterministic topological order (cached until mutation).

        Uses :func:`networkx.lexicographical_topological_sort` keyed by the
        string form of the id so the order is stable across runs and
        insertion orders.
        """
        if self._topo_cache is None:
            try:
                self._topo_cache = list(
                    nx.lexicographical_topological_sort(self._g, key=lambda n: (str(type(n)), str(n)))
                )
            except nx.NetworkXUnfeasible as exc:  # pragma: no cover - guarded by add_edge
                raise CycleError("graph contains a cycle") from exc
        return list(self._topo_cache)

    def total_cost(self) -> float:
        """Sum of all nominal task costs (sequential execution time)."""
        return sum(t.cost for t in self.task_objects())

    def total_data(self) -> float:
        """Sum of all edge data volumes."""
        return sum(self._g.edges[e]["data"] for e in self._g.edges)

    def ccr(self) -> float:
        """Communication-to-computation ratio of the nominal annotations.

        Defined as total edge data divided by total task cost; 0.0 for a
        graph with no computation (degenerate but legal).
        """
        total = self.total_cost()
        return self.total_data() / total if total > 0 else 0.0

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "TaskDAG":
        """Deep-enough copy: tasks are immutable so node records are shared."""
        clone = TaskDAG(name or self.name)
        clone._g = self._g.copy()
        clone._topo_cache = None
        return clone

    def relabel(self, mapping: Mapping[TaskId, TaskId]) -> "TaskDAG":
        """Return a copy with task ids replaced according to ``mapping``.

        Ids missing from ``mapping`` are kept.  The mapping must be
        injective on the affected ids.
        """
        new = TaskDAG(self.name)
        seen: set[TaskId] = set()
        for old_id in self._g.nodes:
            new_id = mapping.get(old_id, old_id)
            if new_id in seen:
                raise GraphError(f"relabel mapping collides on {new_id!r}")
            seen.add(new_id)
            old_task = self._g.nodes[old_id]["task"]
            new.add_task(Task(id=new_id, cost=old_task.cost, name=old_task.name, attrs=dict(old_task.attrs)))
        for u, v in self._g.edges:
            new.add_edge(mapping.get(u, u), mapping.get(v, v), data=self._g.edges[u, v]["data"])
        return new

    def with_virtual_endpoints(
        self, entry_id: TaskId = "__entry__", exit_id: TaskId = "__exit__"
    ) -> "TaskDAG":
        """Return a copy with single zero-cost entry and exit pseudo-tasks.

        Several classic algorithms (CPOP's critical path, MCP's ALAP) are
        simplest on single-entry/single-exit graphs.  Edges from/to the
        virtual endpoints carry zero data so they never induce
        communication.  If the graph already has a unique entry (resp.
        exit), no pseudo-task is added on that side.
        """
        clone = self.copy()
        entries = clone.entry_tasks()
        exits = clone.exit_tasks()
        if len(entries) > 1:
            clone.add_task(Task(id=entry_id, cost=0.0, name="virtual-entry"))
            for e in entries:
                clone.add_edge(entry_id, e, data=0.0)
        if len(exits) > 1:
            clone.add_task(Task(id=exit_id, cost=0.0, name="virtual-exit"))
            for x in exits:
                clone.add_edge(x, exit_id, data=0.0)
        return clone

    def validate(self) -> None:
        """Re-check all structural invariants; raises on violation.

        Construction already enforces these incrementally — this is a
        belt-and-braces hook for graphs deserialised from files.
        """
        if not nx.is_directed_acyclic_graph(self._g):
            raise CycleError("graph contains a cycle")
        for n in self._g.nodes:
            task = self._g.nodes[n].get("task")
            if task is None or task.id != n:
                raise GraphError(f"node {n!r} lacks a consistent Task record")
        for u, v in self._g.edges:
            data = self._g.edges[u, v].get("data")
            if data is None or math.isnan(data) or data < 0:
                raise CostError(f"edge {u!r}->{v!r} has invalid data {data!r}")

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying :class:`networkx.DiGraph`."""
        return self._g.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskDAG({self.name!r}, tasks={self.num_tasks}, edges={self.num_edges})"
