"""Integration: every scheduler x every generator family x machine
shapes, with full feasibility validation and simulator cross-checks."""

import pytest

from repro.dag.generators import (
    cholesky_dag,
    fft_dag,
    fork_join_dag,
    gaussian_elimination_dag,
    in_tree_dag,
    laplace_dag,
    layered_dag,
    mapreduce_dag,
    montage_dag,
    out_tree_dag,
    pipeline_dag,
    random_dag,
    series_parallel_dag,
)
from repro.instance import Instance, homogeneous_instance, make_instance
from repro.machine import etc_from_speeds, mesh_machine, ring_machine, star_machine
from repro.schedule.metrics import slr
from repro.schedule.validation import validate
from repro.schedulers.registry import get_scheduler
from repro.sim import execute

SCHEDULERS = [
    "HEFT", "CPOP", "HCPT", "PETS", "DLS", "ETF", "MCP", "HLFET",
    "TDS", "Random", "RoundRobin", "IMP", "LA-HEFT", "DUP-HEFT",
]

GENERATORS = {
    "random": lambda: random_dag(45, seed=7),
    "layered": lambda: layered_dag(5, 6, seed=7),
    "gauss": lambda: gaussian_elimination_dag(6),
    "fft": lambda: fft_dag(8),
    "laplace": lambda: laplace_dag(4),
    "cholesky": lambda: cholesky_dag(4),
    "forkjoin": lambda: fork_join_dag(4, stages=2),
    "intree": lambda: in_tree_dag(2, 3),
    "outtree": lambda: out_tree_dag(2, 3),
    "sp": lambda: series_parallel_dag(30, seed=7),
    "montage": lambda: montage_dag(5, seed=7),
    "mapreduce": lambda: mapreduce_dag(4, 2, seed=7),
    "pipeline": lambda: pipeline_dag(3, 4, coupled=True),
}


@pytest.mark.parametrize("gen_name", sorted(GENERATORS))
@pytest.mark.parametrize("sched_name", SCHEDULERS)
def test_schedule_feasible_and_replayable(gen_name, sched_name):
    dag = GENERATORS[gen_name]()
    instance = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=13)
    schedule = get_scheduler(sched_name).schedule(instance)
    validate(schedule, instance)
    assert len(schedule) == dag.num_tasks
    # Simulator agrees (left-shift can only be earlier).
    replay = execute(schedule, instance)
    assert replay.makespan <= schedule.makespan + 1e-6
    # Quality corridor: every heuristic lands within 20x of the CP bound.
    assert slr(schedule, instance) < 20.0


@pytest.mark.parametrize("sched_name", ["HEFT", "IMP", "DLS", "MCP", "TDS"])
def test_topology_machines(sched_name):
    dag = random_dag(35, seed=21)
    for machine in (
        star_machine(5, latency=0.2, bandwidth=2.0),
        ring_machine(5, latency=0.2, bandwidth=2.0),
        mesh_machine(2, 3, latency=0.2, bandwidth=2.0),
    ):
        instance = Instance(dag=dag, machine=machine, etc=etc_from_speeds(dag, machine))
        schedule = get_scheduler(sched_name).schedule(instance)
        validate(schedule, instance)


@pytest.mark.parametrize("sched_name", SCHEDULERS)
def test_homogeneous_machines(sched_name):
    dag = random_dag(40, seed=22)
    instance = homogeneous_instance(dag, num_procs=6)
    schedule = get_scheduler(sched_name).schedule(instance)
    validate(schedule, instance)


@pytest.mark.parametrize("consistency", ["consistent", "inconsistent", "partially-consistent"])
def test_etc_consistency_classes(consistency):
    dag = random_dag(40, seed=23)
    instance = make_instance(
        dag, num_procs=4, heterogeneity=1.0, consistency=consistency, seed=23
    )
    for name in ("HEFT", "IMP", "CPOP"):
        validate(get_scheduler(name).schedule(instance), instance)
