"""Simulator determinism across interpreter restarts.

Regression test for a hash-ordering leak in the executor: the data
delivery fan-out iterated a *set* of destination processors, so with
string (or other hash-randomised) processor ids the event ordering —
and therefore trace ordering and result list ordering — could differ
between ``PYTHONHASHSEED`` restarts.  Destinations are now iterated in
the same hash-free ``(type, str)`` order the DAG uses for task ids, and
this probe pins that: the full simulated report (fault-free and
degraded, executor and analytic predictor) must be byte-identical
across interpreters with different hash seeds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent

#: The probe stresses every hash-sensitive id kind at once: tuple task
#: ids (fork-join generator) on a machine with *string* processor ids,
#: run through the resilient pipeline under faults, printing each
#: copy/event outcome in execution order with exact hex floats.
_PROBE = """
import numpy as np
from repro.dag.generators import fork_join_dag
from repro.instance import Instance
from repro.machine.cluster import Machine
from repro.machine.comm import UniformCommunication
from repro.machine.etc import ETCMatrix
from repro.machine.processor import Processor
from repro.schedulers.heft import HEFT
from repro.schedulers.resilient import ResilientScheduler, predict_degraded
from repro.sim.executor import execute

dag = fork_join_dag(width=4, stages=2, chain_length=2, jitter=0.4, seed=3)
proc_names = ["zeta", "alpha", "omega", "beta"]
machine = Machine(
    [Processor(id=n) for n in proc_names],
    UniformCommunication(latency=0.5, bandwidth=2.0),
)
tasks = list(dag.tasks())
vals = np.random.default_rng(8).uniform(2.0, 12.0, size=(len(tasks), 4))
etc = ETCMatrix(tasks, proc_names, vals)
inst = Instance(dag=dag, machine=machine, etc=etc, name="hashprobe")

sched = ResilientScheduler(HEFT(), k=1).schedule(inst)
lines = []
for faults in (None, {"alpha": 0.0}, {"omega": 7.5, "zeta": 20.0}):
    real = execute(sched, inst, faults=faults)
    pred = predict_degraded(sched, inst, faults)
    lines.append((
        real.makespan.hex(),
        pred.makespan.hex(),
        real.events_processed,
        [(str(c.task), str(c.proc), c.start.hex(), c.end.hex()) for c in real.copies],
        [(str(c.task), str(c.proc)) for c in real.aborted],
        [(str(c.task), str(c.proc)) for c in real.unstarted],
        sorted((str(t), e.hex()) for t, e in pred.task_ends.items()),
    ))
print(repr(lines))
"""


def _run_probe(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=ROOT,
    )
    return out.stdout.strip()


def test_simulation_identical_across_hashseed_restarts():
    reports = {seed: _run_probe(seed) for seed in ("0", "1", "4242")}
    assert reports["0"] == reports["1"] == reports["4242"], reports
    assert reports["0"]  # the probe actually produced output
