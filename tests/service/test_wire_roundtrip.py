"""Round-trip property layer for the binary wire format.

Three layers of guarantees, from strongest to broadest:

* **Corpus round-trips** — every member of the shared 56-instance
  differential corpus survives ``decode(encode(x))`` with an identical
  canonical JSON form and content fingerprint.
* **Cross-wire identity** — for schedules, the dict decoded from the
  binary payload equals the dict the JSON wire would deliver
  (``json.loads(json.dumps(payload))``), checked across every
  registered scheduler.
* **Hypothesis sweeps** — randomly drawn instances, request field
  combinations and synthetic payloads all round-trip exactly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.instance_io import instance_to_json
from repro.schedulers.registry import all_scheduler_names, get_scheduler
from repro.service import wire
from repro.service.protocol import schedule_payload
from tests.population import build_population

CORPUS = build_population()

#: One representative per corpus family, for the expensive
#: every-scheduler sweeps.
FAMILY_REPS = [CORPUS[0], CORPUS[14], CORPUS[28], CORPUS[42]]


def _canonical(instance) -> str:
    return instance_to_json(instance)


def _json_wire(payload: dict) -> dict:
    """What the JSON wire format delivers for ``payload``."""
    return json.loads(json.dumps(payload))


# ----------------------------------------------------------------------
# instances: the full corpus
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label, instance", CORPUS, ids=[l for l, _ in CORPUS])
def test_corpus_instance_roundtrip(label, instance):
    decoded = wire.decode_instance(wire.encode_instance(instance))
    assert _canonical(decoded) == _canonical(instance)
    assert decoded.fingerprint() == instance.fingerprint()


# ----------------------------------------------------------------------
# schedules: every registered scheduler, binary == JSON after decode
# ----------------------------------------------------------------------
#: The branch-and-bound oracle refuses corpus-sized instances, so it
#: gets purpose-built small ones (one heterogeneous, one homogeneous).
SMALL_REPS = [
    ("small-het", make_instance(random_dag(8, ccr=1.0, seed=71), num_procs=3,
                                heterogeneity=0.5, seed=71)),
    ("small-homog", make_instance(random_dag(10, ccr=4.0, seed=72), num_procs=2,
                                  heterogeneity=0.0, seed=72)),
]


@pytest.mark.parametrize("alg", all_scheduler_names())
def test_every_scheduler_payload_cross_wire_identical(alg):
    for label, instance in (SMALL_REPS if alg == "OPT-BB" else FAMILY_REPS):
        payload = schedule_payload(get_scheduler(alg).schedule(instance),
                                   instance, alg)
        decoded = wire.decode_payload(wire.encode_payload(payload))
        assert decoded == _json_wire(payload), (
            f"{alg} on {label}: binary decode differs from JSON wire"
        )


def test_corpus_payload_roundtrip_reference_scheduler():
    for label, instance in CORPUS:
        payload = schedule_payload(get_scheduler("IMP").schedule(instance),
                                   instance, "IMP")
        decoded = wire.decode_payload(wire.encode_payload(payload))
        assert decoded == _json_wire(payload), label


# ----------------------------------------------------------------------
# requests and responses
# ----------------------------------------------------------------------
@pytest.mark.parametrize("timeout", [None, 0.25, 120.0])
@pytest.mark.parametrize("trace_id", [None, "req-00000042"])
def test_request_roundtrip_field_combinations(timeout, trace_id):
    _, instance = CORPUS[3]
    body = wire.encode_request(instance, "HEFT", timeout, trace_id=trace_id)
    blob, alg, fingerprint, out_timeout, out_trace = wire.decode_request(body)
    assert alg == "HEFT"
    assert fingerprint == instance.fingerprint()
    assert out_timeout == timeout
    assert out_trace == trace_id
    assert wire.decode_instance(blob).fingerprint() == instance.fingerprint()


def test_compact_request_roundtrip_omits_instance():
    _, instance = CORPUS[5]
    body = wire.encode_request(None, "IMP", fingerprint=instance.fingerprint(),
                               compact=True)
    assert len(body) < 128
    blob, alg, fingerprint, timeout, trace = wire.decode_request(body)
    assert blob is None
    assert (alg, fingerprint) == ("IMP", instance.fingerprint())


def test_compact_request_requires_fingerprint():
    body = wire.encode_request(None, "IMP", fingerprint="", compact=True)
    with pytest.raises(wire.WireFormatError, match="fingerprint"):
        wire.decode_request(body)


def test_response_roundtrip_envelope_and_view():
    label, instance = CORPUS[7]
    payload = schedule_payload(get_scheduler("HEFT").schedule(instance),
                               instance, "HEFT")
    encoded = wire.encode_payload(payload)
    body = wire.encode_response(encoded, cache_hit=True, fingerprint="f" * 64,
                                server_ms=1.25, trace_id="req-7")
    view = wire.ResponseView(body)
    assert view.cache_hit is True
    assert view.fingerprint == "f" * 64
    assert view.server_ms == 1.25
    assert view.trace_id == "req-7"
    assert view.makespan == payload["makespan"]
    assert view.num_placements == len(payload["placements"])
    merged = dict(_json_wire(payload), cache_hit=True, fingerprint="f" * 64,
                  server_ms=1.25, trace_id="req-7")
    assert view.payload == merged
    assert wire.decode_response(body) == merged


# ----------------------------------------------------------------------
# hypothesis sweeps
# ----------------------------------------------------------------------
instance_params = st.tuples(
    st.integers(min_value=1, max_value=30),      # tasks
    st.integers(min_value=1, max_value=6),       # procs
    st.floats(min_value=0.0, max_value=8.0),     # ccr
    st.floats(min_value=0.0, max_value=1.5),     # heterogeneity
    st.integers(min_value=0, max_value=10_000),  # seed
)


def _build(params):
    n, q, ccr, beta, seed = params
    return make_instance(random_dag(n, ccr=ccr, seed=seed), num_procs=q,
                         heterogeneity=beta, seed=seed)


@given(instance_params)
@settings(max_examples=60, deadline=None)
def test_random_instance_roundtrip(params):
    instance = _build(params)
    decoded = wire.decode_instance(wire.encode_instance(instance))
    assert _canonical(decoded) == _canonical(instance)
    assert decoded.fingerprint() == instance.fingerprint()


@given(instance_params, st.sampled_from(["HEFT", "CPOP", "TDS", "IMP"]))
@settings(max_examples=40, deadline=None)
def test_random_schedule_payload_cross_wire(params, alg):
    instance = _build(params)
    payload = schedule_payload(get_scheduler(alg).schedule(instance),
                               instance, alg)
    decoded = wire.decode_payload(wire.encode_payload(payload))
    assert decoded == _json_wire(payload)


_id = st.one_of(
    st.integers(min_value=-2**63, max_value=2**63 - 1),
    st.integers(min_value=2**63, max_value=2**80),
    st.text(max_size=12),
)


@given(
    st.lists(
        st.tuples(_id, _id,
                  st.floats(min_value=0, max_value=1e9, allow_nan=False),
                  st.floats(min_value=0, max_value=1e9, allow_nan=False),
                  st.booleans()),
        max_size=40,
    ),
    st.floats(min_value=0, max_value=1e12, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_synthetic_payload_roundtrip(rows, makespan):
    from repro.utils.encoding import encode_id

    payload = {
        "alg": "X",
        "instance": "synthetic",
        "num_tasks": len(rows),
        "num_procs": 3,
        "makespan": makespan,
        "num_duplicates": sum(1 for r in rows if r[4]),
        "placements": [
            {"task": encode_id(t), "proc": encode_id(p),
             "start": s, "end": e, "duplicate": d}
            for t, p, s, e, d in rows
        ],
    }
    decoded = wire.decode_payload(wire.encode_payload(payload))
    assert decoded == _json_wire(payload)
