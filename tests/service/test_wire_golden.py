"""Golden-fixture layer: the binary wire format is pinned to disk.

``tests/service/golden/`` holds hex dumps of encoded instances (and one
schedule payload) produced by wire version 1, plus a manifest of their
fingerprints.  These tests fail if the byte layout drifts in ANY way —
which is the point: a layout change must bump :data:`wire.WIRE_VERSION`
and regenerate the fixtures deliberately, never slip in silently,
because persisted cache segments and old clients hold version-1 bytes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.instance_io import instance_to_json
from repro.service import wire
from repro.service.errors import WireFormatError, WireVersionError

GOLDEN = Path(__file__).parent / "golden"
MANIFEST = json.loads((GOLDEN / "manifest.json").read_text())
NAMES = sorted(MANIFEST["instances"])


def _blob(name: str, kind: str = "instance") -> bytes:
    return bytes.fromhex((GOLDEN / f"{name}.{kind}.hex").read_text().strip())


def test_fixtures_were_generated_by_current_version():
    assert MANIFEST["wire_version"] == wire.WIRE_VERSION, (
        "wire version bumped: regenerate the golden fixtures deliberately"
    )


@pytest.mark.parametrize("name", NAMES)
def test_golden_instance_decodes_to_pinned_content(name):
    expect = MANIFEST["instances"][name]
    blob = _blob(name)
    assert len(blob) == expect["bytes"]
    instance = wire.decode_instance(blob)
    assert instance.fingerprint() == expect["fingerprint"]
    assert instance.num_tasks == expect["num_tasks"]
    assert instance.num_procs == expect["num_procs"]
    canonical = (GOLDEN / f"{name}.canonical.json").read_text().rstrip("\n")
    assert instance_to_json(instance) == canonical


@pytest.mark.parametrize("name", NAMES)
def test_encoder_is_byte_stable_against_golden(name):
    """Re-encoding the decoded instance reproduces the golden bytes
    exactly — the encoder is deterministic and layout-stable."""
    blob = _blob(name)
    assert wire.encode_instance(wire.decode_instance(blob)) == blob


def test_golden_payload_decodes_and_reencodes():
    blob = _blob("het-small", "payload")
    assert len(blob) == MANIFEST["payload"]["bytes"]
    payload = wire.decode_payload(blob)
    expected = json.loads((GOLDEN / "het-small.payload.json").read_text())
    assert payload == expected
    assert payload["makespan"] == MANIFEST["payload"]["makespan"]
    assert wire.encode_payload(payload) == blob


# ----------------------------------------------------------------------
# version negotiation: old readers must reject future blobs loudly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", NAMES)
def test_version_byte_bump_is_rejected_with_typed_error(name):
    blob = bytearray(_blob(name))
    blob[4] = wire.WIRE_VERSION + 1  # the version byte follows the magic
    with pytest.raises(WireVersionError) as err:
        wire.decode_instance(bytes(blob))
    assert str(wire.WIRE_VERSION + 1) in str(err.value)
    # WireVersionError is a WireFormatError is a RequestError: the
    # server maps it to HTTP 400 without special-casing.
    assert isinstance(err.value, WireFormatError)


def test_bad_magic_is_rejected():
    blob = bytearray(_blob(NAMES[0]))
    blob[0] ^= 0xFF
    with pytest.raises(WireFormatError):
        wire.decode_instance(bytes(blob))


def test_truncated_golden_blob_is_rejected():
    blob = _blob(NAMES[0])
    with pytest.raises(WireFormatError):
        wire.decode_instance(blob[: len(blob) // 2])
