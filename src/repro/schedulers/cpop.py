"""CPOP — Critical Path On a Processor (Topcuoglu et al., 2002).

The companion baseline of HEFT: tasks are prioritised by
``rank_u + rank_d``; all tasks on the (average-cost) critical path are
pinned to the single processor that minimises the path's total execution
time; every other task is placed by insertion-based EFT.  CPOP processes
tasks in ready order driven by a priority queue rather than a static
list, which this implementation reproduces.
"""

from __future__ import annotations

import heapq
from itertools import count

import numpy as np

from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.obs import get_tracer
from repro.schedule.schedule import Schedule
from repro.schedulers.base import (
    Scheduler,
    compiled_for,
    eft_placement,
    placement_on,
)
from repro.schedulers.ranking import (
    RankAggregation,
    critical_path_tasks,
    downward_ranks,
    upward_ranks,
)
from repro.types import ProcId


class CPOP(Scheduler):
    """Critical-Path-On-a-Processor scheduler."""

    def __init__(self, agg: RankAggregation = "mean") -> None:
        self.agg = agg
        self.name = "CPOP" if agg == "mean" else f"CPOP-{agg}"

    def _critical_processor(self, instance: Instance, cp: list) -> ProcId:
        """Processor minimising the summed execution time of the CP."""
        best_proc: ProcId | None = None
        best_total = float("inf")
        if kernels_enabled():
            # One vectorized accumulation per CP task; the per-element
            # addition order matches the scalar per-processor sums.
            kern = instance.kernel
            totals = np.zeros(len(kern.procs))
            for t in cp:
                totals += kern.etc_arr[kern.ti[t]]
            for j, proc in enumerate(kern.procs):
                if totals[j] < best_total - 1e-12:
                    best_total = float(totals[j])
                    best_proc = proc
            if best_proc is None:
                raise SchedulingError("machine has no processors")
            return best_proc
        for proc in instance.machine.proc_ids():
            total = sum(instance.exec_time(t, proc) for t in cp)
            if total < best_total - 1e-12:
                best_total = total
                best_proc = proc
        if best_proc is None:
            raise SchedulingError("machine has no processors")
        return best_proc

    def _place_one(self, schedule: Schedule, instance: Instance, task, cp_set, cp_proc):
        if task in cp_set:
            placed = placement_on(schedule, instance, task, cp_proc, insertion=True)
        else:
            placed = eft_placement(schedule, instance, task, insertion=True)
        schedule.add(task, placed.proc, placed.start, placed.end - placed.start)

    def schedule(self, instance: Instance) -> Schedule:
        tracer = get_tracer()
        dag = instance.dag
        with tracer.span("sched.run", alg=self.name, tasks=instance.num_tasks) as run:
            with tracer.span("sched.rank", alg=self.name) as rank_span:
                up = upward_ranks(instance, self.agg)
                down = downward_ranks(instance, self.agg)
                priority = {t: up[t] + down[t] for t in dag.tasks()}
                cp = critical_path_tasks(instance, self.agg)
                cp_set = set(cp)
                cp_proc = self._critical_processor(instance, cp) if cp else None
                if tracer.enabled:
                    rank_span.set(cp_len=len(cp), cp_proc=str(cp_proc))

            # The heap priority (rank_u + rank_d) never depends on prior
            # placements, so the pop order is fully determined up front;
            # computing it first lets the compiled executor replay the
            # exact ready-queue order the interleaved loop produces.
            indegree = {t: dag.in_degree(t) for t in dag.tasks()}
            tie = count()
            heap: list[tuple[float, int, object]] = []
            for t in dag.entry_tasks():
                heapq.heappush(heap, (-priority[t], next(tie), t))
            order: list = []
            while heap:
                _, _, task = heapq.heappop(heap)
                order.append(task)
                for child in dag.successors(task):
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        heapq.heappush(heap, (-priority[child], next(tie), child))
            if len(order) != instance.num_tasks:
                raise SchedulingError(
                    f"CPOP scheduled {len(order)}/{instance.num_tasks} tasks"
                )

            ci = compiled_for(instance)
            if ci is not None:
                pi = instance.kernel.pi
                cp_j = pi[cp_proc] if cp_proc is not None else -1
                pinned = [
                    cp_j if t in cp_set else -1 for t in ci.tasks
                ]
                result = ci.schedule_list(
                    ci.order_indices(order),
                    insertion=True,
                    policy="eft",
                    pinned=pinned,
                )
                return ci.materialize(
                    result, instance.machine, f"{self.name}:{instance.name}"
                )

            schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
            scheduled = 0
            with tracer.span("sched.place", alg=self.name):
                for task in order:
                    if tracer.enabled:
                        with tracer.span("sched.insert", task=str(task)):
                            self._place_one(schedule, instance, task, cp_set, cp_proc)
                    else:
                        self._place_one(schedule, instance, task, cp_set, cp_proc)
                    scheduled += 1
            if tracer.enabled:
                tracer.count("sched.tasks_placed", scheduled)
                run.set(makespan=schedule.makespan)
        return schedule
