"""The :class:`Task` node record of a task graph."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import CostError
from repro.types import TaskId


@dataclass(frozen=True)
class Task:
    """One task (node) of a task DAG.

    Parameters
    ----------
    id:
        Hashable identifier, unique within a graph.
    cost:
        Nominal computation cost (work) of the task in abstract time
        units.  On a homogeneous machine this *is* the execution time; on
        a heterogeneous machine it seeds the ETC matrix (see
        :mod:`repro.machine.etc`).  Must be finite and non-negative; entry
        and exit pseudo-tasks may legitimately have cost 0.
    name:
        Optional human-readable label (defaults to ``str(id)``).
    attrs:
        Free-form metadata (e.g. the matrix indices a Gaussian-elimination
        task operates on).  Not interpreted by the schedulers.
    """

    id: TaskId
    cost: float = 1.0
    name: str = ""
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cost = float(self.cost)
        if math.isnan(cost) or math.isinf(cost) or cost < 0:
            raise CostError(f"task {self.id!r}: cost must be finite and >= 0, got {self.cost!r}")
        object.__setattr__(self, "cost", cost)
        if not self.name:
            object.__setattr__(self, "name", str(self.id))

    def with_cost(self, cost: float) -> "Task":
        """Return a copy of this task with a different nominal cost."""
        return Task(id=self.id, cost=cost, name=self.name, attrs=dict(self.attrs))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name}, cost={self.cost:g})"
