"""Wire model of the scheduling service.

One request = one instance + one scheduler name.  The request document
is plain JSON (the instance in :mod:`repro.instance_io` v1 format), the
response is a *payload* dict listing every placement in a deterministic
order plus the makespan — deterministic so that "bit-identical" is a
string-equality property, not a tolerance.

:func:`compute_schedule_payload` is the cold path.  It is a module-level
function of picklable arguments (JSON text + scheduler name), following
the same pattern as ``repro.bench.runner._run_replication``, so the
engine can ship it to a :class:`~concurrent.futures.ProcessPoolExecutor`
unchanged.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.service.wire import (  # noqa: F401  (re-exported: wire lives here too)
    BINARY_CONTENT_TYPE,
    WIRE_VERSION,
    decode_instance,
    decode_payload,
    decode_request,
    decode_response,
    encode_instance,
    encode_payload,
    encode_request,
    encode_response,
)
from repro.utils.encoding import decode_id, encode_id

#: Version tag of the request/response documents.
PROTOCOL = "repro-service-v1"

#: Worker-side memo of lowered instances, keyed by content fingerprint
#: (with an exact-body alias so repeats skip parsing entirely).  Bounded.
_LOWERED_CAPACITY = 32


class _LoweredInstances:
    """Fingerprint-keyed LRU of parsed-and-lowered instances.

    A cold request costs parse + kernel/compiled lowering before any
    scheduling happens.  Warm requests for the *same content* — the
    same instance under a different scheduler, or a cache-evicted
    payload — hit this memo instead: the stored :class:`Instance`
    carries its ``kernel`` (ranks, ETC arrays, compiled decoder) so the
    lowering is skipped.  Lives in each pool worker process (and in the
    ``workers=0`` thread path); sized for instances, not requests.
    """

    def __init__(self, capacity: int = _LOWERED_CAPACITY) -> None:
        self.capacity = capacity
        self._by_fp: OrderedDict[str, Instance] = OrderedDict()
        self._body_alias: OrderedDict[str, str] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, instance_text: str | bytes) -> Instance:
        """Lowered instance for a request body — JSON text or wire bytes.

        Both forms share the fingerprint-keyed store, so a binary client
        and a JSON client sending the same content hit the same lowered
        instance (exactly as they share the response cache).
        """
        raw = instance_text if isinstance(instance_text, bytes) else instance_text.encode("utf-8")
        body_key = hashlib.sha256(raw).hexdigest()
        fp = self._body_alias.get(body_key)
        if fp is not None and fp in self._by_fp:
            self.hits += 1
            self._by_fp.move_to_end(fp)
            return self._by_fp[fp]
        if isinstance(instance_text, bytes):
            instance = decode_instance(instance_text)
        else:
            from repro.instance_io import instance_from_json

            instance = instance_from_json(instance_text)
        fp = instance.fingerprint()
        memoized = self._by_fp.get(fp)
        if memoized is not None:
            # Same content, different body (task order, names): reuse
            # the already-lowered instance — consistent with the
            # fingerprint-keyed response cache, which likewise answers
            # for the first-seen body.
            self.hits += 1
            self._by_fp.move_to_end(fp)
            instance = memoized
        else:
            self.misses += 1
            instance.kernel.compiled()  # lower once, up front
            self._by_fp[fp] = instance
            while len(self._by_fp) > self.capacity:
                self._by_fp.popitem(last=False)
        self._body_alias[body_key] = fp
        while len(self._body_alias) > 4 * self.capacity:
            self._body_alias.popitem(last=False)
        return instance

    def cache_info(self) -> dict[str, int]:
        return {
            "size": len(self._by_fp),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._by_fp.clear()
        self._body_alias.clear()
        self.hits = 0
        self.misses = 0


_LOWERED = _LoweredInstances()


def lowering_cache_info() -> dict[str, int]:
    """Counters of this process's lowered-instance memo (for tests)."""
    return _LOWERED.cache_info()


def clear_lowering_cache() -> None:
    """Drop this process's lowered-instance memo (for tests)."""
    _LOWERED.clear()


# ----------------------------------------------------------------------
# response payload (what the engine computes, caches and returns)
# ----------------------------------------------------------------------
def schedule_payload(schedule: Schedule, instance: Instance, alg: str) -> dict:
    """Serialise a computed schedule into the canonical response payload.

    Placements are sorted by ``(start, proc, task)`` exactly like
    :func:`repro.schedule.io.schedule_to_json`, so two runs that produce
    the same schedule produce byte-identical payload JSON.

    Deadline-annotated instances additionally carry the structured
    schedulability verdict (met/missed and slack per task, see
    :func:`repro.schedulers.resilient.schedulability_doc`) — a trailing
    optional key, so deadline-free payloads are unchanged byte for byte.
    """
    payload = {
        "alg": alg,
        "instance": instance.name,
        "num_tasks": instance.num_tasks,
        "num_procs": instance.num_procs,
        "makespan": schedule.makespan,
        "num_duplicates": schedule.num_duplicates(),
        "placements": [
            {
                "task": encode_id(p.task),
                "proc": encode_id(p.proc),
                "start": p.start,
                "end": p.end,
                "duplicate": p.duplicate,
            }
            for p in sorted(
                schedule.all_placements(), key=lambda p: (p.start, str(p.proc), str(p.task))
            )
        ],
    }
    if instance.deadline is not None:
        from repro.schedulers.resilient import schedulability_doc

        payload["schedulability"] = schedulability_doc(schedule, instance)
    return payload


def compute_schedule_payload(instance_text: str | bytes, alg: str) -> dict:
    """Cold-path computation: parse, schedule, validate, serialise.

    ``instance_text`` is either the JSON instance document or its binary
    wire form (:func:`encode_instance` bytes) — binary bodies are
    decoded straight from the packed arrays, no intermediate dict tree.

    Runs inside pool workers; imports are deferred so a worker process
    only pays for what it uses.  Parsing and lowering go through the
    fingerprint-keyed memo, so a warm request for known content (same
    instance, different scheduler; or evicted from the response cache)
    reuses the compiled flat-array form instead of rebuilding it.

    Each stage runs under a span of the current tracer (the no-op
    default unless the caller installed one — see
    :func:`compute_schedule_payload_traced`), and the lowering memo's
    hit/miss deltas land in ``worker.lowering_hits``/``_misses``.
    """
    from repro.obs import get_tracer
    from repro.schedule.validation import validate
    from repro.schedulers.registry import get_scheduler
    from repro.service import faults

    faults.fire("worker.start")
    tracer = get_tracer()
    wire_format = "bin" if isinstance(instance_text, bytes) else "json"
    hits0, misses0 = _LOWERED.hits, _LOWERED.misses
    with tracer.span("worker.parse", alg=alg, wire=wire_format):
        instance = _LOWERED.get(instance_text)
    if tracer.enabled:
        tracer.count("worker.lowering_hits", _LOWERED.hits - hits0)
        tracer.count("worker.lowering_misses", _LOWERED.misses - misses0)
    with tracer.span("worker.schedule", alg=alg, tasks=instance.num_tasks):
        schedule = get_scheduler(alg).schedule(instance)
    with tracer.span("worker.validate", alg=alg):
        validate(schedule, instance)
    faults.fire("worker.finish")
    with tracer.span("worker.encode", alg=alg, wire=wire_format):
        faults.fire("worker.encode")
        return schedule_payload(schedule, instance, alg)


def compute_schedule_payload_batch(
    items: list[tuple[str | bytes, str]],
) -> tuple[list[tuple[str, object]], dict[str, int]]:
    """Batched cold path: several ``(instance_text, alg)`` jobs, one call.

    The engine's dispatcher coalesces the requests it drains in one
    batch into a single worker round trip, amortising executor dispatch
    and letting consecutive jobs for the same content share the lowered
    instance memo within the call.  Each item resolves independently to
    ``("ok", payload)`` or ``("error", "Type: message")`` — except pool
    breakage (:class:`~concurrent.futures.BrokenExecutor`), which must
    propagate whole so the engine's self-healing sees it and re-executes
    the batch on the respawned pool.

    The second element reports worker-side counter deltas for this call:
    the lowered-instance memo hits/misses and the compiled executor's
    schedule/fallback counts — the engine folds them into its service
    stats so cold-path behaviour shows up on ``/metrics``.
    """
    from concurrent.futures import BrokenExecutor

    from repro import compiled as compiled_mod

    hits0, misses0 = _LOWERED.hits, _LOWERED.misses
    counts0 = compiled_mod.schedule_counters()
    results: list[tuple[str, object]] = []
    for instance_text, alg in items:
        try:
            # Through the module global so test monkeypatches apply on
            # the in-thread (workers=0) path.
            results.append(("ok", compute_schedule_payload(instance_text, alg)))
        except BrokenExecutor:
            raise
        except Exception as exc:  # noqa: BLE001 - per-item fault isolation
            results.append(("error", f"{type(exc).__name__}: {exc}"))
    counts1 = compiled_mod.schedule_counters()
    stats = {
        "lowering_hits": _LOWERED.hits - hits0,
        "lowering_misses": _LOWERED.misses - misses0,
        "compiled_schedules": (
            (counts1["list_schedules"] - counts0["list_schedules"])
            + (counts1["dls_schedules"] - counts0["dls_schedules"])
            + (counts1["improved_passes"] - counts0["improved_passes"])
        ),
        "compiled_fallbacks": counts1["fallbacks"] - counts0["fallbacks"],
    }
    return results, stats


def compute_schedule_payload_traced(
    instance_text: str | bytes, alg: str, trace_id: str | None = None
) -> tuple[dict, dict]:
    """Traced cold path: compute the payload *and* export the worker trace.

    Runs :func:`compute_schedule_payload` (through the module global, so
    test monkeypatches still apply on the in-thread path) under a fresh
    local :class:`~repro.obs.Tracer`, wrapped in one ``worker.compute``
    root span carrying the request's ``trace_id``.  Returns ``(payload,
    trace_export)``; the engine absorbs the export into its own tracer
    and caches only the payload — cached responses stay request-pure.
    """
    from repro.obs import Tracer, use_tracer

    local = Tracer(name="service-worker")
    with use_tracer(local):
        with local.span("worker.compute", alg=alg, trace_id=trace_id):
            payload = compute_schedule_payload(instance_text, alg)
    return payload, local.export()


def payload_to_schedule(payload: dict, machine) -> Schedule:
    """Rebuild a :class:`Schedule` from a response payload.

    Needs the machine the instance was built with (timelines are
    machine-scoped).  Primaries are placed before duplicates, as in
    :func:`repro.schedule.io.schedule_from_json`.
    """
    schedule = Schedule(machine, name=str(payload.get("instance", "served")))
    records = payload["placements"]
    for want_duplicate in (False, True):
        for rec in records:
            if bool(rec.get("duplicate", False)) != want_duplicate:
                continue
            schedule.add(
                decode_id(rec["task"]),
                decode_id(rec["proc"]),
                float(rec["start"]),
                float(rec["end"]) - float(rec["start"]),
                duplicate=want_duplicate,
            )
    return schedule


# ----------------------------------------------------------------------
# client-side result view
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleResult:
    """What a client gets back from one scheduling request."""

    alg: str
    instance: str
    makespan: float
    placements: tuple = ()
    num_duplicates: int = 0
    cache_hit: bool = False
    fingerprint: str = ""
    server_ms: float = 0.0
    trace_id: str = ""
    payload: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_payload(cls, payload: dict) -> "ScheduleResult":
        return cls(
            alg=payload["alg"],
            instance=str(payload.get("instance", "")),
            makespan=float(payload["makespan"]),
            placements=tuple(
                (decode_id(r["task"]), decode_id(r["proc"]), r["start"], r["end"], r["duplicate"])
                for r in payload["placements"]
            ),
            num_duplicates=int(payload.get("num_duplicates", 0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            fingerprint=str(payload.get("fingerprint", "")),
            server_ms=float(payload.get("server_ms", 0.0)),
            trace_id=str(payload.get("trace_id", "")),
            payload=payload,
        )

    def to_schedule(self, machine) -> Schedule:
        """Materialise the placements onto ``machine``."""
        return payload_to_schedule(self.payload, machine)


class WireScheduleResult:
    """A :class:`ScheduleResult` over a binary response, decoded lazily.

    Scalars (makespan, algorithm, cache/trace metadata) come straight
    from the response envelope and payload prefix, which the
    :class:`~repro.service.wire.ResponseView` parsed in a few
    microseconds.  ``placements`` and ``payload`` materialise from the
    wire buffer on first access and are then memoised — a caller that
    only reads the makespan never builds a placement dict at all.

    Duck-types :class:`ScheduleResult` exactly: same attributes, same
    value types, same ``to_schedule``.
    """

    __slots__ = ("alg", "instance", "makespan", "num_duplicates",
                 "cache_hit", "fingerprint", "server_ms", "trace_id",
                 "_view", "_placements")

    def __init__(self, view) -> None:
        self.alg = view.alg
        self.instance = view.instance
        self.makespan = view.makespan
        self.num_duplicates = view.num_duplicates
        self.cache_hit = view.cache_hit
        self.fingerprint = view.fingerprint
        self.server_ms = view.server_ms
        self.trace_id = view.trace_id or ""
        self._view = view
        self._placements = None

    @property
    def payload(self) -> dict:
        return self._view.payload

    @property
    def placements(self) -> tuple:
        if self._placements is None:
            self._placements = tuple(
                (decode_id(r["task"]), decode_id(r["proc"]),
                 r["start"], r["end"], r["duplicate"])
                for r in self.payload["placements"]
            )
        return self._placements

    def to_schedule(self, machine) -> Schedule:
        """Materialise the placements onto ``machine``."""
        return payload_to_schedule(self.payload, machine)


# ----------------------------------------------------------------------
# request document
# ----------------------------------------------------------------------
def make_request_doc(instance_doc: dict, alg: str, timeout: float | None = None,
                     trace_id: str | None = None) -> dict:
    """Assemble the body of a ``POST /v1/schedule`` request.

    ``trace_id`` is an opaque client-chosen correlation id; the server
    echoes it in the response and stamps it on every span the request
    produces, so one id follows the request client -> server -> worker.
    """
    doc = {"protocol": PROTOCOL, "alg": alg, "instance": instance_doc}
    if timeout is not None:
        doc["timeout"] = float(timeout)
    if trace_id is not None:
        doc["trace_id"] = str(trace_id)
    return doc


def parse_request_doc(doc: object) -> tuple[Instance, str, float | None, str | None]:
    """Validate a request document into ``(instance, alg, timeout, trace_id)``.

    Raises :class:`~repro.service.errors.RequestError` on any shape or
    content problem, including an unknown scheduler name — rejecting bad
    requests *before* they occupy queue space.
    """
    from repro.instance_io import instance_from_json
    from repro.service.errors import RequestError
    from repro.schedulers.registry import all_scheduler_names

    if not isinstance(doc, dict):
        raise RequestError("request body must be a JSON object")
    alg = doc.get("alg")
    if not isinstance(alg, str) or not alg:
        raise RequestError("request needs a scheduler name under 'alg'")
    if alg not in all_scheduler_names():
        raise RequestError(
            f"unknown scheduler {alg!r}; known: {', '.join(all_scheduler_names())}"
        )
    instance_doc = doc.get("instance")
    if not isinstance(instance_doc, dict):
        raise RequestError("request needs an instance document under 'instance'")
    try:
        instance = instance_from_json(json.dumps(instance_doc))
    except Exception as exc:
        raise RequestError(f"invalid instance document: {exc}") from exc
    timeout = doc.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise RequestError(f"invalid timeout {timeout!r}") from None
        if timeout <= 0:
            raise RequestError(f"timeout must be > 0, got {timeout}")
    trace_id = doc.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise RequestError(f"trace_id must be a string, got {trace_id!r}")
    return instance, alg, timeout, trace_id
