"""Shared helpers for the per-experiment benchmark modules.

Each ``bench_eN_*.py`` module does two things:

1. regenerates experiment EN's figure/table via the registry (quick
   protocol by default; set ``REPRO_FULL=1`` for the paper-scale
   protocol) and asserts the *shape* of the result — who wins, how
   trends move — matching the expectations recorded in EXPERIMENTS.md;
2. registers a pytest-benchmark timing for the representative scheduler
   call behind that experiment.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench import workloads as W


def full_protocol() -> bool:
    """True when the paper-scale protocol is requested."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def quick() -> bool:
    return not full_protocol()


@pytest.fixture(scope="session")
def representative_instance():
    """One mid-sized instance shared by the timing benchmarks."""
    rng = np.random.default_rng(2007)
    return W.random_instance(rng, num_tasks=100, num_procs=8, ccr=1.0)


def series_mean(res, name: str) -> float:
    """Average of one scheduler's series across all x points."""
    return float(np.mean(res.series[name]))
